//! Quickstart: outsource a dataset, query it, verify the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the full SAE workflow of the paper's §II: the data owner
//! ships its relation to the service provider and the reduced tuples to the
//! trusted entity; a client sends the query to both, receives the result from
//! the SP and the 20-byte verification token from the TE, and verifies.

use sae::prelude::*;

fn main() {
    // ------------------------------------------------------------------ DO
    // The data owner's relation: 50k records, uniform 4-byte keys in
    // [0, 10^7], 500 bytes per record — the paper's experimental setup.
    let dataset = DatasetSpec::paper(50_000, KeyDistribution::unf(), 7).generate();
    println!(
        "data owner: generated {} records ({:.1} MB)",
        dataset.len(),
        dataset.encoded_bytes() as f64 / (1024.0 * 1024.0)
    );

    // ------------------------------------------------------ outsourcing step
    // SaeSystem::build ships the records to the SP (heap file + B+-Tree) and
    // the (id, key, digest) tuples to the TE (XB-Tree).
    let system =
        SaeSystem::build_in_memory(&dataset, HashAlgorithm::Sha1).expect("outsourcing the dataset");
    let storage = system.storage_breakdown();
    println!(
        "service provider: {:.1} MB (dataset) + {:.1} MB (B+-Tree index)",
        storage.sp_dataset_bytes as f64 / (1024.0 * 1024.0),
        storage.sp_index_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("trusted entity:   {:.1} MB (XB-Tree)", storage.te_mb());

    // --------------------------------------------------------------- client
    // A range query covering 0.5% of the key domain, as in the evaluation.
    let query = RangeQuery::new(4_000_000, 4_050_000);
    let outcome = system.query(&query).expect("query");

    println!();
    println!("query {query}:");
    println!("  result cardinality      : {}", outcome.records.len());
    println!("  verification token      : {}", outcome.vt);
    println!("  authentication bytes    : {}", outcome.metrics.auth_bytes);
    println!(
        "  SP processing (charged) : {:.0} ms ({} node accesses x 10 ms)",
        outcome.metrics.sp_charged_ms, outcome.metrics.sp_node_accesses
    );
    println!(
        "  TE processing (charged) : {:.0} ms ({} node accesses x 10 ms)",
        outcome.metrics.te_charged_ms, outcome.metrics.te_node_accesses
    );
    println!(
        "  client verification     : {:.2} ms",
        outcome.metrics.client_verify_ms
    );
    println!(
        "  verified                : {}",
        if outcome.metrics.verified {
            "YES"
        } else {
            "NO"
        }
    );

    assert!(outcome.metrics.verified, "an honest result must verify");
}
