//! The paper's running example: a consumer-electronics shop outsources its
//! digital-camera catalogue and clients query it by price.
//!
//! ```text
//! cargo run --release --example camera_shop
//! ```
//!
//! §II of the paper introduces a relation `R(id, manufacturer, model, price)`
//! with `price` as the query attribute and the record
//! `r_m = (15, "Canon", "SD850 IS", 250)`. The SP stores whole records; the TE
//! keeps only `(15, 250, h_m)` where `h_m` is the digest of `r_m`'s binary
//! representation. This example builds exactly that schema (manufacturer and
//! model packed into the record payload), runs the paper's query — "select
//! all cameras whose price is between 200 and 300 euros" — and shows both a
//! successful verification and the detection of a price-manipulation attack.

use sae::prelude::*;

/// Packs the textual attributes into the opaque payload of a [`Record`].
fn camera_record(id: u64, manufacturer: &str, model: &str, price_euro: u32) -> Record {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(manufacturer.len() as u16).to_le_bytes());
    payload.extend_from_slice(manufacturer.as_bytes());
    payload.extend_from_slice(&(model.len() as u16).to_le_bytes());
    payload.extend_from_slice(model.as_bytes());
    Record::new(id, price_euro, payload)
}

/// Unpacks the textual attributes back out of a returned record.
fn describe(bytes: &[u8]) -> String {
    let record = Record::decode(bytes).expect("camera record");
    let payload = &record.payload;
    let m_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
    let manufacturer = String::from_utf8_lossy(&payload[2..2 + m_len]).into_owned();
    let rest = &payload[2 + m_len..];
    let model_len = u16::from_le_bytes([rest[0], rest[1]]) as usize;
    let model = String::from_utf8_lossy(&rest[2..2 + model_len]).into_owned();
    format!(
        "#{:<3} {manufacturer} {model} — {} EUR",
        record.id, record.key
    )
}

fn main() {
    // The shop's catalogue. Record 15 is the paper's example camera.
    let catalogue = vec![
        camera_record(11, "Nikon", "Coolpix P50", 180),
        camera_record(12, "Canon", "PowerShot A570", 195),
        camera_record(13, "Sony", "DSC-W80", 215),
        camera_record(14, "Olympus", "FE-280", 230),
        camera_record(15, "Canon", "SD850 IS", 250),
        camera_record(16, "Panasonic", "Lumix DMC-FX33", 270),
        camera_record(17, "Nikon", "Coolpix S510", 295),
        camera_record(18, "Canon", "EOS 400D", 520),
        camera_record(19, "Nikon", "D40x", 560),
        camera_record(20, "Sony", "Alpha A100", 610),
    ];

    // Hand-build a Dataset so the generic SAE machinery can outsource it.
    // (Variable-length payloads are padded to a common record size.)
    let record_size = catalogue
        .iter()
        .map(Record::encoded_len)
        .max()
        .expect("non-empty catalogue");
    let records: Vec<Record> = catalogue
        .iter()
        .map(|r| {
            let mut padded = r.clone();
            padded.payload.resize(record_size - 12, 0);
            padded
        })
        .collect();
    let dataset = Dataset {
        spec: DatasetSpec {
            cardinality: records.len(),
            distribution: KeyDistribution::Uniform { domain: 1_000 },
            record_size,
            seed: 0,
        },
        records,
    };

    let system =
        SaeSystem::build_in_memory(&dataset, HashAlgorithm::Sha1).expect("outsource catalogue");

    // "Select all cameras from R whose price is between 200 and 300 euros."
    let query = RangeQuery::new(200, 300);
    let outcome = system.query(&query).expect("query");

    println!("cameras priced between 200 and 300 euros:");
    for bytes in &outcome.records {
        println!("  {}", describe(bytes));
    }
    println!(
        "verification token from the TE: {} ({} bytes)",
        outcome.vt, outcome.metrics.auth_bytes
    );
    println!(
        "client verification: {}",
        if outcome.metrics.verified {
            "ACCEPTED"
        } else {
            "REJECTED"
        }
    );
    assert!(outcome.metrics.verified);
    assert_eq!(outcome.records.len(), 5);

    // A malicious SP tries to hide the Canon SD850 IS from the result
    // (e.g. to push clients toward a sponsored model).
    println!();
    println!("malicious SP drops one qualifying camera from the result:");
    let tampered = system
        .query_with_tamper(&query, TamperStrategy::DropRecords { count: 1 }, 2009)
        .expect("query");
    println!("  returned {} records instead of 5", tampered.records.len());
    println!(
        "  client verification: {}",
        if tampered.metrics.verified {
            "ACCEPTED (!)"
        } else {
            "REJECTED"
        }
    );
    assert!(!tampered.metrics.verified, "the attack must be detected");
}
