//! Updates: the data owner keeps modifying the outsourced relation.
//!
//! ```text
//! cargo run --release --example update_stream
//! ```
//!
//! Under SAE the data owner's only job after the initial outsourcing is to
//! forward updates to the SP and the TE (§II); both apply them in
//! `O(log n)` node accesses (B⁺-Tree insert at the SP, XOR patching along one
//! path of the XB-Tree at the TE). Under TOM the data owner must additionally
//! re-sign the MB-Tree root after every update. This example streams inserts
//! and deletes into both deployments, keeps querying in between, and reports
//! the per-update node-access cost of every party.

use sae::prelude::*;

fn main() {
    let dataset = DatasetSpec::paper(20_000, KeyDistribution::unf(), 3).generate();

    // Keep handles to the stores so per-phase node accesses can be measured.
    let sae_sp_store: SharedPageStore = MemPager::new_shared();
    let sae_te_store: SharedPageStore = MemPager::new_shared();
    let mut sae = SaeSystem::build(
        sae_sp_store.clone(),
        sae_te_store.clone(),
        &dataset,
        HashAlgorithm::Sha1,
        CostModel::paper(),
        sae::core::sae::TeMode::XbTree,
    )
    .expect("build SAE");

    let tom_store: SharedPageStore = MemPager::new_shared();
    let signer = MacSigner::new(b"data-owner-signing-key".to_vec());
    let mut tom = TomSystem::build(
        tom_store.clone(),
        &dataset,
        HashAlgorithm::Sha1,
        CostModel::paper(),
        signer.clone(),
        signer,
    )
    .expect("build TOM");

    let query = RangeQuery::new(2_000_000, 2_050_000);
    let baseline = sae.query(&query).expect("query").records.len();
    println!("before updates: {baseline} records match {query}");

    // ------------------------------------------------------- update stream
    let inserts: Vec<Record> = (0..500u64)
        .map(|i| Record::with_size(1_000_000 + i, 2_000_000 + (i as u32 * 97) % 50_000, 500))
        .collect();
    let deletions: Vec<Record> = dataset
        .iter()
        .filter(|r| query.contains(r.key))
        .take(200)
        .cloned()
        .collect();

    let sp_before = sae_sp_store.stats().snapshot();
    let te_before = sae_te_store.stats().snapshot();
    let tom_before = tom_store.stats().snapshot();

    for r in &inserts {
        sae.insert_record(r).expect("SAE insert");
        tom.insert_record(r).expect("TOM insert");
    }
    for r in &deletions {
        assert!(sae.delete_record(r.id, r.key).expect("SAE delete"));
        assert!(tom.delete_record(r.id, r.key).expect("TOM delete"));
    }

    let updates = (inserts.len() + deletions.len()) as f64;
    let sp_cost = sae_sp_store
        .stats()
        .snapshot()
        .delta_since(&sp_before)
        .node_accesses() as f64;
    let te_cost = sae_te_store
        .stats()
        .snapshot()
        .delta_since(&te_before)
        .node_accesses() as f64;
    let tom_cost = tom_store
        .stats()
        .snapshot()
        .delta_since(&tom_before)
        .node_accesses() as f64;

    println!();
    println!(
        "applied {} inserts and {} deletes:",
        inserts.len(),
        deletions.len()
    );
    println!(
        "  SAE SP  (B+-Tree) : {:>6.1} node accesses per update",
        sp_cost / updates
    );
    println!(
        "  SAE TE  (XB-Tree) : {:>6.1} node accesses per update",
        te_cost / updates
    );
    println!(
        "  TOM SP  (MB-Tree) : {:>6.1} node accesses per update",
        tom_cost / updates
    );

    // ------------------------------------------------------- query again
    let sae_after = sae.query(&query).expect("query");
    let tom_after = tom.query(&query).expect("query");
    let expected =
        baseline + inserts.iter().filter(|r| query.contains(r.key)).count() - deletions.len();

    println!();
    println!(
        "after updates: {} records match {query}",
        sae_after.records.len()
    );
    assert_eq!(sae_after.records.len(), expected);
    assert_eq!(tom_after.records.len(), expected);
    assert!(
        sae_after.metrics.verified,
        "SAE result verifies after updates"
    );
    assert!(
        tom_after.metrics.verified,
        "TOM result verifies after updates"
    );
    println!("both models still verify their results ✓");
}
