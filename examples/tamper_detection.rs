//! Adversarial evaluation: every malicious-SP strategy against both models.
//!
//! ```text
//! cargo run --release --example tamper_detection
//! ```
//!
//! The paper's security argument (§II) reduces an undetected attack to finding
//! record sets `DS`, `IS` with `DS⊕ = IS⊕`, which is computationally
//! infeasible for a collision-resistant digest. This example exercises the
//! practical side of that claim: it runs drop / inject / modify / substitute
//! attacks of increasing size against both the SAE client (XOR token check)
//! and the TOM client (VO verification) and prints the detection matrix.

use sae::prelude::*;

fn main() {
    let dataset = DatasetSpec::paper(20_000, KeyDistribution::skw(), 13).generate();

    let sae = SaeSystem::build_in_memory(&dataset, HashAlgorithm::Sha1).expect("build SAE");
    let signer = MacSigner::new(b"data-owner-signing-key".to_vec());
    let tom = TomSystem::build_in_memory(&dataset, HashAlgorithm::Sha1, signer.clone(), signer)
        .expect("build TOM");

    let query = RangeQuery::new(500_000, 550_000);
    let honest = sae.query(&query).expect("query");
    println!(
        "query {query}: {} qualifying records\n",
        honest.records.len()
    );

    let strategies = [
        ("honest", TamperStrategy::Honest),
        ("drop 1 record", TamperStrategy::DropRecords { count: 1 }),
        ("drop 10 records", TamperStrategy::DropRecords { count: 10 }),
        (
            "inject 1 bogus record",
            TamperStrategy::InjectRecords { count: 1 },
        ),
        (
            "inject 5 bogus records",
            TamperStrategy::InjectRecords { count: 5 },
        ),
        (
            "modify 1 record",
            TamperStrategy::ModifyRecords { count: 1 },
        ),
        (
            "modify 3 records",
            TamperStrategy::ModifyRecords { count: 3 },
        ),
        (
            "substitute entire result",
            TamperStrategy::SubstituteResult { count: 40 },
        ),
        // The XOR-cancellation attacks: an even number of copies of the same
        // record vanishes from a bare digest fold (h(r) ⊕ h(r) = 0), so only
        // the client's structural checks catch these.
        (
            "inject same bogus pair",
            TamperStrategy::DuplicatePair { count: 1 },
        ),
        (
            "triple a genuine record",
            TamperStrategy::DuplicateExisting { count: 1 },
        ),
    ];

    println!(
        "{:<28} {:>14} {:>14}",
        "SP behaviour", "SAE client", "TOM client"
    );
    let mut all_attacks_detected = true;
    for (label, strategy) in strategies {
        let sae_outcome = sae
            .query_with_tamper(&query, strategy, 42)
            .expect("SAE query");
        let tom_outcome = tom
            .query_with_tamper(&query, strategy, 42)
            .expect("TOM query");
        let verdict = |ok: bool| if ok { "accepted" } else { "REJECTED" };
        println!(
            "{:<28} {:>14} {:>14}",
            label,
            verdict(sae_outcome.metrics.verified),
            verdict(tom_outcome.metrics.verified)
        );
        if strategy.is_attack() {
            all_attacks_detected &= !sae_outcome.metrics.verified && !tom_outcome.metrics.verified;
        } else {
            assert!(sae_outcome.metrics.verified && tom_outcome.metrics.verified);
        }
    }

    println!();
    if all_attacks_detected {
        println!("every attack was detected by both models ✓");
    } else {
        println!("WARNING: some attack went undetected");
        std::process::exit(1);
    }

    // The two models pay very different prices for that guarantee.
    let sae_metrics = sae.query(&query).expect("query").metrics;
    let tom_metrics = tom.query(&query).expect("query").metrics;
    println!();
    println!("cost of the authentication guarantee for this query:");
    println!(
        "  SAE: {:>6} auth bytes, SP {:>6.0} ms charged, TE {:>4.0} ms charged",
        sae_metrics.auth_bytes, sae_metrics.sp_charged_ms, sae_metrics.te_charged_ms
    );
    println!(
        "  TOM: {:>6} auth bytes, SP {:>6.0} ms charged, (no TE)",
        tom_metrics.auth_bytes, tom_metrics.sp_charged_ms
    );
}
