//! # sae — Separating Authentication from Query Execution in Outsourced Databases
//!
//! A full reproduction of the SAE outsourcing model (Papadopoulos, Papadias,
//! Cheng, Tan — ICDE 2009) and of the traditional outsourcing model (TOM) it
//! is evaluated against, implemented from scratch in Rust.
//!
//! This facade crate re-exports the whole stack so applications can depend on
//! a single crate:
//!
//! * [`crypto`] — 20-byte digests, XOR aggregation, SHA-1/SHA-256, HMAC,
//!   big integers and textbook RSA signatures.
//! * [`storage`] — 4096-byte pages, in-memory and file-backed pagers, an LRU
//!   buffer pool, heap files and the 10 ms/node-access cost model.
//! * [`workload`] — the paper's synthetic datasets (UNF/SKW), record model and
//!   range-query workloads.
//! * [`btree`] — the plain B⁺-Tree the SAE service provider uses.
//! * [`mbtree`] — the Merkle B⁺-Tree and verification objects of TOM.
//! * [`xbtree`] — the XB-Tree, the paper's contribution at the trusted entity.
//! * [`core`] — the end-to-end SAE and TOM deployments (DO / SP / TE /
//!   client), the malicious-SP model and per-query metrics.
//! * [`net`] — the networked deployment: a framed TCP wire protocol,
//!   thread-per-connection shard servers and a scatter-gather client that
//!   verifies slices and tokens exactly as the in-process client.
//!
//! ## Quick start
//!
//! ```
//! use sae::prelude::*;
//!
//! // The data owner's relation: 10k records, uniform keys, 500-byte records.
//! let dataset = DatasetSpec::paper(10_000, KeyDistribution::unf(), 42).generate();
//!
//! // Outsource it: records go to the SP, reduced tuples go to the TE.
//! let system = SaeSystem::build_in_memory(&dataset, HashAlgorithm::Sha1).unwrap();
//!
//! // A client issues a range query and verifies the result with the
//! // 20-byte token obtained from the trusted entity.
//! let query = RangeQuery::new(1_000_000, 1_050_000);
//! let outcome = system.query(&query).unwrap();
//! assert!(outcome.metrics.verified);
//! assert_eq!(outcome.metrics.auth_bytes, 20);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use sae_btree as btree;
pub use sae_core as core;
pub use sae_crypto as crypto;
pub use sae_mbtree as mbtree;
pub use sae_net as net;
pub use sae_storage as storage;
pub use sae_workload as workload;
pub use sae_xbtree as xbtree;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use sae_core::{
        CommitCrashPoint, DurabilityPolicy, LatencySummary, QueryMetrics, SaeClient, SaeEngine,
        SaeQueryOutcome, SaeSystem, SaeVerifyError, ServeOptions, ShardLayout, ShardSlice,
        ShardedQueryOutcome, ShardedSaeEngine, ShardedVerifyError, StorageBreakdown,
        TamperStrategy, ThroughputReport, TomEngine, TomQueryOutcome, TomSystem, TrustedEntity,
        UpdateService,
    };
    pub use sae_crypto::{
        hash_bytes, Digest, HashAlgorithm, MacSigner, RsaSigner, Signer, Verifier, XorDigest,
        DIGEST_LEN,
    };
    pub use sae_mbtree::{MbTree, VerificationObject, VerifyError};
    pub use sae_net::{
        NetClient, NetClientConfig, NetError, NetQueryOutcome, ServerTamper, ShardServer,
        ShardServerConfig,
    };
    pub use sae_storage::{
        CostModel, FilePager, HeapFile, IoStats, MemPager, PageStore, SharedPageStore, PAGE_SIZE,
    };
    pub use sae_workload::{
        Dataset, DatasetSpec, KeyDistribution, QueryMix, QueryWorkload, RangeQuery, Record, TeTuple,
    };
    pub use sae_xbtree::{TupleStore, VerificationToken, XbTree};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_compose() {
        let dataset = DatasetSpec::paper(500, KeyDistribution::unf(), 1).generate();
        let system = SaeSystem::build_in_memory(&dataset, HashAlgorithm::Sha1).unwrap();
        let outcome = system.query(&RangeQuery::new(0, 10_000_000)).unwrap();
        assert!(outcome.metrics.verified);
        assert_eq!(outcome.records.len(), 500);
    }
}
