//! Cross-crate integration tests: the full DO → SP/TE → client workflows of
//! both outsourcing models, checked against a brute-force oracle.

use sae::prelude::*;

const ALG: HashAlgorithm = HashAlgorithm::Sha1;

fn dataset(n: usize, dist: KeyDistribution, seed: u64) -> Dataset {
    DatasetSpec {
        cardinality: n,
        distribution: dist,
        record_size: 500,
        seed,
    }
    .generate()
}

#[test]
fn sae_results_match_the_oracle_on_both_distributions() {
    for dist in [KeyDistribution::unf(), KeyDistribution::skw()] {
        let ds = dataset(8_000, dist, 1);
        let system = SaeSystem::build_in_memory(&ds, ALG).unwrap();
        let workload = QueryWorkload::uniform(20, dist.domain(), 0.005, 99);
        for q in workload.iter() {
            let outcome = system.query(q).unwrap();
            assert!(outcome.metrics.verified, "{} {q}", dist.name());
            assert_eq!(
                outcome.records.len(),
                ds.query_cardinality(q),
                "{} {q}",
                dist.name()
            );
            // The returned ids are exactly the oracle's ids.
            let mut got: Vec<u64> = outcome
                .records
                .iter()
                .map(|r| Record::decode(r).unwrap().id)
                .collect();
            got.sort_unstable();
            let mut expected: Vec<u64> = ds.query_oracle(q).iter().map(|r| r.id).collect();
            expected.sort_unstable();
            assert_eq!(got, expected);
        }
    }
}

#[test]
fn tom_results_match_the_oracle_and_verify_with_rsa_signatures() {
    let ds = dataset(5_000, KeyDistribution::unf(), 2);
    let signer = RsaSigner::insecure_test_signer();
    let verifier = signer.verifier();
    let system = TomSystem::build_in_memory(&ds, ALG, signer, verifier).unwrap();
    let workload = QueryWorkload::uniform(10, 10_000_000, 0.005, 5);
    for q in workload.iter() {
        let outcome = system.query(q).unwrap();
        assert!(outcome.metrics.verified, "{q}");
        assert_eq!(outcome.records.len(), ds.query_cardinality(q));
        assert!(outcome.metrics.auth_bytes >= 64); // at least the RSA signature
    }
}

#[test]
fn sae_and_tom_agree_on_results_and_both_detect_the_same_attacks() {
    let ds = dataset(6_000, KeyDistribution::skw(), 3);
    let sae = SaeSystem::build_in_memory(&ds, ALG).unwrap();
    let signer = MacSigner::new(b"key".to_vec());
    let tom = TomSystem::build_in_memory(&ds, ALG, signer.clone(), signer).unwrap();

    let q = RangeQuery::new(100_000, 200_000);
    let sae_honest = sae.query(&q).unwrap();
    let tom_honest = tom.query(&q).unwrap();
    assert_eq!(sae_honest.records.len(), tom_honest.records.len());
    assert!(sae_honest.metrics.verified && tom_honest.metrics.verified);

    for strategy in [
        TamperStrategy::DropRecords { count: 2 },
        TamperStrategy::InjectRecords { count: 2 },
        TamperStrategy::ModifyRecords { count: 2 },
        TamperStrategy::SubstituteResult { count: 5 },
    ] {
        let sae_bad = sae.query_with_tamper(&q, strategy, 7).unwrap();
        let tom_bad = tom.query_with_tamper(&q, strategy, 7).unwrap();
        assert!(!sae_bad.metrics.verified, "SAE missed {strategy:?}");
        assert!(!tom_bad.metrics.verified, "TOM missed {strategy:?}");
    }
}

#[test]
fn the_vt_equals_the_xor_of_the_oracle_digests() {
    // The defining equation of SAE: VT = RS⊕.
    let ds = dataset(4_000, KeyDistribution::unf(), 4);
    let system = SaeSystem::build_in_memory(&ds, ALG).unwrap();
    for q in QueryWorkload::uniform(15, 10_000_000, 0.01, 11).iter() {
        let outcome = system.query(q).unwrap();
        let expected = XorDigest::of(
            ds.query_oracle(q)
                .iter()
                .map(|r| r.digest(ALG))
                .collect::<Vec<_>>()
                .iter(),
        );
        assert_eq!(outcome.vt, expected, "{q}");
    }
}

#[test]
fn sae_works_identically_on_file_backed_storage() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(3_000, KeyDistribution::unf(), 5);

    let mem_system = SaeSystem::build_in_memory(&ds, ALG).unwrap();
    let sp_store: SharedPageStore =
        std::sync::Arc::new(FilePager::create(dir.path().join("sp.pages")).unwrap());
    let te_store: SharedPageStore =
        std::sync::Arc::new(FilePager::create(dir.path().join("te.pages")).unwrap());
    let file_system = SaeSystem::build(
        sp_store,
        te_store,
        &ds,
        ALG,
        CostModel::paper(),
        sae::core::sae::TeMode::XbTree,
    )
    .unwrap();

    for q in QueryWorkload::uniform(10, 10_000_000, 0.005, 21).iter() {
        let a = mem_system.query(q).unwrap();
        let b = file_system.query(q).unwrap();
        assert_eq!(a.vt, b.vt);
        assert_eq!(a.records, b.records);
        assert!(b.metrics.verified);
        // The charged node accesses are identical: the cost model counts
        // logical accesses, not where the pages physically live.
        assert_eq!(a.metrics.sp_node_accesses, b.metrics.sp_node_accesses);
        assert_eq!(a.metrics.te_node_accesses, b.metrics.te_node_accesses);
    }
}

#[test]
fn update_streams_keep_both_models_consistent_and_verifiable() {
    let ds = dataset(3_000, KeyDistribution::unf(), 6);
    let mut sae = SaeSystem::build_in_memory(&ds, ALG).unwrap();
    let signer = MacSigner::new(b"key".to_vec());
    let mut tom = TomSystem::build_in_memory(&ds, ALG, signer.clone(), signer).unwrap();

    // Mirror of the logical table, kept in lockstep with the updates.
    let mut shadow: Vec<Record> = ds.records.clone();

    // Insert 300 new records and delete 150 existing ones.
    for i in 0..300u64 {
        let r = Record::with_size(9_000_000 + i, ((i * 131) % 10_000_000) as u32, 500);
        sae.insert_record(&r).unwrap();
        tom.insert_record(&r).unwrap();
        shadow.push(r);
    }
    for i in (0..3_000u64).step_by(20) {
        let r = shadow.iter().find(|r| r.id == i).unwrap().clone();
        assert!(sae.delete_record(r.id, r.key).unwrap());
        assert!(tom.delete_record(r.id, r.key).unwrap());
        shadow.retain(|x| x.id != i);
    }

    for q in QueryWorkload::uniform(10, 10_000_000, 0.01, 31).iter() {
        let expected: usize = shadow.iter().filter(|r| q.contains(r.key)).count();
        let a = sae.query(q).unwrap();
        let b = tom.query(q).unwrap();
        assert_eq!(a.records.len(), expected, "SAE {q}");
        assert_eq!(b.records.len(), expected, "TOM {q}");
        assert!(a.metrics.verified && b.metrics.verified, "{q}");
    }
}

#[test]
fn concurrent_engine_agrees_with_the_sequential_system() {
    let ds = dataset(5_000, KeyDistribution::unf(), 9);
    let system = SaeSystem::build_in_memory(&ds, ALG).unwrap();
    let engine = SaeEngine::build_cached(&ds, ALG, 256).unwrap();

    let queries = QueryMix::uniform(10_000_000, 0.005)
        .workload(40, 51)
        .queries;
    let report = engine.serve_batch(
        &queries,
        &ServeOptions {
            threads: 4,
            io_micros_per_query: 0,
        },
    );
    assert_eq!(report.queries, 40);
    assert_eq!(report.failed, 0);
    assert!(
        report.all_verified,
        "a concurrent query failed verification"
    );

    // The concurrent batch returns exactly the cardinalities the sequential
    // system (and therefore the oracle) produces.
    let expected: u64 = queries
        .iter()
        .map(|q| system.query(q).unwrap().records.len() as u64)
        .sum();
    assert_eq!(report.totals.result_cardinality, expected);
    // Repeated traversals of the hot upper index levels hit the buffer pool.
    let sp_cache = engine.sp_cache_stats().unwrap();
    assert!(sp_cache.cache_hits > 0);
}

#[test]
fn metrics_reflect_the_papers_qualitative_claims() {
    let ds = dataset(10_000, KeyDistribution::unf(), 8);
    let sae = SaeSystem::build_in_memory(&ds, ALG).unwrap();
    let signer = MacSigner::new(b"key".to_vec());
    let tom = TomSystem::build_in_memory(&ds, ALG, signer.clone(), signer).unwrap();

    let mut sae_total = QueryMetrics {
        verified: true,
        ..Default::default()
    };
    let mut tom_total = QueryMetrics {
        verified: true,
        ..Default::default()
    };
    let workload = QueryWorkload::uniform(25, 10_000_000, 0.005, 77);
    for q in workload.iter() {
        sae_total.accumulate(&sae.query(q).unwrap().metrics);
        tom_total.accumulate(&tom.query(q).unwrap().metrics);
    }
    let n = workload.len() as u64;
    let sae_avg = sae_total.averaged_over(n);
    let tom_avg = tom_total.averaged_over(n);

    // Fig. 5: constant 20-byte token vs VO orders of magnitude larger.
    assert_eq!(sae_avg.auth_bytes, 20);
    assert!(tom_avg.auth_bytes > 100 * sae_avg.auth_bytes);
    // Fig. 6: the SAE SP is cheaper than the TOM SP; the TE is cheaper still.
    assert!(sae_avg.sp_charged_ms < tom_avg.sp_charged_ms);
    assert!(sae_avg.te_charged_ms < sae_avg.sp_charged_ms);
    // Fig. 8: similar SP storage for both; small TE.
    let s = sae.storage_breakdown();
    let t = tom.storage_breakdown();
    let ratio = s.sp_total_bytes() as f64 / t.sp_total_bytes() as f64;
    assert!(ratio > 0.8 && ratio < 1.2);
    assert!(s.te_bytes * 5 < s.sp_total_bytes());
}
