//! Property-based tests over the whole stack: for arbitrary datasets, queries
//! and update sequences, the protocols stay correct and every non-trivial
//! tampering is detected.

use proptest::prelude::*;
use sae::prelude::*;

const ALG: HashAlgorithm = HashAlgorithm::Sha1;

/// A small arbitrary dataset: up to a few hundred records over a small key
/// domain so duplicates and boundary conditions are frequent.
fn arb_records() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec((0u32..500, any::<u8>()), 1..300).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (key, tag))| {
                let mut r = Record::with_size(i as u64, key, 64);
                r.payload[0] = tag;
                r
            })
            .collect()
    })
}

fn dataset_from(records: Vec<Record>) -> Dataset {
    Dataset {
        spec: DatasetSpec {
            cardinality: records.len(),
            distribution: KeyDistribution::Uniform { domain: 500 },
            record_size: 64,
            seed: 0,
        },
        records,
    }
}

fn arb_query() -> impl Strategy<Value = RangeQuery> {
    (0u32..500, 0u32..500).prop_map(|(a, b)| RangeQuery::new(a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Honest SAE executions verify and return exactly the oracle's records,
    /// and the token is the XOR of the oracle's digests.
    #[test]
    fn sae_honest_execution_is_correct(records in arb_records(), q in arb_query()) {
        let ds = dataset_from(records);
        let system = SaeSystem::build_in_memory(&ds, ALG).unwrap();
        let outcome = system.query(&q).unwrap();
        prop_assert!(outcome.metrics.verified);
        prop_assert_eq!(outcome.records.len(), ds.query_cardinality(&q));
        let expected_vt = XorDigest::of(
            ds.query_oracle(&q).iter().map(|r| r.digest(ALG)).collect::<Vec<_>>().iter(),
        );
        prop_assert_eq!(outcome.vt, expected_vt);
    }

    /// Honest TOM executions verify and return exactly the oracle's records.
    #[test]
    fn tom_honest_execution_is_correct(records in arb_records(), q in arb_query()) {
        let ds = dataset_from(records);
        let signer = MacSigner::new(b"pk".to_vec());
        let system = TomSystem::build_in_memory(&ds, ALG, signer.clone(), signer).unwrap();
        let outcome = system.query(&q).unwrap();
        prop_assert!(outcome.metrics.verified);
        prop_assert_eq!(outcome.records.len(), ds.query_cardinality(&q));
    }

    /// Any drop / inject / modify attack on a non-empty result is rejected by
    /// both clients.
    #[test]
    fn both_models_reject_arbitrary_tampering(
        records in arb_records(),
        q in arb_query(),
        strategy_pick in 0usize..3,
        amount in 1usize..4,
        seed in any::<u64>(),
    ) {
        let ds = dataset_from(records);
        prop_assume!(ds.query_cardinality(&q) > 0);

        let strategy = match strategy_pick {
            0 => TamperStrategy::DropRecords { count: amount },
            1 => TamperStrategy::InjectRecords { count: amount },
            _ => TamperStrategy::ModifyRecords { count: amount },
        };

        let sae = SaeSystem::build_in_memory(&ds, ALG).unwrap();
        let outcome = sae.query_with_tamper(&q, strategy, seed).unwrap();
        // Dropping every record of a result and injecting nothing could in
        // principle collide only if DS⊕ == 0, which requires a digest
        // collision; assert rejection unconditionally.
        prop_assert!(!outcome.metrics.verified, "SAE accepted {:?}", strategy);

        let signer = MacSigner::new(b"pk".to_vec());
        let tom = TomSystem::build_in_memory(&ds, ALG, signer.clone(), signer).unwrap();
        let outcome = tom.query_with_tamper(&q, strategy, seed).unwrap();
        prop_assert!(!outcome.metrics.verified, "TOM accepted {:?}", strategy);
    }

    /// The XB-Tree's token generation agrees with a brute-force XOR for any
    /// interleaving of inserts and deletes.
    #[test]
    fn xbtree_tokens_survive_arbitrary_updates(
        initial in prop::collection::vec((0u32..300, 1u8..255), 0..150),
        updates in prop::collection::vec((any::<bool>(), 0u32..300, 1u8..255), 0..80),
        q in (0u32..300, 0u32..300),
    ) {
        let q = RangeQuery::new(q.0, q.1);
        let mut tree = XbTree::new(MemPager::new_shared()).unwrap();
        let mut live: Vec<TeTuple> = Vec::new();
        let mut next_id = 0u64;

        let mut sorted: Vec<TeTuple> = initial
            .iter()
            .map(|&(key, tag)| {
                let mut r = Record::with_size(next_id, key, 64);
                r.payload[0] = tag;
                next_id += 1;
                r.te_tuple(ALG)
            })
            .collect();
        sorted.sort_by_key(|t| (t.key, t.id));
        for t in &sorted {
            tree.insert(*t).unwrap();
            live.push(*t);
        }

        for (is_insert, key, tag) in updates {
            if is_insert || live.is_empty() {
                let mut r = Record::with_size(next_id, key, 64);
                r.payload[0] = tag;
                next_id += 1;
                let t = r.te_tuple(ALG);
                tree.insert(t).unwrap();
                live.push(t);
            } else {
                let victim = live.swap_remove((key as usize) % live.len());
                prop_assert!(tree.delete(victim.key, victim.id).unwrap());
            }
        }

        let expected = XorDigest::of(
            live.iter().filter(|t| q.contains(t.key)).map(|t| t.digest).collect::<Vec<_>>().iter(),
        );
        prop_assert_eq!(tree.generate_vt(&q).unwrap(), expected);
        tree.check_invariants().unwrap();
    }

    /// MB-Tree VOs generated from arbitrary datasets verify for honest
    /// results and fail when any single result record is withheld.
    #[test]
    fn mbtree_vo_round_trip_and_drop_detection(records in arb_records(), q in arb_query()) {
        let ds = dataset_from(records);
        let signer = MacSigner::new(b"pk".to_vec());
        let system = TomSystem::build_in_memory(&ds, ALG, signer.clone(), signer).unwrap();
        let outcome = system.query(&q).unwrap();
        prop_assert!(outcome.metrics.verified);

        if !outcome.records.is_empty() {
            let dropped = system
                .query_with_tamper(&q, TamperStrategy::DropRecords { count: 1 }, 3)
                .unwrap();
            prop_assert!(!dropped.metrics.verified);
        }
    }
}
