//! Cross-crate regression tests for the key-range sharded SAE deployment:
//! scatter-gather results must match the single-pair oracle on every layout,
//! and every cross-shard tamper — a silently dropped shard slice, a record
//! smuggled across a shard boundary, and the shard-local replay of the PR 2
//! duplicate-injection attack — must fail verification.

use sae::prelude::*;

const ALG: HashAlgorithm = HashAlgorithm::Sha1;
const DOMAIN: u32 = 10_000_000;

fn dataset(n: usize, seed: u64) -> Dataset {
    DatasetSpec {
        cardinality: n,
        distribution: KeyDistribution::unf(),
        record_size: 500,
        seed,
    }
    .generate()
}

/// Whether the `SAE_SHARDED_BACKEND=file` test-matrix leg is active: every
/// engine in this file then runs on `FilePager`-backed shards in a temp
/// deployment directory instead of `MemPager`s, exercising the exact same
/// scatter-gather and tamper assertions against the durable serving path.
/// `SAE_DURABILITY_POLICY=immediate|group|flush-on-close` additionally
/// selects the commit policy of that durable path (default immediate).
fn file_backed() -> bool {
    std::env::var("SAE_SHARDED_BACKEND").as_deref() == Ok("file")
}

fn durability_policy() -> DurabilityPolicy {
    match std::env::var("SAE_DURABILITY_POLICY").as_deref() {
        Ok("group") => DurabilityPolicy::group(),
        Ok("flush-on-close") => DurabilityPolicy::FlushOnClose,
        _ => DurabilityPolicy::Immediate,
    }
}

/// Builds an engine on the configured backend. The returned `TempDir` guard
/// (if any) must outlive the engine.
fn build_engine(
    ds: &Dataset,
    shards: usize,
    cache_pages: Option<usize>,
) -> (ShardedSaeEngine, Option<tempfile::TempDir>) {
    if file_backed() {
        let dir = tempfile::tempdir().expect("create deployment dir");
        let engine = ShardedSaeEngine::create_dir_with(
            dir.path(),
            ds,
            ALG,
            shards,
            cache_pages,
            durability_policy(),
        )
        .expect("create durable engine");
        (engine, Some(dir))
    } else {
        let engine = match cache_pages {
            Some(pages) => ShardedSaeEngine::build_cached(ds, ALG, shards, pages),
            None => ShardedSaeEngine::build_in_memory(ds, ALG, shards),
        }
        .expect("build in-memory engine");
        (engine, None)
    }
}

#[test]
fn sharded_scatter_gather_matches_the_oracle_on_every_layout() {
    let ds = dataset(6_000, 1);
    let oracle = SaeSystem::build_in_memory(&ds, ALG).unwrap();
    for shards in [1usize, 2, 4, 8] {
        let (engine, _dir) = build_engine(&ds, shards, None);
        for q in QueryMix::spanning(DOMAIN, 0.01, shards.max(2))
            .workload(15, 7)
            .iter()
        {
            let sharded = engine.query(q).unwrap();
            assert!(sharded.verdict.is_ok(), "{shards} shards, {q}");
            let flat = oracle.query(q).unwrap();
            let stitched: Vec<Vec<u8>> = sharded
                .slices
                .iter()
                .flat_map(|s| s.records.iter().cloned())
                .collect();
            assert_eq!(stitched, flat.records, "{shards} shards, {q}");
            // One 20-byte token per responding shard.
            assert_eq!(sharded.metrics.auth_bytes, 20 * sharded.slices.len() as u64);
        }
    }
}

#[test]
fn dropped_shard_slices_fail_verification_on_every_layout() {
    let ds = dataset(4_000, 2);
    let q = RangeQuery::new(0, DOMAIN);
    for shards in [1usize, 2, 3, 4, 8] {
        let (engine, _dir) = build_engine(&ds, shards, None);
        for victim in 0..shards {
            let outcome = engine
                .query_with_tamper(&q, TamperStrategy::DropShardSlice { shard: victim }, 3)
                .unwrap();
            assert!(
                matches!(
                    outcome.verdict,
                    Err(ShardedVerifyError::MissingShardSlice { .. })
                ),
                "{shards}-shard layout accepted a dropped slice (victim {victim}): {:?}",
                outcome.verdict
            );
        }
    }
}

#[test]
fn boundary_swaps_fail_verification() {
    let ds = dataset(4_000, 3);
    for shards in [2usize, 3, 4, 8] {
        let (engine, _dir) = build_engine(&ds, shards, None);
        let outcome = engine
            .query_with_tamper(
                &RangeQuery::new(0, DOMAIN),
                TamperStrategy::ShardBoundarySwap,
                5,
            )
            .unwrap();
        assert!(
            matches!(outcome.verdict, Err(ShardedVerifyError::Slice { .. })),
            "{shards}-shard layout accepted a boundary swap: {:?}",
            outcome.verdict
        );
    }
}

#[test]
fn shard_local_duplicate_injection_replays_are_rejected() {
    // The PR 2 attack, replayed inside one shard's digest domain: an
    // even-multiplicity duplicate cancels out of the shard's bare XOR fold,
    // so only the structural per-slice checks can catch it.
    let ds = dataset(4_000, 4);
    let (engine, _dir) = build_engine(&ds, 4, None);
    let q = RangeQuery::new(1_000_000, 9_000_000);
    for strategy in [
        TamperStrategy::DuplicatePair { count: 2 },
        TamperStrategy::DuplicateExisting { count: 1 },
    ] {
        let outcome = engine.query_with_tamper(&q, strategy, 11).unwrap();
        assert!(
            matches!(
                outcome.verdict,
                Err(ShardedVerifyError::Slice {
                    error: SaeVerifyError::DuplicateRecordId(_),
                    ..
                })
            ),
            "{strategy:?}: {:?}",
            outcome.verdict
        );
    }
}

#[test]
fn sharded_desync_rolls_back_and_stays_detectable() {
    let ds = dataset(2_000, 5);
    let (engine, _dir) = build_engine(&ds, 4, None);
    let victim = ds.records[42].clone();
    let shard = engine.layout().shard_of(victim.key);

    // One-sided divergence inside the owning shard: the TE loses the tuple.
    assert!(engine.with_te_mut(shard, |te| te.delete(victim.id, victim.key).unwrap()));
    let err = engine.delete(victim.id, victim.key).unwrap_err();
    assert!(
        matches!(err, sae::storage::StorageError::Desync(_)),
        "{err}"
    );

    // The shard's SP removal was rolled back, so the record is still served —
    // and the divergence surfaces as a verification failure, never silently.
    let outcome = engine
        .query(&RangeQuery::new(victim.key, victim.key))
        .unwrap();
    assert!(outcome
        .slices
        .iter()
        .flat_map(|s| s.records.iter())
        .any(|r| Record::decode(r).unwrap().id == victim.id));
    assert!(!outcome.metrics.verified);

    // Other shards are unaffected: a query avoiding the poisoned key range
    // still verifies.
    let other_shard = (shard + 1) % engine.shard_count();
    let clean = engine.layout().range(other_shard);
    let outcome = engine.query(&clean).unwrap();
    assert!(outcome.verdict.is_ok());
}

#[test]
fn concurrent_spanning_batches_and_routed_updates_agree_with_the_oracle() {
    let ds = dataset(5_000, 6);
    let oracle = SaeSystem::build_in_memory(&ds, ALG).unwrap();
    let (engine, _dir) = build_engine(&ds, 4, Some(256));
    let queries = QueryMix::spanning(DOMAIN, 0.005, 4)
        .workload(40, 13)
        .queries;
    let report = engine.serve_batch(
        &queries,
        &ServeOptions {
            threads: 4,
            io_micros_per_query: 0,
        },
    );
    assert_eq!(report.queries, 40);
    assert!(report.all_verified, "a sharded concurrent query failed");
    let expected: u64 = queries
        .iter()
        .map(|q| oracle.query(q).unwrap().records.len() as u64)
        .sum();
    assert_eq!(report.totals.result_cardinality, expected);
    // The grouped per-party accounting spans all shards.
    assert_eq!(report.party_io.len(), 2);
    assert!(report.totals.sp_node_accesses > 0);
    assert!(report.totals.te_node_accesses > 0);
}
