//! Cross-crate recovery tests for the durable sharded deployment: a
//! created-populated-closed deployment must reopen from its manifest roots
//! (never rebuilding from the dataset) and serve byte-identical verified
//! results on every layout, while torn/garbage/stale manifests, swapped
//! shard files and on-disk tampers are rejected — with typed errors, never a
//! panic or a silently-empty deployment. The crash-point tests kill the
//! commit pipeline between its stages (`CommitCrashPoint`) and assert that
//! reopening *recovers*: the write-ahead log replays every acknowledged
//! write, so no crash point leaves the directory refusing to open — only
//! the doomed in-flight write's visibility varies by where the kill landed
//! relative to the log fsync.
//!
//! `SAE_DURABILITY_POLICY=immediate|group|flush-on-close` selects the
//! commit policy every engine in this file runs under (default immediate),
//! so CI exercises the whole recovery suite per policy.

use sae::prelude::*;
use sae::storage::{
    FilePager, PageStore, Party, ShardHeader, StorageError, PAGE_SIZE, SHARD_HEADER_PAGE,
};
use std::path::Path;

const ALG: HashAlgorithm = HashAlgorithm::Sha1;
const DOMAIN: u32 = 10_000_000;

fn dataset(n: usize, seed: u64) -> Dataset {
    DatasetSpec {
        cardinality: n,
        distribution: KeyDistribution::unf(),
        record_size: 500,
        seed,
    }
    .generate()
}

/// The durability policy the test-matrix leg selects (default immediate).
fn policy() -> DurabilityPolicy {
    match std::env::var("SAE_DURABILITY_POLICY").as_deref() {
        Ok("group") => DurabilityPolicy::group(),
        Ok("flush-on-close") => DurabilityPolicy::FlushOnClose,
        _ => DurabilityPolicy::Immediate,
    }
}

/// Creates a durable engine under the configured policy.
fn create_engine(
    dir: &Path,
    ds: &Dataset,
    shards: usize,
    cache_pages: Option<usize>,
) -> ShardedSaeEngine {
    ShardedSaeEngine::create_dir_with(dir, ds, ALG, shards, cache_pages, policy()).unwrap()
}

/// Whether the configured policy commits accepted writes before returning.
fn writes_commit_eagerly() -> bool {
    policy() != DurabilityPolicy::FlushOnClose
}

#[test]
fn reopen_after_close_round_trips_queries_and_digests_on_every_layout() {
    let ds = dataset(4_000, 11);
    for shards in 1usize..=8 {
        let dir = tempfile::tempdir().unwrap();
        let engine = create_engine(dir.path(), &ds, shards, None);
        let queries = QueryMix::spanning(DOMAIN, 0.01, shards.max(2))
            .workload(8, 23)
            .queries;
        let before: Vec<_> = queries.iter().map(|q| engine.query(q).unwrap()).collect();
        engine.close().unwrap();

        let reopened = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
        assert_eq!(reopened.shard_count(), shards);
        for (q, expected) in queries.iter().zip(&before) {
            let outcome = reopened.query(q).unwrap();
            assert!(outcome.verdict.is_ok(), "{shards} shards, {q}");
            // Byte-identical records *and* identical per-slice verification
            // tokens: the reopened deployment serves the same authenticated
            // state, not a rebuilt approximation of it.
            assert_eq!(outcome.slices.len(), expected.slices.len());
            for (a, b) in outcome.slices.iter().zip(&expected.slices) {
                assert_eq!(a.shard, b.shard, "{shards} shards, {q}");
                assert_eq!(a.records, b.records, "{shards} shards, {q}");
                assert_eq!(a.vt, b.vt, "{shards} shards, {q}");
            }
        }
        // Every existing tamper strategy is still detected post-reopen.
        let q = RangeQuery::new(0, DOMAIN);
        for strategy in [
            TamperStrategy::DropRecords { count: 1 },
            TamperStrategy::InjectRecords { count: 1 },
            TamperStrategy::ModifyRecords { count: 1 },
            TamperStrategy::DuplicatePair { count: 1 },
            TamperStrategy::DuplicateExisting { count: 1 },
            TamperStrategy::DropShardSlice { shard: 0 },
            TamperStrategy::ShardBoundarySwap,
        ] {
            let outcome = reopened.query_with_tamper(&q, strategy, 7).unwrap();
            assert!(
                !outcome.metrics.verified,
                "{shards} shards: {strategy:?} went undetected after reopen"
            );
        }
        reopened.close().unwrap();
    }
}

#[test]
fn committed_updates_survive_repeated_restarts() {
    let ds = dataset(1_500, 12);
    let dir = tempfile::tempdir().unwrap();
    let fresh = Record::with_size(8_400_000, 4_321_000, 500);

    let engine = create_engine(dir.path(), &ds, 4, Some(128));
    engine.insert(&fresh).unwrap();
    engine.close().unwrap();

    // Restart 1: the insert is there; delete it.
    let engine = ShardedSaeEngine::open_dir(dir.path(), ALG, Some(128)).unwrap();
    let q = RangeQuery::new(fresh.key, fresh.key);
    let outcome = engine.query(&q).unwrap();
    assert!(outcome.verdict.is_ok());
    assert!(outcome
        .slices
        .iter()
        .flat_map(|s| s.records.iter())
        .any(|r| Record::decode(r).unwrap().id == fresh.id));
    assert!(engine.delete(fresh.id, fresh.key).unwrap());
    engine.close().unwrap();

    // Restart 2: the delete stuck, the tombstone stayed dead, and the whole
    // domain still verifies.
    let engine = ShardedSaeEngine::open_dir(dir.path(), ALG, Some(128)).unwrap();
    let outcome = engine.query(&q).unwrap();
    assert!(outcome.verdict.is_ok());
    assert!(!outcome
        .slices
        .iter()
        .flat_map(|s| s.records.iter())
        .any(|r| Record::decode(r).unwrap().id == fresh.id));
    let full = engine.query(&RangeQuery::new(0, DOMAIN)).unwrap();
    assert!(full.verdict.is_ok());
    assert_eq!(full.metrics.result_cardinality, ds.records.len() as u64);
    engine.close().unwrap();
}

fn close_deployment(dir: &Path, shards: usize) {
    let ds = dataset(600, 13);
    create_engine(dir, &ds, shards, None).close().unwrap();
}

#[test]
fn create_dir_refuses_to_overwrite_an_existing_deployment() {
    let dir = tempfile::tempdir().unwrap();
    close_deployment(dir.path(), 2);
    // Re-running creation against a live deployment must not truncate it.
    let err = ShardedSaeEngine::create_dir(dir.path(), &dataset(100, 99), ALG, 2, None)
        .err()
        .expect("create over an existing deployment must fail");
    assert!(
        matches!(&err, StorageError::Io(e) if e.kind() == std::io::ErrorKind::AlreadyExists),
        "{err:?}"
    );
    // The refused create left the deployment intact and reopenable.
    let engine = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
    assert!(engine
        .query(&RangeQuery::new(0, DOMAIN))
        .unwrap()
        .verdict
        .is_ok());
}

#[test]
fn torn_and_garbage_manifests_are_rejected_with_typed_errors() {
    let dir = tempfile::tempdir().unwrap();
    close_deployment(dir.path(), 2);
    let manifest = dir.path().join("MANIFEST");

    // Torn manifest: truncated mid-page.
    let full = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &full[..1000]).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));

    // Garbage manifest: right size, wrong bytes.
    std::fs::write(&manifest, vec![0x5Au8; PAGE_SIZE]).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));

    // Missing manifest.
    std::fs::remove_file(&manifest).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));

    // Valid manifest, missing shard file.
    std::fs::write(&manifest, &full).unwrap();
    std::fs::remove_file(dir.path().join("te-1.pages")).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));
}

#[test]
fn stale_manifest_is_rejected_as_its_own_error() {
    let dir = tempfile::tempdir().unwrap();
    close_deployment(dir.path(), 2);

    // Simulate "pages synced, manifest not": shard 1's files carry a commit
    // epoch the manifest never recorded.
    for (party, file) in [(Party::Sp, "sp-1.pages"), (Party::Te, "te-1.pages")] {
        let pager = FilePager::open(dir.path().join(file)).unwrap();
        let old = ShardHeader::decode(&pager.read(SHARD_HEADER_PAGE).unwrap()).unwrap();
        let bumped = ShardHeader {
            epoch: old.epoch + 1,
            ..old
        };
        assert_eq!(old.party, party);
        pager.write(SHARD_HEADER_PAGE, &bumped.encode()).unwrap();
        pager.sync().unwrap();
    }
    match ShardedSaeEngine::open_dir(dir.path(), ALG, None) {
        Err(StorageError::StaleManifest {
            shard,
            manifest_epoch,
            file_epoch,
        }) => {
            assert_eq!(shard, 1);
            assert_eq!(file_epoch, manifest_epoch + 1);
        }
        Err(other) => panic!("expected StaleManifest, got {other:?}"),
        Ok(_) => panic!("stale manifest was accepted"),
    }
}

#[test]
fn swapped_shard_files_are_rejected_before_serving() {
    // The attack the identity headers exist for: between a shutdown and the
    // next serve, shard files are swapped (sp-0 ↔ sp-1). Both files are
    // internally valid pager files, so only the identity check can tell.
    let dir = tempfile::tempdir().unwrap();
    close_deployment(dir.path(), 2);
    let a = dir.path().join("sp-0.pages");
    let b = dir.path().join("sp-1.pages");
    let tmp = dir.path().join("swap.tmp");
    std::fs::rename(&a, &tmp).unwrap();
    std::fs::rename(&b, &a).unwrap();
    std::fs::rename(&tmp, &b).unwrap();
    match ShardedSaeEngine::open_dir(dir.path(), ALG, None) {
        Err(StorageError::Corrupted(msg)) => {
            assert!(msg.contains("identity mismatch"), "{msg}")
        }
        Err(other) => panic!("expected Corrupted identity mismatch, got {other:?}"),
        Ok(_) => panic!("swapped shard files were accepted"),
    }

    // Same for a TE file swapped in for an SP file.
    let dir = tempfile::tempdir().unwrap();
    close_deployment(dir.path(), 1);
    let sp = dir.path().join("sp-0.pages");
    let te = dir.path().join("te-0.pages");
    let tmp = dir.path().join("swap.tmp");
    std::fs::rename(&sp, &tmp).unwrap();
    std::fs::rename(&te, &sp).unwrap();
    std::fs::rename(&tmp, &te).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));
}

#[test]
fn on_disk_tampering_is_detected_after_reopen() {
    // Flipping payload bytes inside a committed heap page leaves every
    // header and the manifest intact, so the reopen itself succeeds — but
    // the tampered record no longer hashes to its TE digest, so the first
    // query covering it fails verification.
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(800, 14);
    create_engine(dir.path(), &ds, 2, None).close().unwrap();

    // sp-0.pages layout: page 0 = identity header, page 1 = heap page
    // directory, page 2 = first heap page. Byte 50 of the first record is
    // payload (past the 12-byte id/key header).
    let path = dir.path().join("sp-0.pages");
    let mut bytes = std::fs::read(&path).unwrap();
    let offset = 2 * PAGE_SIZE + 50;
    bytes[offset] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let reopened = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
    let outcome = reopened.query(&RangeQuery::new(0, DOMAIN)).unwrap();
    assert!(
        matches!(
            outcome.verdict,
            Err(ShardedVerifyError::Slice { shard: 0, .. })
        ),
        "on-disk heap tamper went undetected: {:?}",
        outcome.verdict
    );

    // A truncated TE file cannot even open: its committed root is gone.
    let te_path = dir.path().join("te-0.pages");
    let te_bytes = std::fs::read(&te_path).unwrap();
    std::fs::write(&te_path, &te_bytes[..PAGE_SIZE]).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));
}

/// Commits a prefix (bulk load + one insert + explicit flush), then returns
/// the engine and the record the committed prefix must contain.
fn committed_prefix(dir: &Path, ds: &Dataset) -> (ShardedSaeEngine, Record) {
    // The no-steal write-back cache keeps uncommitted mutations out of the
    // page files, so whatever the kill leaves behind is always the last
    // checkpoint plus a replayable log.
    let engine = create_engine(dir, ds, 2, Some(512));
    let committed = Record::with_size(8_500_000, 2_000_000, 500);
    engine.insert(&committed).unwrap();
    engine.flush().unwrap();
    (engine, committed)
}

fn served_ids(engine: &ShardedSaeEngine, q: &RangeQuery) -> Vec<u64> {
    engine
        .query(q)
        .unwrap()
        .slices
        .iter()
        .flat_map(|s| s.records.iter())
        .map(|r| Record::decode(r).unwrap().id)
        .collect()
}

/// A kill before any commit work starts: the files still hold exactly the
/// committed prefix, and the reopened deployment serves it verified — the
/// in-flight write is cleanly absent, never half-applied.
#[test]
fn crash_before_commit_recovers_the_verified_committed_prefix() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(800, 21);
    let (engine, committed) = committed_prefix(dir.path(), &ds);

    engine.set_commit_crash_point(Some(CommitCrashPoint::BeforeCommit));
    let doomed = Record::with_size(8_600_000, 6_000_000, 500);
    // Eager policies report the injected commit failure; FlushOnClose
    // accepts from memory and never reaches the crash point.
    assert_eq!(engine.insert(&doomed).is_err(), writes_commit_eagerly());
    // Kill -9: no Drop, no cache write-back, no final sync.
    std::mem::forget(engine);

    let reopened = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
    let full = reopened.query(&RangeQuery::new(0, DOMAIN)).unwrap();
    assert!(full.verdict.is_ok(), "{:?}", full.verdict);
    let ids = served_ids(&reopened, &RangeQuery::new(0, DOMAIN));
    assert!(ids.contains(&committed.id), "committed prefix lost");
    assert!(!ids.contains(&doomed.id), "un-committed write resurrected");
}

/// A kill after the transaction was appended to the log but before the log
/// fsync. Under the `mem::forget` crash model the appended bytes survive,
/// so log replay recovers the doomed write too (on real hardware the tail
/// might equally be torn off by the scan — both outcomes serve verified);
/// what the WAL guarantees is that the reopen *recovers* instead of
/// refusing, which before the log existed was exactly the torn state that
/// had to be rejected as corrupted.
#[test]
fn crash_after_log_append_recovers_by_replay() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(800, 22);
    let (engine, committed) = committed_prefix(dir.path(), &ds);

    engine.set_commit_crash_point(Some(CommitCrashPoint::AfterPageFlush));
    let doomed = Record::with_size(8_600_001, 6_000_001, 500);
    assert_eq!(engine.insert(&doomed).is_err(), writes_commit_eagerly());
    std::mem::forget(engine);

    let reopened = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
    let full = reopened.query(&RangeQuery::new(0, DOMAIN)).unwrap();
    assert!(full.verdict.is_ok(), "{:?}", full.verdict);
    let ids = served_ids(&reopened, &RangeQuery::new(0, DOMAIN));
    assert!(ids.contains(&committed.id), "committed prefix lost");
    // Eager policies appended the doomed transaction before the kill, and
    // the surviving bytes replay; FlushOnClose never logged it.
    assert_eq!(ids.contains(&doomed.id), writes_commit_eagerly());
    // Recovery checkpointed the replayed state: reopening again replays
    // nothing and serves the same ids.
    reopened.close().unwrap();
    let again = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
    assert_eq!(served_ids(&again, &RangeQuery::new(0, DOMAIN)), ids);
}

/// A kill after the log fsync that made the transaction durable but before
/// the writer was acknowledged — the pre-WAL pipeline's classic
/// pages-ahead-of-manifest crash, which used to *refuse* to reopen with
/// `StaleManifest`. With the log, replay recovers the write: durable means
/// recoverable, even when the acknowledgement never arrived.
#[test]
fn crash_after_ack_fsync_recovers_the_durable_write() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(800, 23);
    let (engine, committed) = committed_prefix(dir.path(), &ds);

    engine.set_commit_crash_point(Some(CommitCrashPoint::AfterHeaderSync));
    let doomed = Record::with_size(8_600_002, 6_000_002, 500);
    assert_eq!(engine.insert(&doomed).is_err(), writes_commit_eagerly());
    std::mem::forget(engine);

    let reopened = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
    let full = reopened.query(&RangeQuery::new(0, DOMAIN)).unwrap();
    assert!(full.verdict.is_ok(), "{:?}", full.verdict);
    let ids = served_ids(&reopened, &RangeQuery::new(0, DOMAIN));
    assert!(ids.contains(&committed.id), "committed prefix lost");
    assert_eq!(ids.contains(&doomed.id), writes_commit_eagerly());
}

/// The full matrix the WAL exists for: a kill at *every* crash point leaves
/// a directory that reopens and serves verified — zero refusals — with
/// every previously acknowledged write intact. `SAE_DURABILITY_POLICY`
/// extends the matrix across policies.
#[test]
fn crash_matrix_every_point_reopens_verified_with_acknowledged_writes() {
    for (round, point) in [
        CommitCrashPoint::BeforeCommit,
        CommitCrashPoint::AfterPageFlush,
        CommitCrashPoint::AfterHeaderSync,
    ]
    .into_iter()
    .enumerate()
    {
        let dir = tempfile::tempdir().unwrap();
        let ds = dataset(600, 26 + round as u64);
        let (engine, committed) = committed_prefix(dir.path(), &ds);
        // An acknowledged write after the committed prefix, then the kill.
        let acked = Record::with_size(8_800_000, 5_000_000, 500);
        engine.insert(&acked).unwrap();
        if !writes_commit_eagerly() {
            engine.flush().unwrap();
        }
        engine.set_commit_crash_point(Some(point));
        let doomed = Record::with_size(8_800_001, 5_500_000, 500);
        assert_eq!(
            engine.insert(&doomed).is_err(),
            writes_commit_eagerly(),
            "{point:?}"
        );
        std::mem::forget(engine);

        let reopened = ShardedSaeEngine::open_dir(dir.path(), ALG, None)
            .unwrap_or_else(|e| panic!("{point:?}: reopen refused with {e:?}"));
        let full = reopened.query(&RangeQuery::new(0, DOMAIN)).unwrap();
        assert!(full.verdict.is_ok(), "{point:?}: {:?}", full.verdict);
        let ids = served_ids(&reopened, &RangeQuery::new(0, DOMAIN));
        assert!(
            ids.contains(&committed.id),
            "{point:?}: committed prefix lost"
        );
        assert!(
            ids.contains(&acked.id),
            "{point:?}: acknowledged write lost"
        );
        if point == CommitCrashPoint::BeforeCommit {
            // Killed before the log append: the doomed write left no trace.
            assert!(
                !ids.contains(&doomed.id),
                "{point:?}: unlogged write appeared"
            );
        }
    }
}

/// `close()` surfaces the checkpoint errors that `Drop` can only swallow
/// (and record on [`sae::storage::IoStats::swallowed_sync_errors`]): with
/// the deployment directory gone, the final checkpoint's manifest replace
/// has nowhere to land, and close must report that as a typed error — not
/// return `Ok` as if the state were durable, and not panic.
#[test]
fn close_surfaces_checkpoint_errors_instead_of_swallowing_them() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(400, 27);
    let engine = create_engine(dir.path(), &ds, 2, None);
    let fresh = Record::with_size(8_900_000, 4_000_000, 500);
    engine.insert(&fresh).unwrap();

    // Pull the directory out from under the engine. Writes and fsyncs to
    // the already-open page/log file handles still succeed (the inodes
    // live on), so the first thing that can fail is the checkpoint's
    // atomic manifest replacement — exactly the error Drop would swallow.
    std::fs::remove_dir_all(dir.path()).unwrap();
    let err = engine
        .close()
        .expect_err("close over a vanished deployment directory must fail");
    assert!(matches!(err, StorageError::Io(_)), "{err:?}");
}

/// A completed commit followed by a kill (no close, no Drop): the write is
/// part of the committed prefix and must be served verified after reopen.
#[test]
fn crash_after_full_commit_serves_the_new_state() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(800, 24);
    let (engine, committed) = committed_prefix(dir.path(), &ds);

    let landed = Record::with_size(8_600_003, 6_000_003, 500);
    engine.insert(&landed).unwrap();
    if !writes_commit_eagerly() {
        // FlushOnClose acknowledges from memory; pin the commit explicitly.
        engine.flush().unwrap();
    }
    std::mem::forget(engine);

    let reopened = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
    let full = reopened.query(&RangeQuery::new(0, DOMAIN)).unwrap();
    assert!(full.verdict.is_ok(), "{:?}", full.verdict);
    let ids = served_ids(&reopened, &RangeQuery::new(0, DOMAIN));
    assert!(ids.contains(&committed.id));
    assert!(ids.contains(&landed.id));
}

/// The group-commit durability contract under a kill: every *acknowledged*
/// concurrent write is part of the committed prefix a reopen recovers, with
/// verified digests — batching amortizes fsyncs without weakening what an
/// acknowledgement means.
#[test]
fn group_acknowledged_writes_survive_a_kill() {
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(800, 25);
    let engine = ShardedSaeEngine::create_dir_with(
        dir.path(),
        &ds,
        ALG,
        4,
        Some(512),
        DurabilityPolicy::group(),
    )
    .unwrap();

    let records: Vec<Record> = (0..8u64)
        .map(|i| Record::with_size(8_700_000 + i, (1_000_000 * (i + 1)) as u32, 500))
        .collect();
    std::thread::scope(|scope| {
        for r in &records {
            let engine = &engine;
            scope.spawn(move || engine.insert(r).unwrap());
        }
    });
    // Kill -9 after every insert was acknowledged: no close, no Drop.
    std::mem::forget(engine);

    let reopened = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
    let full = reopened.query(&RangeQuery::new(0, DOMAIN)).unwrap();
    assert!(full.verdict.is_ok(), "{:?}", full.verdict);
    let ids = served_ids(&reopened, &RangeQuery::new(0, DOMAIN));
    for r in &records {
        assert!(ids.contains(&r.id), "acknowledged write {} lost", r.id);
    }
}
