//! Cross-crate recovery tests for the durable sharded deployment: a
//! created-populated-closed deployment must reopen from its manifest roots
//! (never rebuilding from the dataset) and serve byte-identical verified
//! results on every layout, while torn/garbage/stale manifests, swapped
//! shard files and on-disk tampers are rejected — with typed errors, never a
//! panic or a silently-empty deployment.

use sae::prelude::*;
use sae::storage::{
    FilePager, PageStore, Party, ShardHeader, StorageError, PAGE_SIZE, SHARD_HEADER_PAGE,
};
use std::path::Path;

const ALG: HashAlgorithm = HashAlgorithm::Sha1;
const DOMAIN: u32 = 10_000_000;

fn dataset(n: usize, seed: u64) -> Dataset {
    DatasetSpec {
        cardinality: n,
        distribution: KeyDistribution::unf(),
        record_size: 500,
        seed,
    }
    .generate()
}

#[test]
fn reopen_after_close_round_trips_queries_and_digests_on_every_layout() {
    let ds = dataset(4_000, 11);
    for shards in 1usize..=8 {
        let dir = tempfile::tempdir().unwrap();
        let engine = ShardedSaeEngine::create_dir(dir.path(), &ds, ALG, shards, None).unwrap();
        let queries = QueryMix::spanning(DOMAIN, 0.01, shards.max(2))
            .workload(8, 23)
            .queries;
        let before: Vec<_> = queries.iter().map(|q| engine.query(q).unwrap()).collect();
        engine.close().unwrap();

        let reopened = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
        assert_eq!(reopened.shard_count(), shards);
        for (q, expected) in queries.iter().zip(&before) {
            let outcome = reopened.query(q).unwrap();
            assert!(outcome.verdict.is_ok(), "{shards} shards, {q}");
            // Byte-identical records *and* identical per-slice verification
            // tokens: the reopened deployment serves the same authenticated
            // state, not a rebuilt approximation of it.
            assert_eq!(outcome.slices.len(), expected.slices.len());
            for (a, b) in outcome.slices.iter().zip(&expected.slices) {
                assert_eq!(a.shard, b.shard, "{shards} shards, {q}");
                assert_eq!(a.records, b.records, "{shards} shards, {q}");
                assert_eq!(a.vt, b.vt, "{shards} shards, {q}");
            }
        }
        // Every existing tamper strategy is still detected post-reopen.
        let q = RangeQuery::new(0, DOMAIN);
        for strategy in [
            TamperStrategy::DropRecords { count: 1 },
            TamperStrategy::InjectRecords { count: 1 },
            TamperStrategy::ModifyRecords { count: 1 },
            TamperStrategy::DuplicatePair { count: 1 },
            TamperStrategy::DuplicateExisting { count: 1 },
            TamperStrategy::DropShardSlice { shard: 0 },
            TamperStrategy::ShardBoundarySwap,
        ] {
            let outcome = reopened.query_with_tamper(&q, strategy, 7).unwrap();
            assert!(
                !outcome.metrics.verified,
                "{shards} shards: {strategy:?} went undetected after reopen"
            );
        }
        reopened.close().unwrap();
    }
}

#[test]
fn committed_updates_survive_repeated_restarts() {
    let ds = dataset(1_500, 12);
    let dir = tempfile::tempdir().unwrap();
    let fresh = Record::with_size(8_400_000, 4_321_000, 500);

    let engine = ShardedSaeEngine::create_dir(dir.path(), &ds, ALG, 4, Some(128)).unwrap();
    engine.insert(&fresh).unwrap();
    engine.close().unwrap();

    // Restart 1: the insert is there; delete it.
    let engine = ShardedSaeEngine::open_dir(dir.path(), ALG, Some(128)).unwrap();
    let q = RangeQuery::new(fresh.key, fresh.key);
    let outcome = engine.query(&q).unwrap();
    assert!(outcome.verdict.is_ok());
    assert!(outcome
        .slices
        .iter()
        .flat_map(|s| s.records.iter())
        .any(|r| Record::decode(r).unwrap().id == fresh.id));
    assert!(engine.delete(fresh.id, fresh.key).unwrap());
    engine.close().unwrap();

    // Restart 2: the delete stuck, the tombstone stayed dead, and the whole
    // domain still verifies.
    let engine = ShardedSaeEngine::open_dir(dir.path(), ALG, Some(128)).unwrap();
    let outcome = engine.query(&q).unwrap();
    assert!(outcome.verdict.is_ok());
    assert!(!outcome
        .slices
        .iter()
        .flat_map(|s| s.records.iter())
        .any(|r| Record::decode(r).unwrap().id == fresh.id));
    let full = engine.query(&RangeQuery::new(0, DOMAIN)).unwrap();
    assert!(full.verdict.is_ok());
    assert_eq!(full.metrics.result_cardinality, ds.records.len() as u64);
    engine.close().unwrap();
}

fn close_deployment(dir: &Path, shards: usize) {
    let ds = dataset(600, 13);
    ShardedSaeEngine::create_dir(dir, &ds, ALG, shards, None)
        .unwrap()
        .close()
        .unwrap();
}

#[test]
fn create_dir_refuses_to_overwrite_an_existing_deployment() {
    let dir = tempfile::tempdir().unwrap();
    close_deployment(dir.path(), 2);
    // Re-running creation against a live deployment must not truncate it.
    let err = ShardedSaeEngine::create_dir(dir.path(), &dataset(100, 99), ALG, 2, None)
        .err()
        .expect("create over an existing deployment must fail");
    assert!(
        matches!(&err, StorageError::Io(e) if e.kind() == std::io::ErrorKind::AlreadyExists),
        "{err:?}"
    );
    // The refused create left the deployment intact and reopenable.
    let engine = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
    assert!(engine
        .query(&RangeQuery::new(0, DOMAIN))
        .unwrap()
        .verdict
        .is_ok());
}

#[test]
fn torn_and_garbage_manifests_are_rejected_with_typed_errors() {
    let dir = tempfile::tempdir().unwrap();
    close_deployment(dir.path(), 2);
    let manifest = dir.path().join("MANIFEST");

    // Torn manifest: truncated mid-page.
    let full = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &full[..1000]).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));

    // Garbage manifest: right size, wrong bytes.
    std::fs::write(&manifest, vec![0x5Au8; PAGE_SIZE]).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));

    // Missing manifest.
    std::fs::remove_file(&manifest).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));

    // Valid manifest, missing shard file.
    std::fs::write(&manifest, &full).unwrap();
    std::fs::remove_file(dir.path().join("te-1.pages")).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));
}

#[test]
fn stale_manifest_is_rejected_as_its_own_error() {
    let dir = tempfile::tempdir().unwrap();
    close_deployment(dir.path(), 2);

    // Simulate "pages synced, manifest not": shard 1's files carry a commit
    // epoch the manifest never recorded.
    for (party, file) in [(Party::Sp, "sp-1.pages"), (Party::Te, "te-1.pages")] {
        let pager = FilePager::open(dir.path().join(file)).unwrap();
        let old = ShardHeader::decode(&pager.read(SHARD_HEADER_PAGE).unwrap()).unwrap();
        let bumped = ShardHeader {
            epoch: old.epoch + 1,
            ..old
        };
        assert_eq!(old.party, party);
        pager.write(SHARD_HEADER_PAGE, &bumped.encode()).unwrap();
        pager.sync().unwrap();
    }
    match ShardedSaeEngine::open_dir(dir.path(), ALG, None) {
        Err(StorageError::StaleManifest {
            shard,
            manifest_epoch,
            file_epoch,
        }) => {
            assert_eq!(shard, 1);
            assert_eq!(file_epoch, manifest_epoch + 1);
        }
        Err(other) => panic!("expected StaleManifest, got {other:?}"),
        Ok(_) => panic!("stale manifest was accepted"),
    }
}

#[test]
fn swapped_shard_files_are_rejected_before_serving() {
    // The attack the identity headers exist for: between a shutdown and the
    // next serve, shard files are swapped (sp-0 ↔ sp-1). Both files are
    // internally valid pager files, so only the identity check can tell.
    let dir = tempfile::tempdir().unwrap();
    close_deployment(dir.path(), 2);
    let a = dir.path().join("sp-0.pages");
    let b = dir.path().join("sp-1.pages");
    let tmp = dir.path().join("swap.tmp");
    std::fs::rename(&a, &tmp).unwrap();
    std::fs::rename(&b, &a).unwrap();
    std::fs::rename(&tmp, &b).unwrap();
    match ShardedSaeEngine::open_dir(dir.path(), ALG, None) {
        Err(StorageError::Corrupted(msg)) => {
            assert!(msg.contains("identity mismatch"), "{msg}")
        }
        Err(other) => panic!("expected Corrupted identity mismatch, got {other:?}"),
        Ok(_) => panic!("swapped shard files were accepted"),
    }

    // Same for a TE file swapped in for an SP file.
    let dir = tempfile::tempdir().unwrap();
    close_deployment(dir.path(), 1);
    let sp = dir.path().join("sp-0.pages");
    let te = dir.path().join("te-0.pages");
    let tmp = dir.path().join("swap.tmp");
    std::fs::rename(&sp, &tmp).unwrap();
    std::fs::rename(&te, &sp).unwrap();
    std::fs::rename(&tmp, &te).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));
}

#[test]
fn on_disk_tampering_is_detected_after_reopen() {
    // Flipping payload bytes inside a committed heap page leaves every
    // header and the manifest intact, so the reopen itself succeeds — but
    // the tampered record no longer hashes to its TE digest, so the first
    // query covering it fails verification.
    let dir = tempfile::tempdir().unwrap();
    let ds = dataset(800, 14);
    ShardedSaeEngine::create_dir(dir.path(), &ds, ALG, 2, None)
        .unwrap()
        .close()
        .unwrap();

    // sp-0.pages layout: page 0 = identity header, page 1 = heap page
    // directory, page 2 = first heap page. Byte 50 of the first record is
    // payload (past the 12-byte id/key header).
    let path = dir.path().join("sp-0.pages");
    let mut bytes = std::fs::read(&path).unwrap();
    let offset = 2 * PAGE_SIZE + 50;
    bytes[offset] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let reopened = ShardedSaeEngine::open_dir(dir.path(), ALG, None).unwrap();
    let outcome = reopened.query(&RangeQuery::new(0, DOMAIN)).unwrap();
    assert!(
        matches!(
            outcome.verdict,
            Err(ShardedVerifyError::Slice { shard: 0, .. })
        ),
        "on-disk heap tamper went undetected: {:?}",
        outcome.verdict
    );

    // A truncated TE file cannot even open: its committed root is gone.
    let te_path = dir.path().join("te-0.pages");
    let te_bytes = std::fs::read(&te_path).unwrap();
    std::fs::write(&te_path, &te_bytes[..PAGE_SIZE]).unwrap();
    assert!(matches!(
        ShardedSaeEngine::open_dir(dir.path(), ALG, None),
        Err(StorageError::Corrupted(_))
    ));
}
