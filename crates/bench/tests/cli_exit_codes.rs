//! The experiments CLI shares the analyzer's exit-code convention: 0 for a
//! clean run, 1 for verification findings, 2 for usage errors. Running a real
//! experiment is too slow for a unit gate, so this only drives the usage
//! paths end to end; the 0/1 split is covered by `Cli::parse` unit tests and
//! the experiment crates' own verification asserts.

use std::process::Command;

#[test]
fn usage_errors_exit_two() {
    let bin = env!("CARGO_BIN_EXE_experiments");
    for args in [
        vec![],
        vec!["frobnicate"],
        vec!["--smoke"],
        vec!["fig5", "--bogus"],
        vec!["fig5", "--zipf"],
        vec!["fig5", "--json"],
        vec!["fig5", "--full-scale", "--smoke"],
    ] {
        let out = Command::new(bin).args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "args {args:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}
