//! Figure 7 — client-side verification time.
//!
//! Measures what the client does after receiving a result: under SAE, hash
//! every received record and XOR the digests; under TOM, re-construct the
//! MB-Tree root digest from the result and the VO and check the signature.

use criterion::{criterion_group, criterion_main, Criterion};
use sae_core::{SaeClient, SaeSystem, TomSystem};
use sae_crypto::{HashAlgorithm, MacSigner};
use sae_workload::{DatasetSpec, KeyDistribution, QueryWorkload};

const N: usize = 20_000;

fn bench_fig7(c: &mut Criterion) {
    let alg = HashAlgorithm::Sha1;
    let dataset = DatasetSpec::paper(N, KeyDistribution::unf(), 7).generate();
    let sae = SaeSystem::build_in_memory(&dataset, alg).unwrap();
    let signer = MacSigner::new(b"do-key".to_vec());
    let tom = TomSystem::build_in_memory(&dataset, alg, signer.clone(), signer).unwrap();
    let q = QueryWorkload::paper(17).queries[0];

    let sae_outcome = sae.query(&q).unwrap();
    let tom_outcome = tom.query(&q).unwrap();
    eprintln!(
        "[fig7] n={N}: verifying a result of {} records",
        sae_outcome.records.len()
    );
    let client = SaeClient::new(alg);

    let mut group = c.benchmark_group("fig7_verification");
    group.sample_size(20);
    group.bench_function("client_sae_verify", |b| {
        b.iter(|| {
            let (ok, _) = client.verify(&q, &sae_outcome.records, &sae_outcome.vt);
            assert!(ok);
        })
    });
    group.bench_function("client_tom_verify", |b| {
        b.iter(|| {
            tom_outcome
                .vo
                .verify(
                    &q,
                    &tom_outcome.records,
                    &MacSigner::new(b"do-key".to_vec()),
                    alg,
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
