//! Sharded-engine throughput: shard-spanning read-heavy and write-heavy op
//! mixes served through 1-, 2- and 4-shard layouts by a fixed 4-thread
//! client pool. Without simulated I/O latency this measures pure lock/CPU
//! scaling of the per-shard lock pairs; the `experiments -- sharded-throughput`
//! table (E9) adds the non-overlappable per-write I/O hold that makes the
//! single-writer bottleneck visible on any core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sae_core::{ServeOptions, ShardedSaeEngine};
use sae_crypto::HashAlgorithm;
use sae_workload::{DatasetSpec, KeyDistribution, QueryMix};

const N: usize = 10_000;
const THREADS: usize = 4;
const OPS_PER_CLIENT: usize = 16;

fn bench_sharded_throughput(c: &mut Criterion) {
    let dataset = DatasetSpec::paper(N, KeyDistribution::unf(), 8).generate();
    let mix = QueryMix::spanning(KeyDistribution::unf().domain(), 0.002, 4);
    let opts = ServeOptions {
        threads: THREADS,
        io_micros_per_query: 0,
    };

    let mut group = c.benchmark_group("sharded_throughput");
    group.sample_size(10);
    for (label, write_fraction) in [("read_heavy", 0.1f64), ("write_heavy", 0.8)] {
        for shards in [1usize, 2, 4] {
            let engine =
                ShardedSaeEngine::build_cached(&dataset, HashAlgorithm::Sha1, shards, 256).unwrap();
            group.bench_with_input(BenchmarkId::new(label, shards), &shards, |b, _| {
                b.iter(|| {
                    let report = engine.serve_ops(
                        &mix,
                        write_fraction,
                        dataset.spec.record_size,
                        OPS_PER_CLIENT,
                        42,
                        &opts,
                    );
                    assert!(report.all_verified);
                    report.queries
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_throughput);
criterion_main!(benches);
