//! Figure 6 — query processing at the SP (SAE vs TOM) and at the TE.
//!
//! Criterion measures the wall-clock time of the three operations whose
//! *charged* node-access costs Figure 6 plots: the SP answering a query under
//! SAE (B⁺-Tree + dataset file), the SP answering the same query under TOM
//! (MB-Tree + dataset file) and the TE generating the VT. The charged-cost
//! tables come from `experiments -- fig6`.

use criterion::{criterion_group, criterion_main, Criterion};
use sae_core::{SaeSystem, TomSystem};
use sae_crypto::{HashAlgorithm, MacSigner};
use sae_workload::{DatasetSpec, KeyDistribution, QueryWorkload};

const N: usize = 20_000;

fn bench_fig6(c: &mut Criterion) {
    let dataset = DatasetSpec::paper(N, KeyDistribution::unf(), 6).generate();
    let sae = SaeSystem::build_in_memory(&dataset, HashAlgorithm::Sha1).unwrap();
    let signer = MacSigner::new(b"do-key".to_vec());
    let tom =
        TomSystem::build_in_memory(&dataset, HashAlgorithm::Sha1, signer.clone(), signer).unwrap();
    let q = QueryWorkload::paper(13).queries[0];

    let outcome = sae.query(&q).unwrap();
    eprintln!(
        "[fig6] n={N}: SP_SAE={} accesses, SP_TOM={} accesses, TE_SAE={} accesses",
        outcome.metrics.sp_node_accesses,
        tom.query(&q).unwrap().metrics.sp_node_accesses,
        outcome.metrics.te_node_accesses
    );

    let mut group = c.benchmark_group("fig6_query_processing");
    group.sample_size(20);
    group.bench_function("sp_sae_query", |b| b.iter(|| sae.sp().query(&q).unwrap()));
    group.bench_function("sp_tom_query_with_vo", |b| {
        b.iter(|| tom.query(&q).unwrap())
    });
    group.bench_function("te_sae_generate_vt", |b| {
        b.iter(|| sae.te().generate_vt(&q).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
