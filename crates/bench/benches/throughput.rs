//! Concurrent-engine throughput: one fixed query batch served by 1, 2 and 4
//! worker threads through the `RwLock`-partitioned SAE engine with a buffer
//! pool under both parties. Without simulated I/O latency this measures pure
//! lock/CPU scaling; the `experiments -- throughput` table adds the
//! overlappable per-query I/O latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sae_core::{SaeEngine, ServeOptions};
use sae_crypto::HashAlgorithm;
use sae_workload::{DatasetSpec, KeyDistribution, QueryMix};

const N: usize = 20_000;

fn bench_throughput(c: &mut Criterion) {
    let dataset = DatasetSpec::paper(N, KeyDistribution::unf(), 8).generate();
    let engine = SaeEngine::build_cached(&dataset, HashAlgorithm::Sha1, 512).unwrap();
    let queries = QueryMix::uniform(KeyDistribution::unf().domain(), 0.002)
        .workload(64, 42)
        .queries;

    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("serve_batch", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let report = engine.serve_batch(
                        &queries,
                        &ServeOptions {
                            threads,
                            io_micros_per_query: 0,
                        },
                    );
                    assert!(report.all_verified);
                    report.queries
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
