//! Figure 5 — authentication-information generation and its size.
//!
//! Criterion measures the time to produce the authentication payload for one
//! query under each model (the TE's 20-byte VT for SAE, the SP's VO for TOM);
//! the measured byte sizes — the actual subject of Figure 5 — are printed once
//! at startup. Run `cargo run -p sae-bench --bin experiments -- fig5` for the
//! full sweep over n.

use criterion::{criterion_group, criterion_main, Criterion};
use sae_core::{SaeSystem, TomSystem};
use sae_crypto::{HashAlgorithm, MacSigner};
use sae_workload::{DatasetSpec, KeyDistribution, QueryWorkload};

const N: usize = 20_000;

fn bench_fig5(c: &mut Criterion) {
    let dataset = DatasetSpec::paper(N, KeyDistribution::unf(), 5).generate();
    let sae = SaeSystem::build_in_memory(&dataset, HashAlgorithm::Sha1).unwrap();
    let signer = MacSigner::new(b"do-key".to_vec());
    let tom =
        TomSystem::build_in_memory(&dataset, HashAlgorithm::Sha1, signer.clone(), signer).unwrap();
    let workload = QueryWorkload::paper(11);
    let q = workload.queries[0];

    let sae_bytes = sae.query(&q).unwrap().metrics.auth_bytes;
    let tom_bytes = tom.query(&q).unwrap().metrics.auth_bytes;
    eprintln!(
        "[fig5] n={N}: SAE VT = {sae_bytes} bytes, TOM VO = {tom_bytes} bytes ({}x larger)",
        tom_bytes / sae_bytes
    );

    let mut group = c.benchmark_group("fig5_communication");
    group.sample_size(20);
    group.bench_function("sae_vt_generation", |b| {
        b.iter(|| sae.te().generate_vt(&q).unwrap())
    });
    group.bench_function("tom_vo_generation", |b| {
        b.iter(|| {
            tom.tree()
                .generate_vo(&q, |_| vec![0u8; 500], tom.signature().clone())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
