//! Ablation E5 — VT generation with the XB-Tree vs a sequential scan of T.
//!
//! This is the design point §III motivates: without the XB-Tree the trusted
//! entity's effort grows linearly with the dataset instead of logarithmically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sae_crypto::HashAlgorithm;
use sae_storage::MemPager;
use sae_workload::{DatasetSpec, KeyDistribution, QueryWorkload, TeTuple};
use sae_xbtree::{TupleStore, XbTree};

fn bench_ablation(c: &mut Criterion) {
    let alg = HashAlgorithm::Sha1;
    let q = QueryWorkload::paper(19).queries[0];

    let mut group = c.benchmark_group("ablation_te_scan");
    group.sample_size(10);
    for n in [10_000usize, 40_000] {
        let dataset = DatasetSpec::paper(n, KeyDistribution::unf(), 9).generate();
        let mut tuples: Vec<TeTuple> = dataset.iter().map(|r| r.te_tuple(alg)).collect();
        tuples.sort_by_key(|t| (t.key, t.id));
        let tree = XbTree::bulk_load(MemPager::new_shared(), &tuples).unwrap();
        let scan = TupleStore::build(MemPager::new_shared(), &tuples).unwrap();
        assert_eq!(
            tree.generate_vt(&q).unwrap(),
            scan.generate_vt_scan(&q).unwrap()
        );

        group.bench_with_input(BenchmarkId::new("xbtree", n), &n, |b, _| {
            b.iter(|| tree.generate_vt(&q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sequential_scan", n), &n, |b, _| {
            b.iter(|| scan.generate_vt_scan(&q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
