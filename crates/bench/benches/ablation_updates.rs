//! Ablation E6 — maintenance cost of the three index structures.
//!
//! Measures single-record insertion into the SP's plain B⁺-Tree (SAE), the
//! SP's MB-Tree (TOM, digest maintenance along the path) and the TE's XB-Tree
//! (XOR maintenance along the path). All three are O(log n) node accesses; the
//! constant factors differ because of fanout and digest recomputation.

use criterion::{criterion_group, criterion_main, Criterion};
use sae_btree::BPlusTree;
use sae_crypto::HashAlgorithm;
use sae_mbtree::MbTree;
use sae_storage::MemPager;
use sae_workload::{DatasetSpec, KeyDistribution, Record, TeTuple};
use sae_xbtree::XbTree;

const N: usize = 20_000;

fn bench_updates(c: &mut Criterion) {
    let alg = HashAlgorithm::Sha1;
    let dataset = DatasetSpec::paper(N, KeyDistribution::unf(), 10).generate();
    let sorted = dataset.sorted_by_key();

    let btree_entries: Vec<(u32, u64)> = sorted.iter().map(|r| (r.key, r.id)).collect();
    let mb_entries: Vec<(u32, u64, _)> = sorted
        .iter()
        .map(|r| (r.key, r.id, r.digest(alg)))
        .collect();
    let xb_tuples: Vec<TeTuple> = sorted.iter().map(|r| r.te_tuple(alg)).collect();

    let mut btree = BPlusTree::bulk_load(MemPager::new_shared(), &btree_entries).unwrap();
    let mut mbtree = MbTree::bulk_load(MemPager::new_shared(), alg, &mb_entries).unwrap();
    let mut xbtree = XbTree::bulk_load(MemPager::new_shared(), &xb_tuples).unwrap();

    let mut group = c.benchmark_group("ablation_updates");
    group.sample_size(20);
    let mut next_id = 10_000_000u64;
    group.bench_function("bplus_insert", |b| {
        b.iter(|| {
            next_id += 1;
            btree
                .insert((next_id % 10_000_000) as u32, next_id)
                .unwrap();
        })
    });
    group.bench_function("mbtree_insert", |b| {
        b.iter(|| {
            next_id += 1;
            let r = Record::with_size(next_id, (next_id % 10_000_000) as u32, 500);
            mbtree.insert(r.key, r.id, r.digest(alg)).unwrap();
        })
    });
    group.bench_function("xbtree_insert", |b| {
        b.iter(|| {
            next_id += 1;
            let r = Record::with_size(next_id, (next_id % 10_000_000) as u32, 500);
            xbtree.insert(r.te_tuple(alg)).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
