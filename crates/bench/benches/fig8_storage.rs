//! Figure 8 — storage cost per party.
//!
//! Storage is not a timing quantity, so this bench measures the cost of
//! *building* each deployment (bulk-loading the indexes from the outsourced
//! dataset) and prints the resulting per-party byte counts, which are the
//! numbers Figure 8 plots. The sweep over n is produced by
//! `experiments -- fig8`.

use criterion::{criterion_group, criterion_main, Criterion};
use sae_core::{SaeSystem, TomSystem};
use sae_crypto::{HashAlgorithm, MacSigner};
use sae_workload::{DatasetSpec, KeyDistribution};

const N: usize = 20_000;

fn bench_fig8(c: &mut Criterion) {
    let alg = HashAlgorithm::Sha1;
    let dataset = DatasetSpec::paper(N, KeyDistribution::unf(), 8).generate();

    let sae = SaeSystem::build_in_memory(&dataset, alg).unwrap();
    let signer = MacSigner::new(b"do-key".to_vec());
    let tom = TomSystem::build_in_memory(&dataset, alg, signer.clone(), signer.clone()).unwrap();
    let s = sae.storage_breakdown();
    let t = tom.storage_breakdown();
    eprintln!(
        "[fig8] n={N}: SP_SAE={:.1} MB (index {:.1} MB), SP_TOM={:.1} MB (index {:.1} MB), TE_SAE={:.1} MB",
        s.sp_total_mb(),
        s.sp_index_bytes as f64 / (1024.0 * 1024.0),
        t.sp_total_mb(),
        t.sp_index_bytes as f64 / (1024.0 * 1024.0),
        s.te_mb()
    );
    drop((sae, tom));

    let mut group = c.benchmark_group("fig8_storage");
    group.sample_size(10);
    group.bench_function("build_sae_deployment", |b| {
        b.iter(|| SaeSystem::build_in_memory(&dataset, alg).unwrap())
    });
    group.bench_function("build_tom_deployment", |b| {
        b.iter(|| {
            let signer = MacSigner::new(b"do-key".to_vec());
            TomSystem::build_in_memory(&dataset, alg, signer.clone(), signer).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
