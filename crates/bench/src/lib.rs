//! # sae-bench
//!
//! The experiment harness that regenerates the evaluation section of the
//! paper (Figures 5–8) plus the ablations called out in `DESIGN.md`.
//!
//! The heavy lifting lives in [`experiments`]: for every `(distribution,
//! cardinality)` configuration it builds one SAE deployment and one TOM
//! deployment over the same synthetic dataset, runs the paper's query
//! workload (100 uniform range queries of 0.5 % extent) against both, and
//! collects the per-party costs. The `experiments` binary prints one table
//! per figure; the Criterion benches in `benches/` measure the same
//! operations at a fixed configuration for regression tracking.
//!
//! Scale: by default the harness runs the paper's configuration at 1/10 of
//! the cardinalities (10 K – 100 K records) so the whole suite finishes in CI
//! time; `--full-scale` switches to the paper's 100 K – 1 M.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod experiments;
pub mod report;

pub use experiments::{
    run_ablation_memory, run_ablation_scan, run_ablation_updates, run_comparison, run_durability,
    run_fanout, run_group_commit, run_net, run_replicas, run_sharded_throughput, run_throughput,
    run_wal, AblationRow, ComparisonRow, DurabilityConfig, DurabilityRow, ExperimentConfig,
    FanoutConfig, FanoutRow, GroupCommitConfig, GroupCommitRow, MemoryAblationRow, NetConfig,
    NetRow, ReplicaRow, ReplicasConfig, ShardedThroughputConfig, ShardedThroughputRow,
    SignatureScheme, ThroughputConfig, ThroughputRow, UpdateRow, WalConfig, WalRow,
};
pub use report::{
    print_ablation_memory, print_ablation_scan, print_ablation_updates, print_durability,
    print_fanout, print_fig5, print_fig6, print_fig7, print_fig8, print_group_commit, print_net,
    print_replicas, print_sharded_throughput, print_throughput, print_wal, report_to_json,
    rows_to_json,
};
