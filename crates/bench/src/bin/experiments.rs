//! Command-line driver that regenerates the paper's evaluation.
//!
//! ```text
//! cargo run --release -p sae-bench --bin experiments -- all
//! cargo run --release -p sae-bench --bin experiments -- fig6 --full-scale
//! cargo run --release -p sae-bench --bin experiments -- fig5 --json out.json
//! cargo run --release -p sae-bench --bin experiments -- ablation-scan
//! ```
//!
//! Figures 5–8 share one measurement sweep (each `(distribution, n)` pair is
//! built and queried once); the requested subcommand controls which tables
//! are printed. `--full-scale` switches from the CI-friendly 1/10 scale to
//! the paper's 100 K – 1 M records.

use sae_bench::{
    print_ablation_memory, print_ablation_scan, print_ablation_updates, print_fig5, print_fig6,
    print_fig7, print_fig8, print_throughput, rows_to_json, run_ablation_memory, run_ablation_scan,
    run_ablation_updates, run_comparison, run_throughput, ExperimentConfig, ThroughputConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig5|fig6|fig7|fig8|all|ablation-scan|ablation-updates|ablation-memory|throughput> \
         [--full-scale] [--smoke] [--zipf] [--json <path>]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].as_str();
    let full_scale = args.iter().any(|a| a == "--full-scale");
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let config = if full_scale {
        ExperimentConfig::full_scale()
    } else if smoke {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::scaled()
    };

    println!(
        "SAE vs TOM experiment harness — cardinalities {:?}, {} queries per configuration, \
         record size {} B, 10 ms charged per node access",
        config.cardinalities, config.queries_per_config, config.record_size
    );
    if !full_scale {
        println!(
            "(running at 1/10 of the paper's cardinalities; pass --full-scale for 100K-1M records)"
        );
    }

    match command {
        "fig5" | "fig6" | "fig7" | "fig8" | "all" => {
            let rows = run_comparison(&config);
            match command {
                "fig5" => print_fig5(&rows),
                "fig6" => print_fig6(&rows),
                "fig7" => print_fig7(&rows),
                "fig8" => print_fig8(&rows),
                _ => {
                    print_fig5(&rows);
                    print_fig6(&rows);
                    print_fig7(&rows);
                    print_fig8(&rows);
                }
            }
            if let Some(path) = json_path {
                std::fs::write(&path, rows_to_json(&rows)).expect("write JSON report");
                println!("\nwrote raw rows to {path}");
            }
        }
        "throughput" => {
            let tp_config = ThroughputConfig {
                zipf_placement: args.iter().any(|a| a == "--zipf"),
                ..if smoke {
                    ThroughputConfig::smoke()
                } else {
                    ThroughputConfig::default()
                }
            };
            println!(
                "throughput experiment — n={}, {} queries, {} µs simulated I/O per query, \
                 {}-page buffer pool per party",
                tp_config.cardinality,
                tp_config.total_queries,
                tp_config.io_micros_per_query,
                tp_config.cache_pages
            );
            print_throughput(&run_throughput(&tp_config));
        }
        "ablation-scan" => print_ablation_scan(&run_ablation_scan(&config)),
        "ablation-updates" => print_ablation_updates(&run_ablation_updates(&config, 200)),
        "ablation-memory" => {
            let dir = std::env::temp_dir().join("sae-ablation-memory");
            std::fs::create_dir_all(&dir).expect("create temp dir");
            print_ablation_memory(&run_ablation_memory(&config, &dir));
            let _ = std::fs::remove_dir_all(&dir);
        }
        _ => usage(),
    }
}
