//! Command-line driver that regenerates the paper's evaluation.
//!
//! ```text
//! cargo run --release -p sae-bench --bin experiments -- all
//! cargo run --release -p sae-bench --bin experiments -- fig6 --full-scale
//! cargo run --release -p sae-bench --bin experiments -- fig5 --json out.json
//! cargo run --release -p sae-bench --bin experiments -- ablation-scan
//! cargo run --release -p sae-bench --bin experiments -- throughput --smoke --json tp.json
//! cargo run --release -p sae-bench --bin experiments -- sharded-throughput
//! ```
//!
//! Figures 5–8 share one measurement sweep (each `(distribution, n)` pair is
//! built and queried once); the requested subcommand controls which tables
//! are printed. `--full-scale` switches from the CI-friendly 1/10 scale to
//! the paper's 100 K – 1 M records. Unrecognized arguments are rejected with
//! a nonzero exit instead of being silently ignored.

use sae_bench::{
    print_ablation_memory, print_ablation_scan, print_ablation_updates, print_durability,
    print_fanout, print_fig5, print_fig6, print_fig7, print_fig8, print_group_commit, print_net,
    print_replicas, print_sharded_throughput, print_throughput, print_wal, report_to_json,
    rows_to_json, run_ablation_memory, run_ablation_scan, run_ablation_updates, run_comparison,
    run_durability, run_fanout, run_group_commit, run_net, run_replicas, run_sharded_throughput,
    run_throughput, run_wal, DurabilityConfig, ExperimentConfig, FanoutConfig, GroupCommitConfig,
    NetConfig, ReplicasConfig, ShardedThroughputConfig, ThroughputConfig, WalConfig,
};

const USAGE: &str = "usage: experiments \
     <fig5|fig6|fig7|fig8|all|ablation-scan|ablation-updates|ablation-memory|throughput\
|sharded-throughput|durability|group-commit|wal|net|replicas|fanout> \
     [--full-scale] [--smoke] [--zipf] [--json <path>]

exit codes (shared convention with sae-analyzer):
    0  all experiments ran and every row verified
    1  at least one row failed verification
    2  usage or I/O error";

/// Everything the command line can express, parsed strictly: an unknown
/// command or flag is a usage error (exit 2) instead of being ignored.
struct Cli {
    command: String,
    full_scale: bool,
    smoke: bool,
    zipf: bool,
    json_path: Option<String>,
}

impl Cli {
    fn parse(args: &[String]) -> Result<Cli, String> {
        let Some((command, flags)) = args.split_first() else {
            return Err("missing command".to_string());
        };
        if command.starts_with('-') {
            return Err(format!("expected a command before flags, got `{command}`"));
        }
        // Which flags each command actually consumes; anything else is a
        // rejected typo, not a silent no-op. `main`'s dispatch match derives
        // its arms from this same table (see the unreachable fallback there).
        let allowed: &[&str] = match command.as_str() {
            "fig5" | "fig6" | "fig7" | "fig8" | "all" => &["--full-scale", "--smoke", "--json"],
            "ablation-scan" | "ablation-updates" | "ablation-memory" => {
                &["--full-scale", "--smoke"]
            }
            "throughput" => &["--smoke", "--zipf", "--json"],
            "sharded-throughput" | "durability" | "group-commit" | "wal" | "net" | "replicas"
            | "fanout" => &["--smoke", "--json"],
            other => return Err(format!("unknown command `{other}`")),
        };
        let mut cli = Cli {
            command: command.clone(),
            full_scale: false,
            smoke: false,
            zipf: false,
            json_path: None,
        };
        let mut it = flags.iter();
        while let Some(flag) = it.next() {
            if !allowed.contains(&flag.as_str()) {
                return Err(format!(
                    "unrecognized argument `{flag}` for command `{command}`"
                ));
            }
            match flag.as_str() {
                "--full-scale" => cli.full_scale = true,
                "--smoke" => cli.smoke = true,
                "--zipf" => cli.zipf = true,
                "--json" => match it.next() {
                    Some(path) => cli.json_path = Some(path.clone()),
                    None => return Err("--json requires a path argument".to_string()),
                },
                _ => unreachable!("flag validated against the applicability table"),
            }
        }
        if cli.full_scale && cli.smoke {
            return Err("--full-scale and --smoke are mutually exclusive".to_string());
        }
        Ok(cli)
    }
}

fn write_json(path: &str, json: String) -> Result<(), String> {
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("\nwrote raw rows to {path}");
    Ok(())
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            return std::process::ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok(true) => std::process::ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("error: at least one experiment row failed verification");
            std::process::ExitCode::from(1)
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::ExitCode::from(2)
        }
    }
}

/// Runs the requested experiment. Returns whether every row that carries a
/// verification verdict verified (the ablations measure cost only and always
/// count as verified); I/O failures surface as `Err` (exit 2).
fn run(cli: &Cli) -> Result<bool, String> {
    let config = if cli.full_scale {
        ExperimentConfig::full_scale()
    } else if cli.smoke {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::scaled()
    };

    println!(
        "SAE vs TOM experiment harness — cardinalities {:?}, {} queries per configuration, \
         record size {} B, 10 ms charged per node access",
        config.cardinalities, config.queries_per_config, config.record_size
    );
    if !cli.full_scale {
        println!(
            "(running at 1/10 of the paper's cardinalities; pass --full-scale for 100K-1M records)"
        );
    }

    let all_verified = match cli.command.as_str() {
        "fig5" | "fig6" | "fig7" | "fig8" | "all" => {
            let rows = run_comparison(&config);
            match cli.command.as_str() {
                "fig5" => print_fig5(&rows),
                "fig6" => print_fig6(&rows),
                "fig7" => print_fig7(&rows),
                "fig8" => print_fig8(&rows),
                _ => {
                    print_fig5(&rows);
                    print_fig6(&rows);
                    print_fig7(&rows);
                    print_fig8(&rows);
                }
            }
            if let Some(path) = &cli.json_path {
                write_json(path, rows_to_json(&rows))?;
            }
            rows.iter().all(|r| r.sae.verified && r.tom.verified)
        }
        "throughput" => {
            let tp_config = ThroughputConfig {
                zipf_placement: cli.zipf,
                ..if cli.smoke {
                    ThroughputConfig::smoke()
                } else {
                    ThroughputConfig::default()
                }
            };
            println!(
                "throughput experiment — n={}, {} queries, {} µs simulated I/O per query, \
                 {}-page buffer pool per party",
                tp_config.cardinality,
                tp_config.total_queries,
                tp_config.io_micros_per_query,
                tp_config.cache_pages
            );
            let rows = run_throughput(&tp_config);
            print_throughput(&rows);
            if let Some(path) = &cli.json_path {
                write_json(path, report_to_json(&rows))?;
            }
            rows.iter().all(|r| r.all_verified)
        }
        "sharded-throughput" => {
            let sh_config = if cli.smoke {
                ShardedThroughputConfig::smoke()
            } else {
                ShardedThroughputConfig::default()
            };
            println!(
                "sharded-throughput experiment — n={}, shards {:?}, threads {:?}, \
                 {} ops per client, {} µs simulated I/O per op, {}-page buffer pool per shard",
                sh_config.cardinality,
                sh_config.shard_counts,
                sh_config.thread_counts,
                sh_config.ops_per_client,
                sh_config.io_micros_per_op,
                sh_config.cache_pages
            );
            let rows = run_sharded_throughput(&sh_config);
            print_sharded_throughput(&rows);
            if let Some(path) = &cli.json_path {
                write_json(path, report_to_json(&rows))?;
            }
            rows.iter().all(|r| r.all_verified)
        }
        "durability" => {
            let du_config = if cli.smoke {
                DurabilityConfig::smoke()
            } else {
                DurabilityConfig::default()
            };
            println!(
                "durability experiment — n={}, shards {:?}, {} post-reopen queries over {} \
                 threads, {} committed updates, {}-page buffer pool per shard",
                du_config.cardinality,
                du_config.shard_counts,
                du_config.queries,
                du_config.threads,
                du_config.updates,
                du_config.cache_pages
            );
            // Unique per process so concurrent or previously interrupted
            // runs cannot collide on a shared path.
            let dir = std::env::temp_dir().join(format!("sae-durability-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let rows = run_durability(&du_config, &dir);
            let _ = std::fs::remove_dir_all(&dir);
            print_durability(&rows);
            if let Some(path) = &cli.json_path {
                write_json(path, report_to_json(&rows))?;
            }
            rows.iter().all(|r| r.all_verified)
        }
        "group-commit" => {
            let gc_config = if cli.smoke {
                GroupCommitConfig::smoke()
            } else {
                GroupCommitConfig::default()
            };
            println!(
                "group-commit experiment — n={}, shards {:?}, writers {:?}, {} durable write \
                 round trips per writer, {} µs simulated fsync latency, {}-page buffer pool per \
                 shard; policies: immediate vs group vs flush-on-close, each reopened and \
                 re-verified after the run",
                gc_config.cardinality,
                gc_config.shard_counts,
                gc_config.writer_threads,
                gc_config.ops_per_writer,
                gc_config.sync_delay_micros,
                gc_config.cache_pages
            );
            // Unique per process so concurrent or previously interrupted
            // runs cannot collide on a shared path.
            let dir = std::env::temp_dir().join(format!("sae-group-commit-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let rows = run_group_commit(&gc_config, &dir);
            let _ = std::fs::remove_dir_all(&dir);
            print_group_commit(&rows);
            if let Some(path) = &cli.json_path {
                write_json(path, report_to_json(&rows))?;
            }
            rows.iter().all(|r| r.all_verified)
        }
        "wal" => {
            let wal_config = if cli.smoke {
                WalConfig::smoke()
            } else {
                WalConfig::default()
            };
            println!(
                "wal experiment — n={}, {} shards, {} writers, {} durable write round trips per \
                 writer, {} µs simulated fsync latency; immediate vs group, each killed with no \
                 close and reopened via log replay",
                wal_config.cardinality,
                wal_config.shards,
                wal_config.writers,
                wal_config.ops_per_writer,
                wal_config.sync_delay_micros
            );
            // Unique per process so concurrent or previously interrupted
            // runs cannot collide on a shared path.
            let dir = std::env::temp_dir().join(format!("sae-wal-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let rows = run_wal(&wal_config, &dir);
            let _ = std::fs::remove_dir_all(&dir);
            print_wal(&rows);
            if let Some(path) = &cli.json_path {
                write_json(path, report_to_json(&rows))?;
            }
            rows.iter().all(|r| r.all_verified && r.replay_recovered)
        }
        "net" => {
            let net_config = if cli.smoke {
                NetConfig::smoke()
            } else {
                NetConfig::default()
            };
            println!(
                "net experiment — n={}, shard servers {:?}, {} range queries of {}% extent per \
                 repeat over loopback TCP; every slice re-verified against the TE token, plus \
                 byzantine-server and dropped-endpoint legs per row",
                net_config.cardinality,
                net_config.shard_counts,
                net_config.queries,
                net_config.query_extent * 100.0
            );
            let rows = run_net(&net_config);
            print_net(&rows);
            if let Some(path) = &cli.json_path {
                write_json(path, report_to_json(&rows))?;
            }
            rows.iter()
                .all(|r| r.all_verified && r.tamper_detected && r.drop_detected)
        }
        "replicas" => {
            let rp_config = if cli.smoke {
                ReplicasConfig::smoke()
            } else {
                ReplicasConfig::default()
            };
            println!(
                "replicas experiment — n={}, {} shards, replica counts {:?} (+1 byzantine \
                 each), {} client threads x {} zipf queries of {}% extent, {} µs gated service \
                 delay per replica; every slice re-verified, byzantine and stale-epoch replicas \
                 routed around per row",
                rp_config.cardinality,
                rp_config.shards,
                rp_config.replica_counts,
                rp_config.threads,
                rp_config.queries_per_thread,
                rp_config.query_extent * 100.0,
                rp_config.service_delay_micros
            );
            // Unique per process so concurrent or previously interrupted
            // runs cannot collide on a shared path.
            let dir = std::env::temp_dir().join(format!("sae-replicas-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let rows = run_replicas(&rp_config, &dir);
            let _ = std::fs::remove_dir_all(&dir);
            print_replicas(&rows);
            if let Some(path) = &cli.json_path {
                write_json(path, report_to_json(&rows))?;
            }
            rows.iter()
                .all(|r| r.all_verified && r.byzantine_routed_around && r.stale_routed_around)
        }
        "fanout" => {
            let fo_config = if cli.smoke {
                FanoutConfig::smoke()
            } else {
                FanoutConfig::default()
            };
            println!(
                "fanout experiment — n={}, {} shard servers at {} µs gated service delay, {} \
                 span-all-shards queries per dispatch mode; hedge leg: fast {} µs vs slow {} µs \
                 replica, {} µs hedge window, {} queries per client; every slice re-verified",
                fo_config.cardinality,
                fo_config.shards,
                fo_config.service_delay_micros,
                fo_config.fanout_queries,
                fo_config.fast_delay_micros,
                fo_config.slow_delay_micros,
                fo_config.hedge_timeout_micros,
                fo_config.hedge_queries
            );
            let rows = run_fanout(&fo_config);
            print_fanout(&rows);
            if let Some(path) = &cli.json_path {
                write_json(path, report_to_json(&rows))?;
            }
            rows.iter().all(|r| r.all_verified)
        }
        "ablation-scan" => {
            print_ablation_scan(&run_ablation_scan(&config));
            true
        }
        "ablation-updates" => {
            print_ablation_updates(&run_ablation_updates(&config, 200));
            true
        }
        "ablation-memory" => {
            let dir = std::env::temp_dir().join("sae-ablation-memory");
            std::fs::create_dir_all(&dir)
                .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            print_ablation_memory(&run_ablation_memory(&config, &dir));
            let _ = std::fs::remove_dir_all(&dir);
            true
        }
        _ => unreachable!("command validated by Cli::parse's applicability table"),
    };
    Ok(all_verified)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_unknown_commands_and_flags() {
        assert!(Cli::parse(&strings(&[])).is_err());
        assert!(Cli::parse(&strings(&["frobnicate"])).is_err());
        assert!(Cli::parse(&strings(&["--smoke"])).is_err());
        assert!(Cli::parse(&strings(&["fig5", "--bogus"])).is_err());
        // --zipf exists, but only `throughput` consumes it.
        assert!(Cli::parse(&strings(&["fig5", "--zipf"])).is_err());
        assert!(Cli::parse(&strings(&["fig5", "--json"])).is_err());
        assert!(Cli::parse(&strings(&["fig5", "--full-scale", "--smoke"])).is_err());
    }

    #[test]
    fn parses_valid_invocations() {
        let cli = Cli::parse(&strings(&["fig6", "--smoke", "--json", "out.json"])).unwrap();
        assert_eq!(cli.command, "fig6");
        assert!(cli.smoke);
        assert!(!cli.full_scale);
        assert_eq!(cli.json_path.as_deref(), Some("out.json"));
        let cli = Cli::parse(&strings(&["throughput", "--zipf"])).unwrap();
        assert!(cli.zipf);
        let cli = Cli::parse(&strings(&["fanout", "--smoke", "--json", "fo.json"])).unwrap();
        assert_eq!(cli.command, "fanout");
        assert!(cli.smoke);
        assert_eq!(cli.json_path.as_deref(), Some("fo.json"));
        // --full-scale exists, but `fanout` does not consume it.
        assert!(Cli::parse(&strings(&["fanout", "--full-scale"])).is_err());
    }
}
