//! Pretty-printers that lay the measured rows out like the paper's figures.

use crate::experiments::{
    AblationRow, ComparisonRow, DurabilityRow, FanoutRow, GroupCommitRow, MemoryAblationRow,
    NetRow, ReplicaRow, ShardedThroughputRow, ThroughputRow, UpdateRow, WalRow,
};
use serde::Serialize;

fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

fn by_distribution<'a>(rows: &'a [ComparisonRow], dist: &str) -> Vec<&'a ComparisonRow> {
    rows.iter().filter(|r| r.distribution == dist).collect()
}

/// Figure 5: communication overhead (authentication bytes) vs n.
pub fn print_fig5(rows: &[ComparisonRow]) {
    header("Figure 5 — Communication overhead vs n (bytes of authentication information)");
    for dist in ["UNF", "SKW"] {
        let subset = by_distribution(rows, dist);
        if subset.is_empty() {
            continue;
        }
        println!("  ({dist})");
        println!(
            "  {:>10} {:>18} {:>18} {:>10}",
            "n", "SAE TE-client [B]", "TOM SP-client [B]", "ratio"
        );
        for r in subset {
            println!(
                "  {:>10} {:>18} {:>18} {:>9.0}x",
                r.n,
                r.sae.auth_bytes,
                r.tom.auth_bytes,
                r.tom.auth_bytes as f64 / r.sae.auth_bytes.max(1) as f64
            );
        }
    }
}

/// Figure 6: query processing time (charged ms at 10 ms per node access) vs n.
pub fn print_fig6(rows: &[ComparisonRow]) {
    header("Figure 6 — Query processing time vs n (ms, 10 ms per node access)");
    for dist in ["UNF", "SKW"] {
        let subset = by_distribution(rows, dist);
        if subset.is_empty() {
            continue;
        }
        println!("  ({dist})");
        println!(
            "  {:>10} {:>12} {:>12} {:>12} {:>14}",
            "n", "SP_TOM [ms]", "SP_SAE [ms]", "TE_SAE [ms]", "SP saving [%]"
        );
        for r in subset {
            let saving = 100.0 * (r.tom.sp_charged_ms - r.sae.sp_charged_ms) / r.tom.sp_charged_ms;
            println!(
                "  {:>10} {:>12.1} {:>12.1} {:>12.1} {:>14.1}",
                r.n, r.tom.sp_charged_ms, r.sae.sp_charged_ms, r.sae.te_charged_ms, saving
            );
        }
    }
}

/// Figure 7: client verification time vs n (wall-clock ms).
pub fn print_fig7(rows: &[ComparisonRow]) {
    header("Figure 7 — Verification time at the client vs n (wall-clock ms)");
    for dist in ["UNF", "SKW"] {
        let subset = by_distribution(rows, dist);
        if subset.is_empty() {
            continue;
        }
        println!("  ({dist})");
        println!(
            "  {:>10} {:>16} {:>16} {:>14}",
            "n", "Client_SAE [ms]", "Client_TOM [ms]", "avg |RS|"
        );
        for r in subset {
            println!(
                "  {:>10} {:>16.3} {:>16.3} {:>14}",
                r.n, r.sae.client_verify_ms, r.tom.client_verify_ms, r.sae.result_cardinality
            );
        }
    }
}

/// Figure 8: storage cost vs n (MB per party).
pub fn print_fig8(rows: &[ComparisonRow]) {
    header("Figure 8 — Storage cost vs n (MB)");
    for dist in ["UNF", "SKW"] {
        let subset = by_distribution(rows, dist);
        if subset.is_empty() {
            continue;
        }
        println!("  ({dist})");
        println!(
            "  {:>10} {:>14} {:>14} {:>14}",
            "n", "SP_TOM [MB]", "SP_SAE [MB]", "TE_SAE [MB]"
        );
        for r in subset {
            println!(
                "  {:>10} {:>14.1} {:>14.1} {:>14.1}",
                r.n,
                r.tom_storage.sp_total_mb(),
                r.sae_storage.sp_total_mb(),
                r.sae_storage.te_mb()
            );
        }
    }
}

/// Ablation E5: XB-Tree vs sequential scan at the TE.
pub fn print_ablation_scan(rows: &[AblationRow]) {
    header("Ablation E5 — VT generation: XB-Tree vs sequential scan of T");
    println!(
        "  {:>10} {:>16} {:>16} {:>14} {:>14}",
        "n", "XB accesses", "scan accesses", "XB [ms]", "scan [ms]"
    );
    for r in rows {
        println!(
            "  {:>10} {:>16} {:>16} {:>14.1} {:>14.1}",
            r.n,
            r.xbtree_node_accesses,
            r.scan_node_accesses,
            r.xbtree_charged_ms,
            r.scan_charged_ms
        );
    }
}

/// Ablation E6: update maintenance cost per index.
pub fn print_ablation_updates(rows: &[UpdateRow]) {
    header("Ablation E6 — node accesses per insert+delete pair");
    println!(
        "  {:>10} {:>18} {:>18} {:>18}",
        "n", "SAE SP (B+-Tree)", "SAE TE (XB-Tree)", "TOM SP (MB-Tree)"
    );
    for r in rows {
        println!(
            "  {:>10} {:>18.1} {:>18.1} {:>18.1}",
            r.n,
            r.sae_sp_accesses_per_update,
            r.te_accesses_per_update,
            r.tom_sp_accesses_per_update
        );
    }
}

/// Ablation E7: file-backed vs in-memory TE index (wall-clock).
pub fn print_ablation_memory(rows: &[MemoryAblationRow]) {
    header("Ablation E7 — VT generation wall-clock: disk-based vs main-memory XB-Tree");
    println!("  {:>10} {:>14} {:>14}", "n", "disk [ms]", "memory [ms]");
    for r in rows {
        println!("  {:>10} {:>14.2} {:>14.2}", r.n, r.disk_ms, r.memory_ms);
    }
}

/// Experiment E8: concurrent-engine throughput as serving threads grow.
pub fn print_throughput(rows: &[ThroughputRow]) {
    header("Experiment E8 — SAE engine throughput vs serving threads (fixed workload)");
    println!(
        "  {:>8} {:>9} {:>12} {:>10} {:>10} {:>9} {:>10} {:>9}",
        "threads", "queries", "qps", "p50 [ms]", "p99 [ms]", "speedup", "SP hit %", "verified"
    );
    for r in rows {
        println!(
            "  {:>8} {:>9} {:>12.0} {:>10.2} {:>10.2} {:>8.2}x {:>10.1} {:>9}",
            r.threads,
            r.queries,
            r.queries_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.speedup,
            100.0 * r.sp_cache_hit_rate,
            if r.all_verified { "all" } else { "NO" }
        );
    }
}

/// Experiment E9: sharded-engine throughput as the shard count grows, on
/// read-heavy and write-heavy mixes of spanning queries and routed updates.
pub fn print_sharded_throughput(rows: &[ShardedThroughputRow]) {
    header("Experiment E9 — sharded SAE engine throughput vs shards (spanning read/write mixes)");
    println!(
        "  {:>12} {:>8} {:>7} {:>7} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "mix", "threads", "shards", "ops", "ops/s", "p50 [ms]", "p99 [ms]", "speedup", "verified"
    );
    for r in rows {
        println!(
            "  {:>12} {:>8} {:>7} {:>7} {:>12.0} {:>10.2} {:>10.2} {:>8.2}x {:>9}",
            r.mix,
            r.threads,
            r.shards,
            r.ops,
            r.queries_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.speedup,
            if r.all_verified { "all" } else { "NO" }
        );
    }
}

/// Experiment E10: durability cost — cold-start open time and post-reopen
/// verified throughput of the file-backed sharded deployment.
pub fn print_durability(rows: &[DurabilityRow]) {
    header("Experiment E10 — durable deployment: cold-start open + post-reopen throughput");
    println!(
        "  {:>7} {:>11} {:>12} {:>10} {:>10} {:>12} {:>10} {:>10} {:>9}",
        "shards",
        "build [ms]",
        "commit [ms]",
        "close [ms]",
        "open [ms]",
        "reopen qps",
        "p50 [ms]",
        "disk [MiB]",
        "verified"
    );
    for r in rows {
        println!(
            "  {:>7} {:>11.1} {:>12.2} {:>10.2} {:>10.2} {:>12.0} {:>10.2} {:>10.2} {:>9}",
            r.shards,
            r.build_ms,
            r.update_commit_ms,
            r.close_ms,
            r.open_ms,
            r.post_reopen_qps,
            r.p50_ms,
            r.disk_bytes as f64 / (1024.0 * 1024.0),
            if r.all_verified { "all" } else { "NO" }
        );
    }
}

/// Experiment E11: durable write throughput and fsyncs-per-op under each
/// durability policy, with the post-reopen crash-consistency verdict.
pub fn print_group_commit(rows: &[GroupCommitRow]) {
    header("Experiment E11 — group commit: durable write qps + fsyncs/op vs policy");
    println!(
        "  {:>15} {:>7} {:>8} {:>6} {:>11} {:>10} {:>10} {:>8} {:>10} {:>9} {:>9}",
        "policy",
        "shards",
        "writers",
        "ops",
        "writes/s",
        "p50 [ms]",
        "p99 [ms]",
        "fsyncs",
        "fsyncs/op",
        "speedup",
        "verified"
    );
    for r in rows {
        println!(
            "  {:>15} {:>7} {:>8} {:>6} {:>11.0} {:>10.2} {:>10.2} {:>8} {:>10.2} {:>8.2}x {:>9}",
            r.policy,
            r.shards,
            r.threads,
            r.ops,
            r.writes_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.fsyncs,
            r.fsyncs_per_op,
            r.speedup_vs_immediate,
            if r.all_verified { "all" } else { "NO" }
        );
    }
}

/// Experiment E12: the write-ahead-log pipeline — one log fsync per
/// acknowledged durable write, and kill-replay recovery with zero refusals.
pub fn print_wal(rows: &[WalRow]) {
    header("Experiment E12 — write-ahead log: fsyncs/ack'd write + kill-replay recovery");
    println!(
        "  {:>10} {:>6} {:>11} {:>8} {:>10} {:>9} {:>11} {:>9} {:>8} {:>9}",
        "policy",
        "ops",
        "writes/s",
        "fsyncs",
        "fsyncs/op",
        "appends",
        "log bytes",
        "log sync",
        "replay",
        "verified"
    );
    for r in rows {
        println!(
            "  {:>10} {:>6} {:>11.0} {:>8} {:>10.2} {:>9} {:>11} {:>9} {:>8} {:>9}",
            r.policy,
            r.ops,
            r.writes_per_sec,
            r.fsyncs,
            r.fsyncs_per_op,
            r.wal_appends,
            r.wal_bytes,
            r.wal_syncs,
            if r.replay_recovered { "ok" } else { "LOST" },
            if r.all_verified { "all" } else { "NO" }
        );
    }
}

/// Experiment E13: networked scatter-gather serving — verified qps and tail
/// latency over loopback vs shard-server count, with byzantine and
/// dropped-endpoint legs.
pub fn print_net(rows: &[NetRow]) {
    header("Experiment E13 — networked serving: verified qps + p95 vs shard servers");
    println!(
        "  {:>7} {:>8} {:>10} {:>9} {:>9} {:>11} {:>9} {:>9} {:>7} {:>5}",
        "servers",
        "queries",
        "qps",
        "p50 ms",
        "p95 ms",
        "bytes/query",
        "records",
        "verified",
        "tamper",
        "drop"
    );
    for r in rows {
        println!(
            "  {:>7} {:>8} {:>10.0} {:>9.3} {:>9.3} {:>11.0} {:>9} {:>9} {:>7} {:>5}",
            r.shards,
            r.queries,
            r.qps,
            r.p50_ms,
            r.p95_ms,
            r.bytes_per_query,
            r.records_returned,
            if r.all_verified { "all" } else { "NO" },
            if r.tamper_detected {
                "caught"
            } else {
                "MISSED"
            },
            if r.drop_detected { "caught" } else { "MISSED" }
        );
    }
}

/// Prints the E14 replica table.
pub fn print_replicas(rows: &[ReplicaRow]) {
    header("Experiment E14 — trustless read replicas: verified qps vs replica count");
    println!(
        "  {:>8} {:>9} {:>7} {:>7} {:>10} {:>9} {:>9} {:>8} {:>9} {:>9} {:>9} {:>5}",
        "replicas",
        "endpoints",
        "threads",
        "queries",
        "qps",
        "p50 ms",
        "p95 ms",
        "speedup",
        "verified",
        "byzantine",
        "failovers",
        "stale"
    );
    for r in rows {
        println!(
            "  {:>8} {:>9} {:>7} {:>7} {:>10.0} {:>9.3} {:>9.3} {:>7.2}x {:>9} {:>9} {:>9} {:>5}",
            r.replicas,
            r.endpoints,
            r.threads,
            r.queries,
            r.qps,
            r.p50_ms,
            r.p95_ms,
            r.speedup,
            if r.all_verified { "all" } else { "NO" },
            if r.byzantine_routed_around {
                "routed"
            } else {
                "MISSED"
            },
            r.failovers,
            if r.stale_routed_around {
                "routed"
            } else {
                "MISSED"
            }
        );
    }
}

/// Prints the E16 fan-out and hedge table.
pub fn print_fanout(rows: &[FanoutRow]) {
    header("Experiment E16 — concurrent fan-out and hedged reads: latency by dispatch mode");
    println!(
        "  {:>10} {:>6} {:>9} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6} {:>9} {:>8}",
        "leg",
        "shards",
        "endpoints",
        "queries",
        "mean ms",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "ratio",
        "hedges",
        "failovers",
        "verified"
    );
    for r in rows {
        println!(
            "  {:>10} {:>6} {:>9} {:>7} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6.2}x {:>6} {:>9} {:>8}",
            r.leg,
            r.shards,
            r.endpoints,
            r.queries,
            r.mean_ms,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.ratio_vs_baseline,
            r.hedges,
            r.failovers,
            if r.all_verified { "all" } else { "NO" }
        );
    }
}

/// Serializes comparison rows to pretty JSON (for plotting outside Rust).
pub fn rows_to_json(rows: &[ComparisonRow]) -> String {
    report_to_json(rows)
}

/// Serializes any experiment row slice to pretty JSON (for the CI bench
/// artifacts and plotting outside Rust).
pub fn report_to_json<T: Serialize>(rows: &[T]) -> String {
    serde_json::to_string_pretty(rows).expect("rows serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_comparison, ExperimentConfig};
    use sae_workload::KeyDistribution;

    #[test]
    fn printers_do_not_panic_and_json_round_trips() {
        let config = ExperimentConfig {
            cardinalities: vec![1_000],
            distributions: vec![KeyDistribution::unf()],
            queries_per_config: 5,
            ..ExperimentConfig::scaled()
        };
        let rows = run_comparison(&config);
        print_fig5(&rows);
        print_fig6(&rows);
        print_fig7(&rows);
        print_fig8(&rows);
        let json = rows_to_json(&rows);
        assert!(json.contains("\"UNF\""));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed.as_array().unwrap().len() == 1);
    }
}
