//! Experiment drivers: build SAE and TOM side by side and measure them.

use sae_core::{
    DurabilityPolicy, QueryMetrics, SaeEngine, SaeSystem, ServeOptions, ShardedSaeEngine,
    ShardedVerifyError, StorageBreakdown, TomSystem,
};
use sae_crypto::signer::{Signer, Verifier};
use sae_crypto::{HashAlgorithm, MacSigner, RsaSigner};
use sae_net::{
    NetClient, NetClientConfig, ReplicaServer, ReplicaServerConfig, ServerTamper, ShardServer,
    ShardServerConfig, Topology,
};
use sae_storage::{CostModel, FilePager, MemPager, SharedPageStore};
use sae_workload::{
    paper, Dataset, DatasetSpec, KeyDistribution, QueryMix, QueryWorkload, RangeQuery, Record,
};
use sae_xbtree::XbTree;
use serde::Serialize;
use std::sync::Arc;

/// Which signature scheme the TOM data owner uses in an experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignatureScheme {
    /// Textbook RSA (as in the paper; slower key setup).
    Rsa,
    /// HMAC-based MAC (fast; used for quick runs and unit-style checks).
    Mac,
}

/// Configuration of one experiment sweep.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Dataset cardinalities to sweep (the `n` axis of every figure).
    pub cardinalities: Vec<usize>,
    /// Key distributions to run (UNF and/or SKW).
    pub distributions: Vec<KeyDistribution>,
    /// Number of range queries per configuration.
    pub queries_per_config: usize,
    /// Query extent as a fraction of the key domain.
    pub query_extent: f64,
    /// Encoded record size in bytes.
    pub record_size: usize,
    /// Base RNG seed (dataset and workload seeds are derived from it).
    pub seed: u64,
    /// Signature scheme for the TOM baseline.
    pub signature: SignatureScheme,
}

impl ExperimentConfig {
    /// The paper's configuration at 1/10 cardinality (CI-friendly).
    pub fn scaled() -> Self {
        ExperimentConfig {
            cardinalities: paper::SCALED_CARDINALITIES.to_vec(),
            distributions: vec![KeyDistribution::unf(), KeyDistribution::skw()],
            queries_per_config: paper::QUERIES_PER_EXPERIMENT,
            query_extent: paper::QUERY_EXTENT_FRACTION,
            record_size: paper::RECORD_SIZE,
            seed: 2009,
            signature: SignatureScheme::Mac,
        }
    }

    /// The paper's full-scale configuration (100 K – 1 M records).
    pub fn full_scale() -> Self {
        ExperimentConfig {
            cardinalities: paper::CARDINALITIES.to_vec(),
            signature: SignatureScheme::Rsa,
            ..Self::scaled()
        }
    }

    /// A tiny configuration for smoke tests and Criterion benches.
    pub fn smoke() -> Self {
        ExperimentConfig {
            cardinalities: vec![5_000, 10_000],
            distributions: vec![KeyDistribution::unf()],
            queries_per_config: 20,
            ..Self::scaled()
        }
    }
}

/// One `(distribution, n)` measurement: averaged per-query metrics and the
/// storage breakdown for both models.
#[derive(Clone, Debug, Serialize)]
pub struct ComparisonRow {
    /// `"UNF"` or `"SKW"`.
    pub distribution: String,
    /// Dataset cardinality.
    pub n: usize,
    /// Average per-query metrics under SAE.
    pub sae: QueryMetrics,
    /// Average per-query metrics under TOM.
    pub tom: QueryMetrics,
    /// Storage breakdown of the SAE deployment.
    pub sae_storage: StorageBreakdown,
    /// Storage breakdown of the TOM deployment.
    pub tom_storage: StorageBreakdown,
}

fn dataset_for(config: &ExperimentConfig, dist: KeyDistribution, n: usize) -> Dataset {
    DatasetSpec {
        cardinality: n,
        distribution: dist,
        record_size: config.record_size,
        seed: config.seed ^ (n as u64) ^ if dist.name() == "SKW" { 0x5157 } else { 0 },
    }
    .generate()
}

fn run_tom_workload<S: Signer, V: Verifier>(
    system: &TomSystem<S, V>,
    workload: &QueryWorkload,
) -> QueryMetrics {
    let mut total = QueryMetrics {
        verified: true,
        ..Default::default()
    };
    for q in workload.iter() {
        total.accumulate(&system.query(q).expect("TOM query").metrics);
    }
    total.averaged_over(workload.len() as u64)
}

/// Runs the full SAE-vs-TOM comparison; one row per `(distribution, n)`.
///
/// The same rows feed Figures 5 (auth bytes), 6 (charged processing time),
/// 7 (client verification time) and 8 (storage).
pub fn run_comparison(config: &ExperimentConfig) -> Vec<ComparisonRow> {
    let alg = HashAlgorithm::Sha1;
    let mut rows = Vec::new();
    for &dist in &config.distributions {
        for &n in &config.cardinalities {
            let dataset = dataset_for(config, dist, n);
            let workload = QueryWorkload::uniform(
                config.queries_per_config,
                dist.domain(),
                config.query_extent,
                config.seed ^ 0xABCD ^ n as u64,
            );

            // --- SAE deployment.
            let sae = SaeSystem::build_in_memory(&dataset, alg).expect("build SAE");
            let mut sae_total = QueryMetrics {
                verified: true,
                ..Default::default()
            };
            for q in workload.iter() {
                sae_total.accumulate(&sae.query(q).expect("SAE query").metrics);
            }
            let sae_avg = sae_total.averaged_over(workload.len() as u64);
            let sae_storage = sae.storage_breakdown();
            drop(sae);

            // --- TOM deployment.
            let (tom_avg, tom_storage) = match config.signature {
                SignatureScheme::Mac => {
                    let signer = MacSigner::new(b"do-signing-key".to_vec());
                    let system = TomSystem::build_in_memory(&dataset, alg, signer.clone(), signer)
                        .expect("build TOM");
                    (
                        run_tom_workload(&system, &workload),
                        system.storage_breakdown(),
                    )
                }
                SignatureScheme::Rsa => {
                    let signer = RsaSigner::insecure_test_signer();
                    let verifier = signer.verifier();
                    let system = TomSystem::build_in_memory(&dataset, alg, signer, verifier)
                        .expect("build TOM");
                    (
                        run_tom_workload(&system, &workload),
                        system.storage_breakdown(),
                    )
                }
            };

            rows.push(ComparisonRow {
                distribution: dist.name().to_string(),
                n,
                sae: sae_avg,
                tom: tom_avg,
                sae_storage,
                tom_storage,
            });
        }
    }
    rows
}

/// One row of the TE-index ablation (E5): XB-Tree vs sequential scan.
#[derive(Clone, Debug, Serialize)]
pub struct AblationRow {
    /// Dataset cardinality.
    pub n: usize,
    /// Average TE node accesses per query with the XB-Tree.
    pub xbtree_node_accesses: u64,
    /// Average TE node accesses per query with a sequential scan of `T`.
    pub scan_node_accesses: u64,
    /// Charged TE milliseconds with the XB-Tree.
    pub xbtree_charged_ms: f64,
    /// Charged TE milliseconds with the sequential scan.
    pub scan_charged_ms: f64,
}

/// Ablation E5: how much the XB-Tree saves over scanning the tuple set.
pub fn run_ablation_scan(config: &ExperimentConfig) -> Vec<AblationRow> {
    use sae_core::sae::TeMode;
    let alg = HashAlgorithm::Sha1;
    let cost = CostModel::paper();
    let mut rows = Vec::new();
    for &n in &config.cardinalities {
        let dataset = dataset_for(config, KeyDistribution::unf(), n);
        let workload = QueryWorkload::uniform(
            config.queries_per_config,
            KeyDistribution::unf().domain(),
            config.query_extent,
            config.seed ^ n as u64,
        );
        let mut totals = [0u64; 2];
        for (slot, mode) in [(0usize, TeMode::XbTree), (1, TeMode::SequentialScan)] {
            let system = SaeSystem::build(
                MemPager::new_shared(),
                MemPager::new_shared(),
                &dataset,
                alg,
                cost,
                mode,
            )
            .expect("build SAE");
            let mut acc = 0u64;
            for q in workload.iter() {
                acc += system.query(q).expect("query").metrics.te_node_accesses;
            }
            totals[slot] = acc / workload.len() as u64;
        }
        rows.push(AblationRow {
            n,
            xbtree_node_accesses: totals[0],
            scan_node_accesses: totals[1],
            xbtree_charged_ms: cost.charge_accesses_ms(totals[0]),
            scan_charged_ms: cost.charge_accesses_ms(totals[1]),
        });
    }
    rows
}

/// One row of the update-cost ablation (E6).
#[derive(Clone, Debug, Serialize)]
pub struct UpdateRow {
    /// Dataset cardinality before the update stream.
    pub n: usize,
    /// Average node accesses per insert+delete pair at the SAE SP (B⁺-Tree).
    pub sae_sp_accesses_per_update: f64,
    /// Average node accesses per insert+delete pair at the TE (XB-Tree).
    pub te_accesses_per_update: f64,
    /// Average node accesses per insert+delete pair at the TOM SP (MB-Tree).
    pub tom_sp_accesses_per_update: f64,
}

/// Ablation E6: maintenance cost of the three index structures under a stream
/// of insertions followed by deletions of the same records.
pub fn run_ablation_updates(config: &ExperimentConfig, updates: usize) -> Vec<UpdateRow> {
    let alg = HashAlgorithm::Sha1;
    let mut rows = Vec::new();
    for &n in &config.cardinalities {
        let dataset = dataset_for(config, KeyDistribution::unf(), n);
        let fresh: Vec<Record> = (0..updates as u64)
            .map(|i| {
                Record::with_size(
                    10_000_000 + i,
                    ((i * 997) % KeyDistribution::unf().domain() as u64) as u32,
                    config.record_size,
                )
            })
            .collect();

        // SAE deployment (covers both the SP's B+-Tree and the TE's XB-Tree).
        let sp_store = MemPager::new_shared();
        let te_store = MemPager::new_shared();
        let mut sae = SaeSystem::build(
            sp_store.clone(),
            te_store.clone(),
            &dataset,
            alg,
            CostModel::paper(),
            sae_core::sae::TeMode::XbTree,
        )
        .expect("build SAE");
        let sp_before = sp_store.stats().snapshot();
        let te_before = te_store.stats().snapshot();
        for r in &fresh {
            sae.insert_record(r).expect("insert");
        }
        for r in &fresh {
            sae.delete_record(r.id, r.key).expect("delete");
        }
        let sp_accesses = sp_store
            .stats()
            .snapshot()
            .delta_since(&sp_before)
            .node_accesses();
        let te_accesses = te_store
            .stats()
            .snapshot()
            .delta_since(&te_before)
            .node_accesses();

        // TOM deployment.
        let tom_store = MemPager::new_shared();
        let signer = MacSigner::new(b"do-signing-key".to_vec());
        let mut tom = TomSystem::build(
            tom_store.clone(),
            &dataset,
            alg,
            CostModel::paper(),
            signer.clone(),
            signer,
        )
        .expect("build TOM");
        let tom_before = tom_store.stats().snapshot();
        for r in &fresh {
            tom.insert_record(r).expect("insert");
        }
        for r in &fresh {
            tom.delete_record(r.id, r.key).expect("delete");
        }
        let tom_accesses = tom_store
            .stats()
            .snapshot()
            .delta_since(&tom_before)
            .node_accesses();

        let pairs = updates as f64;
        rows.push(UpdateRow {
            n,
            sae_sp_accesses_per_update: sp_accesses as f64 / pairs,
            te_accesses_per_update: te_accesses as f64 / pairs,
            tom_sp_accesses_per_update: tom_accesses as f64 / pairs,
        });
    }
    rows
}

/// Result row of the disk-vs-memory TE ablation (E7): wall-clock time to
/// generate the workload's verification tokens on each backend.
#[derive(Clone, Debug, Serialize)]
pub struct MemoryAblationRow {
    /// Dataset cardinality.
    pub n: usize,
    /// Wall-clock milliseconds for the whole workload, file-backed XB-Tree.
    pub disk_ms: f64,
    /// Wall-clock milliseconds for the whole workload, in-memory XB-Tree.
    pub memory_ms: f64,
}

/// Ablation E7: the paper remarks that the TE's footprint is small enough for
/// a main-memory index; this compares a file-backed against an in-memory
/// XB-Tree on real wall-clock time (not the simulated cost model).
pub fn run_ablation_memory(
    config: &ExperimentConfig,
    dir: &std::path::Path,
) -> Vec<MemoryAblationRow> {
    let alg = HashAlgorithm::Sha1;
    let mut rows = Vec::new();
    for &n in &config.cardinalities {
        let dataset = dataset_for(config, KeyDistribution::unf(), n);
        let mut tuples: Vec<_> = dataset.iter().map(|r| r.te_tuple(alg)).collect();
        tuples.sort_by_key(|t| (t.key, t.id));
        let workload = QueryWorkload::uniform(
            config.queries_per_config,
            KeyDistribution::unf().domain(),
            config.query_extent,
            config.seed ^ n as u64,
        );

        let disk_store: SharedPageStore = Arc::new(
            FilePager::create(dir.join(format!("xbtree-{n}.pages"))).expect("create pager file"),
        );
        let disk_tree = XbTree::bulk_load(disk_store, &tuples).expect("bulk load");
        let mem_tree = XbTree::bulk_load(MemPager::new_shared(), &tuples).expect("bulk load");

        let t0 = std::time::Instant::now();
        for q in workload.iter() {
            disk_tree.generate_vt(q).expect("vt");
        }
        let disk_ms = t0.elapsed().as_secs_f64() * 1000.0;

        let t1 = std::time::Instant::now();
        for q in workload.iter() {
            mem_tree.generate_vt(q).expect("vt");
        }
        let memory_ms = t1.elapsed().as_secs_f64() * 1000.0;

        rows.push(MemoryAblationRow {
            n,
            disk_ms,
            memory_ms,
        });
    }
    rows
}

/// Configuration of the concurrent-throughput experiment (E8).
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// Dataset cardinality.
    pub cardinality: usize,
    /// Encoded record size in bytes.
    pub record_size: usize,
    /// Thread counts to sweep (each serves the same total workload).
    pub thread_counts: Vec<usize>,
    /// Total queries in the fixed workload shared by every sweep point.
    pub total_queries: usize,
    /// Query extent as a fraction of the key domain.
    pub query_extent: f64,
    /// Simulated per-query I/O latency in microseconds (slept outside all
    /// locks; see `sae_core::engine`). This is what the threads overlap.
    pub io_micros_per_query: u64,
    /// Buffer-pool capacity in pages, wired under both parties.
    pub cache_pages: usize,
    /// Whether queries are placed uniformly or Zipf-skewed.
    pub zipf_placement: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            cardinality: 20_000,
            record_size: paper::RECORD_SIZE,
            thread_counts: vec![1, 2, 4, 8],
            total_queries: 240,
            query_extent: 0.002,
            io_micros_per_query: 1_000,
            cache_pages: 512,
            zipf_placement: false,
            seed: 2009,
        }
    }
}

impl ThroughputConfig {
    /// A fast configuration for smoke tests.
    pub fn smoke() -> Self {
        ThroughputConfig {
            cardinality: 4_000,
            thread_counts: vec![1, 4],
            total_queries: 80,
            io_micros_per_query: 500,
            ..Default::default()
        }
    }
}

/// One `(threads)` measurement of the throughput sweep.
#[derive(Clone, Debug, Serialize)]
pub struct ThroughputRow {
    /// Worker threads serving the batch.
    pub threads: usize,
    /// Queries served.
    pub queries: u64,
    /// Whether every query verified.
    pub all_verified: bool,
    /// Wall-clock milliseconds for the batch.
    pub wall_ms: f64,
    /// Queries per second.
    pub queries_per_sec: f64,
    /// Median query latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile query latency (ms).
    pub p99_ms: f64,
    /// Throughput relative to the 1-thread row.
    pub speedup: f64,
    /// Buffer-pool hit fraction at the SP over the whole run.
    pub sp_cache_hit_rate: f64,
}

/// Experiment E8: closed-loop throughput of the concurrent SAE engine as the
/// number of serving threads grows. Every sweep point replays the *same*
/// fixed workload, so `speedup` isolates the effect of concurrency.
pub fn run_throughput(config: &ThroughputConfig) -> Vec<ThroughputRow> {
    let dataset = DatasetSpec {
        cardinality: config.cardinality,
        distribution: KeyDistribution::unf(),
        record_size: config.record_size,
        seed: config.seed,
    }
    .generate();
    let engine = SaeEngine::build_cached(&dataset, HashAlgorithm::Sha1, config.cache_pages)
        .expect("build engine");
    let domain = KeyDistribution::unf().domain();
    let mix = if config.zipf_placement {
        QueryMix::zipf(domain, config.query_extent, paper::ZIPF_THETA)
    } else {
        QueryMix::uniform(domain, config.query_extent)
    };
    let queries = mix
        .workload(config.total_queries, config.seed ^ 0xE8)
        .queries;

    // One untimed warm-up pass: the first sweep point must not pay the buffer
    // pool's cold misses that later points would no longer see, or warm-up
    // would masquerade as thread scaling.
    let _ = engine.serve_batch(
        &queries,
        &ServeOptions {
            threads: 1,
            io_micros_per_query: 0,
        },
    );

    let mut measured = Vec::with_capacity(config.thread_counts.len());
    for &threads in &config.thread_counts {
        let hits_before = engine
            .sp_cache_stats()
            .map(|s| (s.cache_hits, s.cache_misses))
            .unwrap_or_default();
        let report = engine.serve_batch(
            &queries,
            &ServeOptions {
                threads,
                io_micros_per_query: config.io_micros_per_query,
            },
        );
        let (hits, misses) = engine
            .sp_cache_stats()
            .map(|s| (s.cache_hits - hits_before.0, s.cache_misses - hits_before.1))
            .unwrap_or_default();
        measured.push((threads, report, hits, misses));
    }

    // Speedup is relative to the 1-thread row when the sweep contains one,
    // falling back to the first row otherwise.
    let baseline = measured
        .iter()
        .find(|(threads, ..)| *threads == 1)
        .or_else(|| measured.first())
        .map(|(_, report, ..)| report.queries_per_sec)
        .unwrap_or(1.0);
    measured
        .into_iter()
        .map(|(threads, report, hits, misses)| ThroughputRow {
            threads,
            queries: report.queries,
            all_verified: report.all_verified,
            wall_ms: report.wall_ms,
            queries_per_sec: report.queries_per_sec,
            p50_ms: report.latency.p50_ms,
            p99_ms: report.latency.p99_ms,
            speedup: report.queries_per_sec / baseline,
            sp_cache_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        })
        .collect()
}

/// Configuration of the sharded-throughput experiment (E9).
#[derive(Clone, Debug)]
pub struct ShardedThroughputConfig {
    /// Dataset cardinality.
    pub cardinality: usize,
    /// Encoded record size in bytes.
    pub record_size: usize,
    /// Shard counts to sweep.
    pub shard_counts: Vec<usize>,
    /// Thread counts to sweep.
    pub thread_counts: Vec<usize>,
    /// Operations each client issues per sweep point.
    pub ops_per_client: usize,
    /// Query extent as a fraction of the key domain.
    pub query_extent: f64,
    /// Simulated I/O hold per *write*, in microseconds, slept inside the
    /// write critical section (see `sae_core::engine::UpdateService`);
    /// queries run at memory speed.
    pub io_micros_per_op: u64,
    /// Buffer-pool capacity in pages per shard and party.
    pub cache_pages: usize,
    /// How many times each sweep point is measured; the best run is
    /// reported, discarding scheduler-noise outliers (sleep-heavy closed
    /// loops are sensitive to them, especially on shared CI runners).
    pub repeats: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ShardedThroughputConfig {
    fn default() -> Self {
        ShardedThroughputConfig {
            cardinality: 20_000,
            record_size: paper::RECORD_SIZE,
            shard_counts: vec![1, 2, 4],
            thread_counts: vec![1, 4],
            ops_per_client: 60,
            query_extent: 0.002,
            io_micros_per_op: 1_000,
            cache_pages: 256,
            repeats: 3,
            seed: 2009,
        }
    }
}

impl ShardedThroughputConfig {
    /// A fast configuration for smoke tests and the CI bench gate. The write
    /// hold is long relative to the per-op CPU work so the 1-shard
    /// single-writer bottleneck (and the sharded speedup over it) is visible
    /// regardless of the host's core count.
    pub fn smoke() -> Self {
        ShardedThroughputConfig {
            cardinality: 4_000,
            shard_counts: vec![1, 4],
            thread_counts: vec![4],
            ops_per_client: 40,
            io_micros_per_op: 800,
            ..Default::default()
        }
    }
}

/// One `(mix, threads, shards)` measurement of the E9 sweep.
#[derive(Clone, Debug, Serialize)]
pub struct ShardedThroughputRow {
    /// `"read-heavy"` or `"write-heavy"`.
    pub mix: String,
    /// Fraction of operations that are data-owner writes.
    pub write_fraction: f64,
    /// Worker threads (concurrent clients).
    pub threads: usize,
    /// Key-range shards.
    pub shards: usize,
    /// Operations served (queries + updates).
    pub ops: u64,
    /// Whether every query verified and every update succeeded.
    pub all_verified: bool,
    /// Wall-clock milliseconds for the batch.
    pub wall_ms: f64,
    /// Operations per second.
    pub queries_per_sec: f64,
    /// Median operation latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile operation latency (ms).
    pub p99_ms: f64,
    /// Throughput relative to the 1-shard row of the same mix and threads.
    pub speedup: f64,
}

/// Experiment E9: throughput of the key-range sharded engine as the shard
/// count grows, on a read-heavy and a write-heavy mix of shard-spanning
/// queries and routed updates. Every `(mix, threads)` group replays the same
/// deterministic per-client op streams at every shard count, so `speedup`
/// isolates the effect of sharding — in particular how the per-shard lock
/// pairs break up the single-writer bottleneck on the write-heavy mix.
pub fn run_sharded_throughput(config: &ShardedThroughputConfig) -> Vec<ShardedThroughputRow> {
    let dataset = DatasetSpec {
        cardinality: config.cardinality,
        distribution: KeyDistribution::unf(),
        record_size: config.record_size,
        seed: config.seed,
    }
    .generate();
    let domain = KeyDistribution::unf().domain();
    let max_shards = config.shard_counts.iter().copied().max().unwrap_or(1);
    // The same spanning mix is used at every sweep point (so the workload is
    // identical); it straddles the boundaries of the *largest* layout, the
    // hardest case for its scatter-gather path.
    let mix = QueryMix::spanning(domain, config.query_extent, max_shards.max(2));

    let mut rows = Vec::new();
    for (label, write_fraction) in [("read-heavy", 0.1f64), ("write-heavy", 0.9)] {
        for &threads in &config.thread_counts {
            let mut group: Vec<(usize, sae_core::ThroughputReport)> = Vec::new();
            for &shards in &config.shard_counts {
                let engine = ShardedSaeEngine::build_cached(
                    &dataset,
                    HashAlgorithm::Sha1,
                    shards,
                    config.cache_pages,
                )
                .expect("build sharded engine");
                // Untimed warm-up so cold buffer pools don't masquerade as a
                // sharding effect.
                let _ = engine.serve_batch(
                    &mix.workload(32, config.seed ^ 0xE9).queries,
                    &ServeOptions {
                        threads: 1,
                        io_micros_per_query: 0,
                    },
                );
                // Best of `repeats` runs: the sleep-heavy closed loop is at
                // the mercy of the scheduler, and one preempted worker can
                // halve a run's throughput. The best run is the one closest
                // to what the engine (rather than the host) allows.
                let report = (0..config.repeats.max(1))
                    .map(|_| {
                        engine.serve_ops(
                            &mix,
                            write_fraction,
                            config.record_size,
                            config.ops_per_client,
                            config.seed ^ 0xE9,
                            &ServeOptions {
                                threads,
                                io_micros_per_query: config.io_micros_per_op,
                            },
                        )
                    })
                    .max_by(|a, b| {
                        a.queries_per_sec
                            .partial_cmp(&b.queries_per_sec)
                            .expect("throughput is finite")
                    })
                    .expect("at least one repeat");
                group.push((shards, report));
            }
            let baseline = group
                .iter()
                .find(|(shards, _)| *shards == 1)
                .or_else(|| group.first())
                .map(|(_, r)| r.queries_per_sec)
                .unwrap_or(1.0);
            for (shards, report) in group {
                rows.push(ShardedThroughputRow {
                    mix: label.to_string(),
                    write_fraction,
                    threads,
                    shards,
                    ops: report.queries,
                    all_verified: report.all_verified,
                    wall_ms: report.wall_ms,
                    queries_per_sec: report.queries_per_sec,
                    p50_ms: report.latency.p50_ms,
                    p99_ms: report.latency.p99_ms,
                    speedup: report.queries_per_sec / baseline,
                });
            }
        }
    }
    rows
}

/// Configuration of the durability experiment (E10).
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Dataset cardinality.
    pub cardinality: usize,
    /// Encoded record size in bytes.
    pub record_size: usize,
    /// Shard counts to sweep; each point gets its own deployment directory.
    pub shard_counts: Vec<usize>,
    /// Queries in the post-reopen serving batch.
    pub queries: usize,
    /// Query extent as a fraction of the key domain.
    pub query_extent: f64,
    /// Buffer-pool capacity in pages per shard and party.
    pub cache_pages: usize,
    /// Worker threads serving the post-reopen batch.
    pub threads: usize,
    /// Committed data-owner inserts applied before closing, so the reopened
    /// state differs from the initial bulk load (recovery must replay
    /// nothing — the committed roots already contain them).
    pub updates: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            cardinality: 20_000,
            record_size: paper::RECORD_SIZE,
            shard_counts: vec![1, 2, 4, 8],
            queries: 160,
            query_extent: 0.002,
            cache_pages: 256,
            threads: 4,
            updates: 16,
            seed: 2009,
        }
    }
}

impl DurabilityConfig {
    /// A fast configuration for smoke tests and the CI bench job.
    pub fn smoke() -> Self {
        DurabilityConfig {
            cardinality: 4_000,
            shard_counts: vec![1, 2, 4],
            queries: 64,
            updates: 8,
            ..Default::default()
        }
    }
}

/// One shard-count measurement of the E10 sweep.
#[derive(Clone, Debug, Serialize)]
pub struct DurabilityRow {
    /// Key-range shards (and pager-file pairs) in the deployment.
    pub shards: usize,
    /// Wall-clock milliseconds to build + commit the deployment from the
    /// dataset (`create_dir`, including the initial bulk loads and fsyncs).
    pub build_ms: f64,
    /// Wall-clock milliseconds per committed update before the shutdown.
    pub update_commit_ms: f64,
    /// Wall-clock milliseconds for the final flush + close.
    pub close_ms: f64,
    /// Cold-start wall-clock milliseconds to reopen the deployment from its
    /// manifest and committed roots (`open_dir` — no dataset rebuild).
    pub open_ms: f64,
    /// Queries per second served immediately after the reopen.
    pub post_reopen_qps: f64,
    /// Median post-reopen query latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile post-reopen query latency (ms).
    pub p99_ms: f64,
    /// Whether every post-reopen query verified.
    pub all_verified: bool,
    /// Total bytes of the deployment directory on disk.
    pub disk_bytes: u64,
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok().and_then(|e| e.metadata().ok()))
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// Experiment E10: cost of durability across shard counts. For every shard
/// count the sweep builds a durable deployment (`create_dir`), applies a
/// stream of committed updates, closes it, measures the *cold-start open
/// time* (`open_dir` recovers every shard from its manifest roots — nothing
/// is rebuilt from the dataset) and then the post-reopen verified query
/// throughput.
pub fn run_durability(config: &DurabilityConfig, dir: &std::path::Path) -> Vec<DurabilityRow> {
    let dataset = DatasetSpec {
        cardinality: config.cardinality,
        distribution: KeyDistribution::unf(),
        record_size: config.record_size,
        seed: config.seed,
    }
    .generate();
    let domain = KeyDistribution::unf().domain();
    let max_shards = config.shard_counts.iter().copied().max().unwrap_or(1);
    let mix = QueryMix::spanning(domain, config.query_extent, max_shards.max(2));
    let queries = mix.workload(config.queries, config.seed ^ 0xE10).queries;

    let mut rows = Vec::with_capacity(config.shard_counts.len());
    for &shards in &config.shard_counts {
        let deploy_dir = dir.join(format!("shards-{shards}"));
        // A previous interrupted sweep may have left a deployment here, and
        // create_dir refuses to truncate one — clear it first.
        let _ = std::fs::remove_dir_all(&deploy_dir);

        let t0 = std::time::Instant::now();
        let engine = ShardedSaeEngine::create_dir(
            &deploy_dir,
            &dataset,
            HashAlgorithm::Sha1,
            shards,
            Some(config.cache_pages),
        )
        .expect("create durable deployment");
        let build_ms = t0.elapsed().as_secs_f64() * 1000.0;

        // A stream of committed inserts: every one is flushed and synced in
        // commit order before `insert` returns, and every one must still be
        // served by the reopened deployment — the recovered state genuinely
        // differs from the initial bulk load.
        let t1 = std::time::Instant::now();
        for i in 0..config.updates as u64 {
            let key = ((i * 7_919) % (domain as u64 + 1)) as u32;
            let record = Record::with_size((1 << 43) | i, key, config.record_size);
            engine.insert(&record).expect("committed insert");
        }
        let update_commit_ms = t1.elapsed().as_secs_f64() * 1000.0 / (config.updates.max(1) as f64);

        let t2 = std::time::Instant::now();
        engine.close().expect("close deployment");
        let close_ms = t2.elapsed().as_secs_f64() * 1000.0;

        let t3 = std::time::Instant::now();
        let reopened =
            ShardedSaeEngine::open_dir(&deploy_dir, HashAlgorithm::Sha1, Some(config.cache_pages))
                .expect("reopen durable deployment");
        let open_ms = t3.elapsed().as_secs_f64() * 1000.0;

        let report = reopened.serve_batch(
            &queries,
            &ServeOptions {
                threads: config.threads,
                io_micros_per_query: 0,
            },
        );
        rows.push(DurabilityRow {
            shards,
            build_ms,
            update_commit_ms,
            close_ms,
            open_ms,
            post_reopen_qps: report.queries_per_sec,
            p50_ms: report.latency.p50_ms,
            p99_ms: report.latency.p99_ms,
            all_verified: report.all_verified && report.failed == 0,
            disk_bytes: dir_bytes(&deploy_dir),
        });
        reopened.close().expect("close reopened deployment");
        let _ = std::fs::remove_dir_all(&deploy_dir);
    }
    rows
}

/// Configuration of the group-commit experiment (E11).
#[derive(Clone, Debug)]
pub struct GroupCommitConfig {
    /// Dataset cardinality.
    pub cardinality: usize,
    /// Encoded record size in bytes.
    pub record_size: usize,
    /// Shard counts to sweep; each point gets its own deployment directory.
    pub shard_counts: Vec<usize>,
    /// Writer-thread counts to sweep (each thread is one closed-loop
    /// write-only client).
    pub writer_threads: Vec<usize>,
    /// Durable write round trips each writer issues per sweep point.
    pub ops_per_writer: usize,
    /// Buffer-pool capacity in pages per shard and party.
    pub cache_pages: usize,
    /// How many times each sweep point is measured; the best run is
    /// reported (scheduler-noise robustness, as in E9).
    pub repeats: usize,
    /// Queries in the post-reopen verification batch.
    pub verify_queries: usize,
    /// Simulated latency added to every pager fsync, in microseconds —
    /// models a production disk's barrier cost on fast CI storage, exactly
    /// as `io_micros_per_query` models read I/O in E8/E9 (see
    /// `FilePager::set_sync_delay_micros`). This is the quantity group
    /// commit amortizes; at zero the sweep measures the host's raw fsync.
    pub sync_delay_micros: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            cardinality: 20_000,
            record_size: paper::RECORD_SIZE,
            shard_counts: vec![1, 4],
            writer_threads: vec![1, 2, 4],
            ops_per_writer: 40,
            cache_pages: 256,
            repeats: 3,
            verify_queries: 32,
            sync_delay_micros: 3_000,
            seed: 2009,
        }
    }
}

impl GroupCommitConfig {
    /// A fast configuration for smoke tests and the CI bench gate: the
    /// 4-shard deployment at 1 and 4 writers, every policy.
    pub fn smoke() -> Self {
        GroupCommitConfig {
            cardinality: 4_000,
            shard_counts: vec![4],
            writer_threads: vec![1, 4],
            ops_per_writer: 30,
            repeats: 2,
            ..Default::default()
        }
    }
}

/// One `(policy, threads, shards)` measurement of the E11 sweep.
#[derive(Clone, Debug, Serialize)]
pub struct GroupCommitRow {
    /// Durability policy label: `"immediate"`, `"group"`, `"flush-on-close"`.
    pub policy: String,
    /// Writer threads (concurrent closed-loop write clients).
    pub threads: usize,
    /// Key-range shards (and pager-file pairs).
    pub shards: usize,
    /// Durable write round trips served.
    pub ops: u64,
    /// Whether every write succeeded *and* the reopened deployment served a
    /// fully verified post-restart query batch (crash consistency held).
    pub all_verified: bool,
    /// Wall-clock milliseconds for the write batch.
    pub wall_ms: f64,
    /// Durable writes per second.
    pub writes_per_sec: f64,
    /// Median write latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile write latency (ms).
    pub p99_ms: f64,
    /// Pager fsyncs issued during the batch (both parties, all shards).
    pub fsyncs: u64,
    /// Fsyncs per write — what group commit amortizes.
    pub fsyncs_per_op: f64,
    /// Throughput relative to the `immediate` row at the same threads and
    /// shards (1.0 for the `immediate` rows themselves).
    pub speedup_vs_immediate: f64,
}

/// Experiment E11: durable write throughput and fsyncs-per-op under each
/// [`DurabilityPolicy`], as writer threads and shard count grow. Every
/// sweep point builds a fresh file-backed deployment, drives a write-only
/// closed loop (`serve_ops` with a 100 % write fraction — every op is an
/// acknowledged durable insert+delete round trip), then closes and
/// *reopens* the deployment and serves a verified query batch, so a policy
/// only scores if its acknowledged writes actually survived the restart.
pub fn run_group_commit(config: &GroupCommitConfig, dir: &std::path::Path) -> Vec<GroupCommitRow> {
    let dataset = DatasetSpec {
        cardinality: config.cardinality,
        distribution: KeyDistribution::unf(),
        record_size: config.record_size,
        seed: config.seed,
    }
    .generate();
    let domain = KeyDistribution::unf().domain();
    // Zipf-skewed write placement (the paper's θ = 0.8): real write
    // workloads concentrate on hot key ranges, and that per-shard queueing
    // is exactly what group commit batches. Uniform placement at few
    // writers spreads one writer per shard and leaves nothing to batch.
    let mix = QueryMix::zipf(domain, 0.002, paper::ZIPF_THETA);
    let verify_queries = mix
        .workload(config.verify_queries, config.seed ^ 0xE11)
        .queries;
    let policies = [
        DurabilityPolicy::Immediate,
        DurabilityPolicy::group(),
        DurabilityPolicy::FlushOnClose,
    ];

    let mut rows = Vec::new();
    for &shards in &config.shard_counts {
        for &threads in &config.writer_threads {
            let mut group: Vec<GroupCommitRow> = Vec::new();
            for policy in policies {
                let deploy_dir = dir.join(format!("gc-{shards}-{threads}-{}", policy.label()));
                let _ = std::fs::remove_dir_all(&deploy_dir);
                let engine = ShardedSaeEngine::create_dir_with(
                    &deploy_dir,
                    &dataset,
                    HashAlgorithm::Sha1,
                    shards,
                    Some(config.cache_pages),
                    policy,
                )
                .expect("create durable deployment");
                engine.set_simulated_sync_delay_micros(config.sync_delay_micros);

                // Best of `repeats`: the fsync-bound closed loop is at the
                // scheduler's mercy on shared runners, exactly like E9.
                let report = (0..config.repeats.max(1))
                    .map(|_| {
                        engine.serve_ops(
                            &mix,
                            1.0, // write-only: every op is a durable round trip
                            config.record_size,
                            config.ops_per_writer,
                            config.seed ^ 0xE11,
                            &ServeOptions {
                                threads,
                                io_micros_per_query: 0,
                            },
                        )
                    })
                    .max_by(|a, b| {
                        a.queries_per_sec
                            .partial_cmp(&b.queries_per_sec)
                            .expect("throughput is finite")
                    })
                    .expect("at least one repeat");
                let fsyncs: u64 = report.party_io.iter().map(|p| p.delta.syncs).sum();
                let writes_ok = report.all_verified && report.failed == 0;
                engine.close().expect("close deployment");

                // Crash-consistency check: the reopened deployment must
                // serve a fully verified batch from its committed state.
                let reopened = ShardedSaeEngine::open_dir(
                    &deploy_dir,
                    HashAlgorithm::Sha1,
                    Some(config.cache_pages),
                )
                .expect("reopen durable deployment");
                let verify = reopened.serve_batch(
                    &verify_queries,
                    &ServeOptions {
                        threads: threads.max(2),
                        io_micros_per_query: 0,
                    },
                );
                reopened.close().expect("close reopened deployment");
                let _ = std::fs::remove_dir_all(&deploy_dir);

                group.push(GroupCommitRow {
                    policy: policy.label().to_string(),
                    threads,
                    shards,
                    ops: report.queries,
                    all_verified: writes_ok && verify.all_verified && verify.failed == 0,
                    wall_ms: report.wall_ms,
                    writes_per_sec: report.queries_per_sec,
                    p50_ms: report.latency.p50_ms,
                    p99_ms: report.latency.p99_ms,
                    fsyncs,
                    fsyncs_per_op: fsyncs as f64 / report.queries.max(1) as f64,
                    speedup_vs_immediate: 1.0,
                });
            }
            let baseline = group
                .iter()
                .find(|r| r.policy == "immediate")
                .map(|r| r.writes_per_sec)
                .unwrap_or(1.0);
            for mut row in group {
                row.speedup_vs_immediate = row.writes_per_sec / baseline;
                rows.push(row);
            }
        }
    }
    rows
}

/// Configuration of the write-ahead-log experiment (E12).
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Dataset cardinality.
    pub cardinality: usize,
    /// Encoded record size in bytes.
    pub record_size: usize,
    /// Key-range shards.
    pub shards: usize,
    /// Writer threads (closed-loop write-only clients).
    pub writers: usize,
    /// Durable write round trips each writer issues.
    pub ops_per_writer: usize,
    /// Buffer-pool capacity in pages per shard and party.
    pub cache_pages: usize,
    /// Best-of-`repeats` measurement, as in E9/E11.
    pub repeats: usize,
    /// Queries in the post-kill verification batch.
    pub verify_queries: usize,
    /// Simulated per-fsync latency (µs), mirrored onto the log — the cost
    /// the single-barrier acknowledgement is up against.
    pub sync_delay_micros: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            cardinality: 20_000,
            record_size: paper::RECORD_SIZE,
            shards: 4,
            writers: 4,
            ops_per_writer: 40,
            cache_pages: 256,
            repeats: 3,
            verify_queries: 32,
            sync_delay_micros: 3_000,
            seed: 2009,
        }
    }
}

impl WalConfig {
    /// A fast configuration for smoke tests and the CI bench gate.
    pub fn smoke() -> Self {
        WalConfig {
            cardinality: 4_000,
            writers: 2,
            ops_per_writer: 15,
            repeats: 2,
            verify_queries: 12,
            cache_pages: 128,
            ..Default::default()
        }
    }
}

/// One policy's measurement of the E12 write-ahead-log experiment.
#[derive(Clone, Debug, Serialize)]
pub struct WalRow {
    /// Durability policy label: `"immediate"` or `"group"`.
    pub policy: String,
    /// Acknowledged durable write round trips.
    pub ops: u64,
    /// Durable writes per second.
    pub writes_per_sec: f64,
    /// Total durability barriers during the batch (log + any checkpoint
    /// page/header fsyncs) — the E12 gate divides this by `ops`.
    pub fsyncs: u64,
    /// Fsyncs per acknowledged durable write. The pre-WAL pipeline paid ≥ 2
    /// (two header fsyncs plus a manifest rename) per immediate commit; the
    /// log-before-pages pipeline pays one log fsync plus an amortized
    /// checkpoint share.
    pub fsyncs_per_op: f64,
    /// Log append calls during the batch (one per committed transaction).
    pub wal_appends: u64,
    /// Framed bytes appended to the logs.
    pub wal_bytes: u64,
    /// Log fsyncs — the acknowledgement barriers (a subset of `fsyncs`).
    pub wal_syncs: u64,
    /// Whether the post-batch acknowledged write survived a `mem::forget`
    /// kill (no close, no Drop) purely via log replay on reopen.
    pub replay_recovered: bool,
    /// Every write succeeded, the killed deployment reopened, and the
    /// post-kill verification batch fully verified.
    pub all_verified: bool,
}

/// Experiment E12: the write-ahead-log commit pipeline's cost and its
/// recovery guarantee, under `Immediate` and `Group`. Each policy drives a
/// write-only closed loop (every op an acknowledged insert+delete round
/// trip), reads the fsync and log counters, then inserts one more
/// acknowledged record, kills the engine with `mem::forget` — no close, no
/// cache write-back — and asserts the reopen replays the log: the record is
/// served, verified, with zero refusals.
pub fn run_wal(config: &WalConfig, dir: &std::path::Path) -> Vec<WalRow> {
    let dataset = DatasetSpec {
        cardinality: config.cardinality,
        distribution: KeyDistribution::unf(),
        record_size: config.record_size,
        seed: config.seed,
    }
    .generate();
    let domain = KeyDistribution::unf().domain();
    let mix = QueryMix::zipf(domain, 0.002, paper::ZIPF_THETA);
    let verify_queries = mix
        .workload(config.verify_queries, config.seed ^ 0xE12)
        .queries;

    let mut rows = Vec::new();
    for policy in [DurabilityPolicy::Immediate, DurabilityPolicy::group()] {
        let deploy_dir = dir.join(format!("wal-{}", policy.label()));
        let _ = std::fs::remove_dir_all(&deploy_dir);
        let engine = ShardedSaeEngine::create_dir_with(
            &deploy_dir,
            &dataset,
            HashAlgorithm::Sha1,
            config.shards,
            Some(config.cache_pages),
            policy,
        )
        .expect("create durable deployment");
        engine.set_simulated_sync_delay_micros(config.sync_delay_micros);

        let report = (0..config.repeats.max(1))
            .map(|_| {
                engine.serve_ops(
                    &mix,
                    1.0, // write-only: every op is a durable round trip
                    config.record_size,
                    config.ops_per_writer,
                    config.seed ^ 0xE12,
                    &ServeOptions {
                        threads: config.writers,
                        io_micros_per_query: 0,
                    },
                )
            })
            .max_by(|a, b| {
                a.queries_per_sec
                    .partial_cmp(&b.queries_per_sec)
                    .expect("throughput is finite")
            })
            .expect("at least one repeat");
        let fsyncs: u64 = report.party_io.iter().map(|p| p.delta.syncs).sum();
        let wal_appends: u64 = report.party_io.iter().map(|p| p.delta.wal_appends).sum();
        let wal_bytes: u64 = report.party_io.iter().map(|p| p.delta.wal_bytes).sum();
        let wal_syncs: u64 = report.party_io.iter().map(|p| p.delta.wal_syncs).sum();
        let writes_ok = report.all_verified && report.failed == 0;

        // The kill-and-replay leg: one more acknowledged write, then a
        // simulated `kill -9` — the log fsync is the only durability this
        // write ever got, so only replay can recover it.
        let acked = Record::with_size(990_000_000, domain / 2, config.record_size);
        engine.insert(&acked).expect("acknowledged insert");
        std::mem::forget(engine);

        let reopened =
            ShardedSaeEngine::open_dir(&deploy_dir, HashAlgorithm::Sha1, Some(config.cache_pages))
                .expect("reopen after kill must replay, not refuse");
        let replay_recovered = reopened
            .query(&RangeQuery::new(acked.key, acked.key))
            .map(|outcome| {
                outcome.verdict.is_ok()
                    && outcome
                        .slices
                        .iter()
                        .flat_map(|s| s.records.iter())
                        .any(|r| Record::decode(r).is_some_and(|rec| rec.id == acked.id))
            })
            .unwrap_or(false);
        let verify = reopened.serve_batch(
            &verify_queries,
            &ServeOptions {
                threads: config.writers.max(2),
                io_micros_per_query: 0,
            },
        );
        reopened.close().expect("close reopened deployment");
        let _ = std::fs::remove_dir_all(&deploy_dir);

        rows.push(WalRow {
            policy: policy.label().to_string(),
            ops: report.queries,
            writes_per_sec: report.queries_per_sec,
            fsyncs,
            fsyncs_per_op: fsyncs as f64 / report.queries.max(1) as f64,
            wal_appends,
            wal_bytes,
            wal_syncs,
            replay_recovered,
            all_verified: writes_ok
                && replay_recovered
                && verify.all_verified
                && verify.failed == 0,
        });
    }
    rows
}

/// Configuration of experiment E13: networked scatter-gather serving over
/// loopback TCP.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Dataset cardinality.
    pub cardinality: usize,
    /// Encoded record size in bytes.
    pub record_size: usize,
    /// Shard-server counts to sweep (one endpoint per shard).
    pub shard_counts: Vec<usize>,
    /// Range queries per measurement repeat.
    pub queries: usize,
    /// Query extent as a fraction of the key domain.
    pub query_extent: f64,
    /// Best-of-`repeats` measurement, as in E9/E11/E12.
    pub repeats: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            cardinality: 20_000,
            record_size: paper::RECORD_SIZE,
            shard_counts: vec![1, 2, 3, 4],
            queries: 120,
            query_extent: 0.01,
            repeats: 3,
            seed: 2009,
        }
    }
}

impl NetConfig {
    /// A fast configuration for smoke tests and the CI bench gate.
    pub fn smoke() -> Self {
        NetConfig {
            cardinality: 3_000,
            queries: 32,
            repeats: 1,
            ..Default::default()
        }
    }
}

/// One shard-server count's measurement of the E13 network experiment.
#[derive(Clone, Debug, Serialize)]
pub struct NetRow {
    /// Shard servers (= endpoints = shards) in the deployment.
    pub shards: usize,
    /// Range queries in the measured repeat.
    pub queries: u64,
    /// Verified scatter-gather queries per second over loopback.
    pub qps: f64,
    /// Median end-to-end latency (scatter + gather + verify), ms.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency, ms.
    pub p95_ms: f64,
    /// Mean response bytes per query across all endpoints.
    pub bytes_per_query: f64,
    /// Records returned across the measured repeat.
    pub records_returned: u64,
    /// Every row of every query re-verified against the TE token and no
    /// endpoint error occurred.
    pub all_verified: bool,
    /// All three byzantine-server behaviours (flipped record byte, dropped
    /// record, flipped token bit) were detected as per-slice verification
    /// failures on the tampering shard.
    pub tamper_detected: bool,
    /// Killing one endpoint yielded the typed `MissingShardSlice` verdict
    /// for its shard — a partial answer is never silently accepted.
    pub drop_detected: bool,
}

/// Index of the value at quantile `q` in an ascending-sorted sample.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Experiment E13: the networked deployment — qps and tail latency of
/// verified scatter-gather range queries versus shard-server count, over
/// loopback TCP with one `ShardServer` per shard. Every query's slices are
/// re-verified by the `NetClient` exactly as in-process; each row then arms
/// every byzantine tamper mode on one server (expecting per-slice
/// verification failures) and finally kills one endpoint (expecting the
/// typed missing-slice verdict).
pub fn run_net(config: &NetConfig) -> Vec<NetRow> {
    let dataset = DatasetSpec {
        cardinality: config.cardinality,
        distribution: KeyDistribution::unf(),
        record_size: config.record_size,
        seed: config.seed,
    }
    .generate();
    let domain = KeyDistribution::unf().domain();
    let workload = QueryMix::zipf(domain, config.query_extent, paper::ZIPF_THETA)
        .workload(config.queries, config.seed ^ 0xE13)
        .queries;
    let full_domain = RangeQuery::new(0, domain);

    let mut rows = Vec::new();
    for &shards in &config.shard_counts {
        let engine = Arc::new(
            ShardedSaeEngine::build_in_memory(&dataset, HashAlgorithm::Sha1, shards)
                .expect("build sharded engine"),
        );
        let mut servers: Vec<ShardServer> = (0..shards)
            .map(|shard| {
                ShardServer::spawn(
                    Arc::clone(&engine),
                    vec![shard],
                    "127.0.0.1:0",
                    ShardServerConfig::default(),
                )
                .expect("spawn shard server on loopback")
            })
            .collect();
        let endpoints = servers.iter().map(|s| s.local_addr().to_string()).collect();
        let mut client = NetClient::for_engine(&engine, endpoints).expect("layout covered");

        // Honest measurement: best-of-repeats on qps, every row re-verified.
        let mut best: Option<NetRow> = None;
        for _ in 0..config.repeats.max(1) {
            let mut latencies_ms = Vec::with_capacity(workload.len());
            let mut bytes_received = 0u64;
            let mut records_returned = 0u64;
            let mut all_verified = true;
            let started = std::time::Instant::now();
            for q in &workload {
                let outcome = client.query(q);
                all_verified &= outcome.verdict.is_ok() && outcome.endpoint_errors.is_empty();
                latencies_ms.push(outcome.elapsed_ms);
                bytes_received += outcome.bytes_received;
                records_returned += outcome.record_count() as u64;
            }
            let elapsed = started.elapsed().as_secs_f64();
            latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
            let row = NetRow {
                shards,
                queries: workload.len() as u64,
                qps: workload.len() as f64 / elapsed.max(1e-9),
                p50_ms: percentile(&latencies_ms, 0.50),
                p95_ms: percentile(&latencies_ms, 0.95),
                bytes_per_query: bytes_received as f64 / workload.len().max(1) as f64,
                records_returned,
                all_verified,
                tamper_detected: false,
                drop_detected: false,
            };
            if best.as_ref().is_none_or(|b| row.qps > b.qps) {
                best = Some(row);
            }
        }
        let mut row = best.expect("at least one repeat");

        // Byzantine leg: arm each tamper mode on shard 0's server and expect
        // the doctored slice to fail per-slice verification — detected, not
        // trusted.
        let mut tamper_detected = true;
        for tamper in [
            ServerTamper::FlipRecordByte,
            ServerTamper::DropFirstRecord,
            ServerTamper::FlipTokenBit,
        ] {
            servers[0].set_tamper(Some(tamper));
            let outcome = client.query(&full_domain);
            tamper_detected &= matches!(
                outcome.verdict,
                Err(ShardedVerifyError::Slice { shard: 0, .. })
            );
            servers[0].set_tamper(None);
        }
        row.tamper_detected = tamper_detected;

        // Drop leg: kill shard 0's endpoint; the missing slice must surface
        // as the typed `MissingShardSlice` verdict, never as a silently
        // accepted partial answer.
        servers.remove(0).shutdown();
        let outcome = client.query(&full_domain);
        row.drop_detected = matches!(
            outcome.verdict,
            Err(ShardedVerifyError::MissingShardSlice { shard: 0 })
        ) && outcome.endpoint_errors.iter().any(|(s, _)| *s == 0);
        for server in servers {
            server.shutdown();
        }
        rows.push(row);
    }
    rows
}

/// Configuration of the E14 replica experiment.
#[derive(Clone, Debug)]
pub struct ReplicasConfig {
    /// Dataset cardinality.
    pub cardinality: usize,
    /// Encoded record size in bytes.
    pub record_size: usize,
    /// Honest-replica counts to sweep (each deployment adds one more
    /// byzantine replica on top).
    pub replica_counts: Vec<usize>,
    /// Shards in the durable primary (every replica serves all of them).
    pub shards: usize,
    /// Concurrent client threads, each owning its own `NetClient`.
    pub threads: usize,
    /// Range queries per client thread in the measured phase.
    pub queries_per_thread: usize,
    /// Query extent as a fraction of the key domain.
    pub query_extent: f64,
    /// Simulated per-query service time on every replica, serialized behind
    /// a server-wide gate — what makes a single replica a saturation point
    /// and lets added replicas scale the read path.
    pub service_delay_micros: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ReplicasConfig {
    fn default() -> Self {
        ReplicasConfig {
            cardinality: 12_000,
            record_size: paper::RECORD_SIZE,
            replica_counts: vec![1, 2, 3],
            shards: 2,
            threads: 3,
            queries_per_thread: 60,
            query_extent: 0.01,
            service_delay_micros: 5_000,
            seed: 2014,
        }
    }
}

impl ReplicasConfig {
    /// A fast configuration for smoke tests and the CI bench gate.
    pub fn smoke() -> Self {
        ReplicasConfig {
            cardinality: 3_000,
            queries_per_thread: 24,
            ..Default::default()
        }
    }
}

/// One replica count's measurement of the E14 experiment.
#[derive(Clone, Debug, Serialize)]
pub struct ReplicaRow {
    /// Honest replicas in the deployment.
    pub replicas: usize,
    /// Total replica endpoints in the topology (honest + 1 byzantine).
    pub endpoints: usize,
    /// Concurrent client threads.
    pub threads: usize,
    /// Range queries in the measured phase across all threads.
    pub queries: u64,
    /// Verified queries per second across all threads.
    pub qps: f64,
    /// Median end-to-end latency (scatter + gather + verify), ms.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency, ms.
    pub p95_ms: f64,
    /// qps relative to the smallest replica count in the sweep.
    pub speedup: f64,
    /// Queries whose verdict was `Ok` — must equal `queries`.
    pub verified: u64,
    /// Every measured query verified despite the armed byzantine replica.
    pub all_verified: bool,
    /// Queries issued while the byzantine replica was armed (the whole
    /// measured phase runs with it in the topology).
    pub byzantine_queries: u64,
    /// The byzantine replica was consulted at least once (failover legs
    /// observed) and zero unverified responses were accepted.
    pub byzantine_routed_around: bool,
    /// The stale-epoch leg: a replica advertising epoch 0 was refused by
    /// the freshness check and its sibling answered, every verdict `Ok`.
    pub stale_routed_around: bool,
    /// Failover legs across the measured phase (slow, erroring, stale or
    /// byzantine sources all count).
    pub failovers: u64,
    /// Slices refused by the freshness check during the measured phase.
    pub stale_refused: u64,
}

/// What one E14 client thread measured.
struct ReplicaThreadOut {
    latencies_ms: Vec<f64>,
    verified: u64,
    failovers: u64,
    stale_refused: u64,
}

/// Experiment E14: trustless read replicas — verified qps versus replica
/// count over loopback TCP. One durable primary feeds each deployment's
/// replicas (snapshot bootstrap + WAL-tail sync); every deployment also
/// carries one *byzantine* replica (doctored record bytes) that clients
/// must detect, demote and route around with zero unverified responses.
/// A final leg per row arms a stale-epoch replica (honest content, epoch
/// claim below the client's verified high-water mark) and expects the
/// freshness check to refuse it the same way.
pub fn run_replicas(config: &ReplicasConfig, dir: &std::path::Path) -> Vec<ReplicaRow> {
    let dataset = DatasetSpec {
        cardinality: config.cardinality,
        distribution: KeyDistribution::unf(),
        record_size: config.record_size,
        seed: config.seed,
    }
    .generate();
    let domain = KeyDistribution::unf().domain();
    let engine = Arc::new(
        ShardedSaeEngine::create_dir(dir, &dataset, HashAlgorithm::Sha1, config.shards, None)
            .expect("build durable primary"),
    );
    // The primary serves only replica sync — measured queries go to replicas.
    let primary = ShardServer::spawn(
        Arc::clone(&engine),
        (0..config.shards).collect(),
        "127.0.0.1:0",
        ShardServerConfig::default(),
    )
    .expect("spawn primary server on loopback");

    let replica_cfg = ReplicaServerConfig {
        server: ShardServerConfig {
            service_delay: std::time::Duration::from_micros(config.service_delay_micros),
            ..Default::default()
        },
        ..Default::default()
    };
    let client_cfg = NetClientConfig {
        hedge_timeout: Some(std::time::Duration::from_millis(250)),
        ..Default::default()
    };

    let mut rows: Vec<ReplicaRow> = Vec::new();
    for &replicas in &config.replica_counts {
        let spawn_replica = || {
            ReplicaServer::spawn(
                primary.local_addr().to_string(),
                engine.layout().clone(),
                HashAlgorithm::Sha1,
                config.record_size,
                (0..config.shards).collect(),
                "127.0.0.1:0",
                replica_cfg,
            )
            .expect("bootstrap replica from primary")
        };
        let honest: Vec<ReplicaServer> = (0..replicas).map(|_| spawn_replica()).collect();
        let byzantine = spawn_replica();
        byzantine.set_tamper(Some(ServerTamper::FlipRecordByte));
        let endpoints: Vec<String> = honest
            .iter()
            .chain(std::iter::once(&byzantine))
            .map(|r| r.local_addr().to_string())
            .collect();
        let topology = Topology::replicated(vec![endpoints; config.shards])
            .expect("every shard has a replica group");

        // Measured phase: every query runs with the byzantine replica armed
        // and in rotation; verification must route around it every time.
        let started = std::time::Instant::now();
        let outs: Vec<ReplicaThreadOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.threads)
                .map(|t| {
                    let topology = topology.clone();
                    let engine = &engine;
                    scope.spawn(move || {
                        let workload =
                            QueryMix::zipf(domain, config.query_extent, paper::ZIPF_THETA)
                                .workload(
                                    config.queries_per_thread,
                                    config.seed ^ 0xE14 ^ (t as u64).wrapping_mul(7_919),
                                )
                                .queries;
                        let mut client =
                            NetClient::for_engine_topology(engine, topology, client_cfg)
                                .expect("topology covers the layout");
                        let mut out = ReplicaThreadOut {
                            latencies_ms: Vec::with_capacity(workload.len()),
                            verified: 0,
                            failovers: 0,
                            stale_refused: 0,
                        };
                        for q in &workload {
                            let outcome = client.query(q);
                            out.verified += u64::from(outcome.verdict.is_ok());
                            out.latencies_ms.push(outcome.elapsed_ms);
                            out.failovers += outcome.failovers;
                            out.stale_refused += outcome.stale_refused;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        let elapsed = started.elapsed().as_secs_f64();

        let queries = (config.threads * config.queries_per_thread) as u64;
        let verified: u64 = outs.iter().map(|o| o.verified).sum();
        let failovers: u64 = outs.iter().map(|o| o.failovers).sum();
        let stale_refused: u64 = outs.iter().map(|o| o.stale_refused).sum();
        let mut latencies_ms: Vec<f64> = outs.into_iter().flat_map(|o| o.latencies_ms).collect();
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
        let all_verified = verified == queries;

        // Stale-epoch leg: a fresh client first raises its verified
        // high-water marks against honest replicas, then the extra replica
        // starts advertising epoch 0 — honest bytes, stale claim. The
        // freshness check must refuse it and the sibling answer, with every
        // verdict still `Ok`.
        byzantine.set_tamper(None);
        let mut stale_client =
            NetClient::for_engine_topology(&engine, topology.clone(), client_cfg)
                .expect("topology covers the layout");
        let full = RangeQuery::new(0, domain);
        let mut stale_routed_around = stale_client.query(&full).verdict.is_ok();
        byzantine.set_tamper(Some(ServerTamper::StaleEpoch));
        let mut leg_refusals = 0u64;
        for _ in 0..2 * (replicas + 1) + 2 {
            let outcome = stale_client.query(&full);
            stale_routed_around &= outcome.verdict.is_ok();
            leg_refusals += outcome.stale_refused;
        }
        stale_routed_around &= leg_refusals > 0;

        rows.push(ReplicaRow {
            replicas,
            endpoints: replicas + 1,
            threads: config.threads,
            queries,
            qps: queries as f64 / elapsed.max(1e-9),
            p50_ms: percentile(&latencies_ms, 0.50),
            p95_ms: percentile(&latencies_ms, 0.95),
            speedup: 1.0, // filled in once the sweep's baseline is known
            verified,
            all_verified,
            byzantine_queries: queries,
            byzantine_routed_around: all_verified && failovers > 0,
            stale_routed_around,
            failovers,
            stale_refused,
        });
        for replica in honest {
            replica.shutdown();
        }
        byzantine.shutdown();
    }
    primary.shutdown();

    let baseline = rows
        .iter()
        .min_by_key(|r| r.replicas)
        .map(|r| r.qps)
        .unwrap_or(0.0);
    for row in &mut rows {
        row.speedup = if baseline > 0.0 {
            row.qps / baseline
        } else {
            0.0
        };
    }
    rows
}

/// Configuration of the E16 fan-out experiment.
#[derive(Clone, Debug)]
pub struct FanoutConfig {
    /// Dataset cardinality.
    pub cardinality: usize,
    /// Encoded record size in bytes.
    pub record_size: usize,
    /// Shard servers in the fan-out deployment (one endpoint per shard).
    pub shards: usize,
    /// Measured span-all-shards queries per fan-out leg.
    pub fanout_queries: usize,
    /// Simulated per-query service time on every fan-out server — the wait
    /// the concurrent dispatch must overlap.
    pub service_delay_micros: u64,
    /// Measured queries per hedge leg.
    pub hedge_queries: usize,
    /// Service time of the fast replica in the hedge deployment.
    pub fast_delay_micros: u64,
    /// Service time of the deliberately slow replica.
    pub slow_delay_micros: u64,
    /// The hedged client's `hedge_timeout`.
    pub hedge_timeout_micros: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for FanoutConfig {
    fn default() -> Self {
        // The dataset is kept deliberately small (and the records short):
        // E16 measures how dispatch overlaps *service waits*, so the
        // serial per-query cost — scan, transfer, client-side verify —
        // must stay well below the simulated delays or it compresses the
        // ratio toward 1 regardless of how well the fan-out overlaps.
        FanoutConfig {
            cardinality: 2_400,
            record_size: 64,
            shards: 4,
            fanout_queries: 40,
            service_delay_micros: 5_000,
            hedge_queries: 40,
            fast_delay_micros: 1_000,
            slow_delay_micros: 80_000,
            hedge_timeout_micros: 10_000,
            seed: 2016,
        }
    }
}

impl FanoutConfig {
    /// A fast configuration for smoke tests and the CI bench gate.
    pub fn smoke() -> Self {
        FanoutConfig {
            cardinality: 1_200,
            fanout_queries: 24,
            hedge_queries: 24,
            ..Default::default()
        }
    }
}

/// One leg's measurement of the E16 fan-out experiment.
#[derive(Clone, Debug, Serialize)]
pub struct FanoutRow {
    /// `sequential` / `concurrent` (fan-out legs) or `unhedged` / `hedged`
    /// (hedge legs).
    pub leg: String,
    /// Shards in the deployment.
    pub shards: usize,
    /// Replica endpoints in the topology.
    pub endpoints: usize,
    /// Measured queries (after warm-up).
    pub queries: u64,
    /// Mean end-to-end latency (scatter + gather + verify), ms.
    pub mean_ms: f64,
    /// Median end-to-end latency, ms.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub p99_ms: f64,
    /// Latency relative to the leg's baseline: p50 vs `sequential` for the
    /// `concurrent` leg, p99 vs `unhedged` for the `hedged` leg, 1.0 for
    /// the baselines themselves.
    pub ratio_vs_baseline: f64,
    /// Hedge legs raced across the measured queries.
    pub hedges: u64,
    /// Failover hops across the measured queries.
    pub failovers: u64,
    /// Every measured query verified via the shared `verify_slices` with no
    /// endpoint errors.
    pub all_verified: bool,
}

/// Drives `queries` measured full-domain queries (after two warm-ups that
/// also populate the connection pool) and folds them into a [`FanoutRow`].
fn fanout_leg(
    leg: &str,
    engine: &ShardedSaeEngine,
    topology: Topology,
    cfg: NetClientConfig,
    full: &RangeQuery,
    queries: usize,
) -> FanoutRow {
    let endpoints = topology.max_group();
    let mut client =
        NetClient::for_engine_topology(engine, topology, cfg).expect("topology covers the layout");
    let mut all_verified = true;
    for _ in 0..2 {
        all_verified &= client.query(full).verdict.is_ok();
    }
    let mut latencies_ms = Vec::with_capacity(queries);
    let mut hedges = 0u64;
    let mut failovers = 0u64;
    for _ in 0..queries {
        let outcome = client.query(full);
        all_verified &= outcome.verdict.is_ok() && outcome.endpoint_errors.is_empty();
        latencies_ms.push(outcome.elapsed_ms);
        hedges += outcome.hedges;
        failovers += outcome.failovers;
    }
    let mean_ms = latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64;
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
    FanoutRow {
        leg: leg.to_string(),
        shards: engine.shard_count(),
        endpoints,
        queries: queries as u64,
        mean_ms,
        p50_ms: percentile(&latencies_ms, 0.50),
        p95_ms: percentile(&latencies_ms, 0.95),
        p99_ms: percentile(&latencies_ms, 0.99),
        ratio_vs_baseline: 1.0, // filled in once the leg's baseline is known
        hedges,
        failovers,
        all_verified,
    }
}

/// Experiment E16: the concurrent scatter phase and true hedged reads.
///
/// Fan-out legs: one delayed `ShardServer` per shard (every query waits
/// `service_delay` at every endpoint), span-all-shards queries dispatched
/// sequentially vs concurrently by the *same* `NetClient` code — the
/// concurrent leg must pay roughly the max of the per-shard waits instead
/// of their sum. Hedge legs: one shard behind a fast and a deliberately
/// slow replica; the round-robin cursor makes half the unhedged queries pay
/// the slow replica's full service time, while the hedged client races the
/// fast sibling after `hedge_timeout` and takes the first valid slice —
/// p99 must drop. Every slice on every leg passes the shared
/// `verify_slices`.
pub fn run_fanout(config: &FanoutConfig) -> Vec<FanoutRow> {
    let dataset = DatasetSpec {
        cardinality: config.cardinality,
        distribution: KeyDistribution::unf(),
        record_size: config.record_size,
        seed: config.seed,
    }
    .generate();
    let domain = KeyDistribution::unf().domain();
    let full = RangeQuery::new(0, domain);

    // --- Fan-out legs: sequential vs concurrent dispatch over one delayed
    // server per shard.
    let engine = Arc::new(
        ShardedSaeEngine::build_in_memory(&dataset, HashAlgorithm::Sha1, config.shards)
            .expect("build sharded engine"),
    );
    let servers: Vec<ShardServer> = (0..config.shards)
        .map(|shard| {
            ShardServer::spawn(
                Arc::clone(&engine),
                vec![shard],
                "127.0.0.1:0",
                ShardServerConfig {
                    service_delay: std::time::Duration::from_micros(config.service_delay_micros),
                    ..Default::default()
                },
            )
            .expect("spawn shard server on loopback")
        })
        .collect();
    let endpoints: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let sequential = fanout_leg(
        "sequential",
        &engine,
        Topology::single(endpoints.clone()),
        NetClientConfig {
            sequential_fanout: true,
            ..Default::default()
        },
        &full,
        config.fanout_queries,
    );
    let mut concurrent = fanout_leg(
        "concurrent",
        &engine,
        Topology::single(endpoints),
        NetClientConfig::default(),
        &full,
        config.fanout_queries,
    );
    concurrent.ratio_vs_baseline = if sequential.p50_ms > 0.0 {
        concurrent.p50_ms / sequential.p50_ms
    } else {
        0.0
    };
    for server in servers {
        server.shutdown();
    }

    // --- Hedge legs: one shard behind a fast and a deliberately slow
    // replica; round-robin alternates which one a query prefers.
    let hedge_engine = Arc::new(
        ShardedSaeEngine::build_in_memory(&dataset, HashAlgorithm::Sha1, 1)
            .expect("build single-shard engine"),
    );
    let spawn_delayed = |delay_micros: u64| {
        ShardServer::spawn(
            Arc::clone(&hedge_engine),
            vec![0],
            "127.0.0.1:0",
            ShardServerConfig {
                service_delay: std::time::Duration::from_micros(delay_micros),
                ..Default::default()
            },
        )
        .expect("spawn replica server on loopback")
    };
    let fast = spawn_delayed(config.fast_delay_micros);
    let slow = spawn_delayed(config.slow_delay_micros);
    let group = vec![fast.local_addr().to_string(), slow.local_addr().to_string()];
    let topology = Topology::replicated(vec![group]).expect("non-empty replica group");
    let unhedged = fanout_leg(
        "unhedged",
        &hedge_engine,
        topology.clone(),
        NetClientConfig::default(),
        &full,
        config.hedge_queries,
    );
    let mut hedged = fanout_leg(
        "hedged",
        &hedge_engine,
        topology,
        NetClientConfig {
            hedge_timeout: Some(std::time::Duration::from_micros(
                config.hedge_timeout_micros,
            )),
            ..Default::default()
        },
        &full,
        config.hedge_queries,
    );
    hedged.ratio_vs_baseline = if unhedged.p99_ms > 0.0 {
        hedged.p99_ms / unhedged.p99_ms
    } else {
        0.0
    };
    fast.shutdown();
    slow.shutdown();

    vec![sequential, concurrent, unhedged, hedged]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            cardinalities: vec![2_000, 4_000],
            distributions: vec![KeyDistribution::unf(), KeyDistribution::skw()],
            queries_per_config: 10,
            query_extent: 0.005,
            record_size: 500,
            seed: 7,
            signature: SignatureScheme::Mac,
        }
    }

    #[test]
    fn comparison_rows_have_the_paper_shape() {
        let rows = run_comparison(&tiny_config());
        assert_eq!(rows.len(), 4); // 2 distributions x 2 cardinalities
        for row in &rows {
            // Everything verified.
            assert!(row.sae.verified && row.tom.verified, "{row:?}");
            // Fig. 5: the SAE token is 20 bytes, the TOM VO is much larger.
            assert_eq!(row.sae.auth_bytes, 20);
            assert!(row.tom.auth_bytes > 10 * row.sae.auth_bytes);
            // Fig. 6: SAE's SP is cheaper than TOM's SP, and the TE is cheap.
            assert!(row.sae.sp_charged_ms < row.tom.sp_charged_ms);
            assert!(row.sae.te_charged_ms < row.sae.sp_charged_ms);
            // Fig. 8: SP storage dominated by the dataset; TE storage small.
            assert!(row.sae_storage.te_bytes < row.sae_storage.sp_total_bytes());
            assert_eq!(row.tom_storage.te_bytes, 0);
        }
        // Costs grow with n within a distribution.
        assert!(rows[1].sae.sp_charged_ms >= rows[0].sae.sp_charged_ms);
    }

    #[test]
    fn scan_ablation_shows_the_xbtree_advantage() {
        let mut config = tiny_config();
        config.cardinalities = vec![3_000];
        let rows = run_ablation_scan(&config);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].scan_node_accesses > 3 * rows[0].xbtree_node_accesses);
    }

    #[test]
    fn update_ablation_orders_the_trees_by_fanout() {
        let mut config = tiny_config();
        config.cardinalities = vec![3_000];
        let rows = run_ablation_updates(&config, 50);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.sae_sp_accesses_per_update > 0.0);
        assert!(row.te_accesses_per_update > 0.0);
        assert!(row.tom_sp_accesses_per_update > 0.0);
    }

    /// Acceptance: queries/sec must scale > 1.5x from 1 to 4 threads. The
    /// engine overlaps the simulated per-query I/O latency, so this holds
    /// even on a single hardware core.
    #[test]
    fn throughput_scales_with_threads() {
        let config = ThroughputConfig {
            cardinality: 3_000,
            thread_counts: vec![1, 4],
            total_queries: 120,
            io_micros_per_query: 1_500,
            ..ThroughputConfig::smoke()
        };
        let rows = run_throughput(&config);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.all_verified), "{rows:?}");
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[1].threads, 4);
        assert!(
            rows[1].speedup > 1.5,
            "1→4 thread speedup {:.2} (qps {:.0} → {:.0})",
            rows[1].speedup,
            rows[0].queries_per_sec,
            rows[1].queries_per_sec
        );
        // The Zipf-placed mix keeps the buffer pool hot.
        let zipf = run_throughput(&ThroughputConfig {
            zipf_placement: true,
            ..config
        });
        assert!(zipf.iter().all(|r| r.all_verified));
        assert!(zipf.last().unwrap().sp_cache_hit_rate > 0.0);
    }

    /// Acceptance: the write-heavy mix must scale with the shard count (the
    /// per-shard lock pairs break up the single-writer bottleneck), and every
    /// spanning query must still verify across every layout.
    #[test]
    fn sharded_throughput_write_mix_scales_with_shards() {
        let config = ShardedThroughputConfig {
            cardinality: 2_000,
            shard_counts: vec![1, 4],
            thread_counts: vec![4],
            ops_per_client: 20,
            io_micros_per_op: 500,
            cache_pages: 128,
            ..ShardedThroughputConfig::smoke()
        };
        let rows = run_sharded_throughput(&config);
        assert_eq!(rows.len(), 4); // 2 mixes x 1 thread count x 2 shard counts
        assert!(rows.iter().all(|r| r.all_verified), "{rows:?}");
        let writes_4 = rows
            .iter()
            .find(|r| r.mix == "write-heavy" && r.shards == 4)
            .unwrap();
        assert_eq!(writes_4.threads, 4);
        assert!(
            writes_4.speedup > 1.5,
            "1→4 shard write-heavy speedup {:.2} (rows {rows:?})",
            writes_4.speedup
        );
        // Baseline rows are their own reference point.
        for r in rows.iter().filter(|r| r.shards == 1) {
            assert!((r.speedup - 1.0).abs() < 1e-9);
        }
    }

    /// Acceptance: every post-reopen query must verify, and the cold-start
    /// open (which only reads committed pages) must be faster than the
    /// build (which hashes, bulk-loads and writes everything) — the signal
    /// that recovery does not rebuild from the dataset.
    #[test]
    fn durability_sweep_reopens_fast_and_verified() {
        let dir = tempfile::tempdir().unwrap();
        let config = DurabilityConfig {
            cardinality: 2_000,
            shard_counts: vec![1, 2],
            queries: 24,
            threads: 2,
            updates: 4,
            cache_pages: 128,
            ..DurabilityConfig::smoke()
        };
        let rows = run_durability(&config, dir.path());
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.all_verified, "{row:?}");
            assert!(row.post_reopen_qps > 0.0);
            assert!(row.disk_bytes > 0);
            assert!(
                row.open_ms < row.build_ms,
                "cold-start open ({:.1} ms) not faster than build ({:.1} ms)",
                row.open_ms,
                row.build_ms
            );
        }
    }

    /// Acceptance: at 4 concurrent writers, group commit must beat the
    /// per-update-commit baseline (the batched fsyncs amortize), issue
    /// strictly fewer fsyncs per op, and every policy's acknowledged writes
    /// must survive the close/reopen with verified digests.
    #[test]
    fn group_commit_sweep_batches_and_stays_crash_consistent() {
        let dir = tempfile::tempdir().unwrap();
        let config = GroupCommitConfig {
            cardinality: 2_000,
            shard_counts: vec![2],
            writer_threads: vec![4],
            ops_per_writer: 12,
            repeats: 2,
            verify_queries: 12,
            cache_pages: 128,
            ..GroupCommitConfig::smoke()
        };
        let rows = run_group_commit(&config, dir.path());
        assert_eq!(rows.len(), 3); // 1 shard count x 1 thread count x 3 policies
        assert!(rows.iter().all(|r| r.all_verified), "{rows:?}");
        let immediate = rows.iter().find(|r| r.policy == "immediate").unwrap();
        let group = rows.iter().find(|r| r.policy == "group").unwrap();
        let flush_on_close = rows.iter().find(|r| r.policy == "flush-on-close").unwrap();
        // One WAL fsync acknowledges each immediate commit (the pre-WAL
        // pipeline paid two header fsyncs plus a manifest rename per op).
        assert!(immediate.fsyncs_per_op >= 1.0, "{immediate:?}");
        assert!(
            group.fsyncs_per_op < immediate.fsyncs_per_op,
            "group {:.2} fsyncs/op vs immediate {:.2}",
            group.fsyncs_per_op,
            immediate.fsyncs_per_op
        );
        assert_eq!(flush_on_close.fsyncs, 0, "{flush_on_close:?}");
        assert!(
            group.writes_per_sec > immediate.writes_per_sec,
            "group qps {:.0} did not beat immediate {:.0}",
            group.writes_per_sec,
            immediate.writes_per_sec
        );
        assert!((immediate.speedup_vs_immediate - 1.0).abs() < 1e-9);
    }

    /// Acceptance: read qps must scale > 1.5x from 1 to 3 replicas (each
    /// replica's gated service delay is the saturation point the siblings
    /// relieve), with the byzantine and stale-epoch replicas detected and
    /// routed around on every row and zero unverified responses.
    #[test]
    fn replicas_scale_reads_and_route_around_byzantine_and_stale() {
        let dir = tempfile::tempdir().unwrap();
        let config = ReplicasConfig {
            cardinality: 2_000,
            replica_counts: vec![1, 3],
            queries_per_thread: 16,
            ..ReplicasConfig::smoke()
        };
        let rows = run_replicas(&config, dir.path());
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.all_verified, "{row:?}");
            assert!(row.byzantine_routed_around, "{row:?}");
            assert!(row.stale_routed_around, "{row:?}");
            assert_eq!(row.byzantine_queries, row.queries);
        }
        let three = rows.iter().find(|r| r.replicas == 3).unwrap();
        assert!(
            three.speedup > 1.5,
            "1→3 replica speedup {:.2} (rows {rows:?})",
            three.speedup
        );
    }

    /// Acceptance: the concurrent fan-out must overlap the per-shard
    /// service waits (concurrent p50 clearly below sequential p50), and the
    /// hedged client must cut the tail a slow replica inflicts (hedged p99
    /// below unhedged p99, with hedges actually fired) — every leg fully
    /// verified. Delays are large relative to scheduler noise so the test
    /// is robust in debug builds.
    #[test]
    fn fanout_overlaps_shard_waits_and_hedges_the_slow_replica() {
        let config = FanoutConfig {
            cardinality: 2_000,
            fanout_queries: 12,
            hedge_queries: 12,
            service_delay_micros: 20_000,
            fast_delay_micros: 2_000,
            slow_delay_micros: 80_000,
            hedge_timeout_micros: 10_000,
            ..FanoutConfig::smoke()
        };
        let rows = run_fanout(&config);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.all_verified), "{rows:?}");
        let seq = rows.iter().find(|r| r.leg == "sequential").unwrap();
        let conc = rows.iter().find(|r| r.leg == "concurrent").unwrap();
        assert!(
            conc.p50_ms < 0.75 * seq.p50_ms,
            "concurrent p50 {:.1} ms vs sequential {:.1} ms",
            conc.p50_ms,
            seq.p50_ms
        );
        let unhedged = rows.iter().find(|r| r.leg == "unhedged").unwrap();
        let hedged = rows.iter().find(|r| r.leg == "hedged").unwrap();
        assert_eq!(unhedged.hedges, 0, "{unhedged:?}");
        assert!(hedged.hedges > 0, "{hedged:?}");
        assert!(
            hedged.p99_ms < unhedged.p99_ms,
            "hedged p99 {:.1} ms vs unhedged {:.1} ms",
            hedged.p99_ms,
            unhedged.p99_ms
        );
    }

    #[test]
    fn configs_expose_paper_parameters() {
        let scaled = ExperimentConfig::scaled();
        assert_eq!(scaled.queries_per_config, 100);
        assert_eq!(scaled.record_size, 500);
        let full = ExperimentConfig::full_scale();
        assert_eq!(full.cardinalities.last(), Some(&1_000_000));
    }
}
