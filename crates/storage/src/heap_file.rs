//! Fixed-size-record heap files.
//!
//! The service provider stores the outsourced relation `R` as a plain dataset
//! file and, after traversing its index, scans this file to retrieve the
//! actual result records (the paper notes this extra scan explicitly when
//! discussing Figure 6). [`HeapFile`] models that file: records of a fixed
//! length (500 bytes in the evaluation) are packed into 4096-byte pages and
//! addressed by a dense [`RecordId`].

use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, PAGE_SIZE};
use crate::pager::SharedPageStore;

/// Identifier of a record inside a [`HeapFile`] (dense, 0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u64);

/// A heap file of fixed-length records packed into pages.
pub struct HeapFile {
    store: SharedPageStore,
    pages: Vec<PageId>,
    record_len: usize,
    records_per_page: usize,
    record_count: u64,
}

impl HeapFile {
    /// Creates an empty heap file for records of exactly `record_len` bytes.
    pub fn create(store: SharedPageStore, record_len: usize) -> StorageResult<Self> {
        if record_len == 0 || record_len > PAGE_SIZE {
            return Err(StorageError::InvalidRecordLength(record_len));
        }
        Ok(HeapFile {
            store,
            pages: Vec::new(),
            record_len,
            records_per_page: PAGE_SIZE / record_len,
            record_count: 0,
        })
    }

    /// Reopens a heap file from its persisted geometry: the fixed record
    /// length, the record count and the ordered page list (as recovered from
    /// a [`crate::manifest::PageDirectory`]). The geometry must be
    /// internally consistent — the page list must be exactly long enough for
    /// the record count — or the file is reported as corrupted.
    pub fn open(
        store: SharedPageStore,
        record_len: usize,
        record_count: u64,
        pages: Vec<PageId>,
    ) -> StorageResult<Self> {
        if record_len == 0 || record_len > PAGE_SIZE {
            return Err(StorageError::InvalidRecordLength(record_len));
        }
        let records_per_page = PAGE_SIZE / record_len;
        let needed = record_count.div_ceil(records_per_page as u64);
        if pages.len() as u64 != needed {
            return Err(StorageError::Corrupted(format!(
                "heap geometry mismatch: {record_count} records of {record_len} bytes need \
                 {needed} pages, page table has {}",
                pages.len()
            )));
        }
        Ok(HeapFile {
            store,
            pages,
            record_len,
            records_per_page,
            record_count,
        })
    }

    /// The fixed record length in bytes.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// The ordered page list backing this heap file (what a durable
    /// deployment persists so the file can be reopened).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Number of records currently stored.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Number of records that fit in one page.
    pub fn records_per_page(&self) -> usize {
        self.records_per_page
    }

    /// Number of pages allocated by this heap file.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Bytes occupied by this heap file (allocated pages).
    pub fn storage_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// Appends a record, returning its id.
    pub fn append(&mut self, record: &[u8]) -> StorageResult<RecordId> {
        if record.len() != self.record_len {
            return Err(StorageError::RecordSizeMismatch {
                expected: self.record_len,
                actual: record.len(),
            });
        }
        let slot = (self.record_count % self.records_per_page as u64) as usize;
        let page_idx = (self.record_count / self.records_per_page as u64) as usize;

        if page_idx == self.pages.len() {
            self.pages.push(self.store.allocate()?);
        }
        let page_id = self.pages[page_idx];
        let mut page = self.store.read(page_id)?;
        page.write_bytes(slot * self.record_len, record);
        self.store.write(page_id, &page)?;

        let id = RecordId(self.record_count);
        self.record_count += 1;
        Ok(id)
    }

    /// Appends many records at once, buffering page writes (one read/write per
    /// page instead of per record). Returns the id of the first record.
    pub fn append_batch<'a, I>(&mut self, records: I) -> StorageResult<Option<RecordId>>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut first = None;
        let mut current_page_idx: Option<usize> = None;
        let mut current_page = None;

        for record in records {
            if record.len() != self.record_len {
                // Flush whatever we buffered before reporting the error.
                if let (Some(idx), Some(page)) = (current_page_idx, current_page.as_ref()) {
                    self.store.write(self.pages[idx], page)?;
                }
                return Err(StorageError::RecordSizeMismatch {
                    expected: self.record_len,
                    actual: record.len(),
                });
            }
            let slot = (self.record_count % self.records_per_page as u64) as usize;
            let page_idx = (self.record_count / self.records_per_page as u64) as usize;

            if current_page_idx != Some(page_idx) {
                if let (Some(idx), Some(page)) = (current_page_idx, current_page.as_ref()) {
                    self.store.write(self.pages[idx], page)?;
                }
                if page_idx == self.pages.len() {
                    self.pages.push(self.store.allocate()?);
                }
                current_page = Some(self.store.read(self.pages[page_idx])?);
                current_page_idx = Some(page_idx);
            }
            // analyzer:allow(no-unwrap-in-lib, the branch above loads the page whenever the index changes, and it always changes on the first iteration)
            let page = current_page.as_mut().expect("page loaded above");
            page.write_bytes(slot * self.record_len, record);

            if first.is_none() {
                first = Some(RecordId(self.record_count));
            }
            self.record_count += 1;
        }
        if let (Some(idx), Some(page)) = (current_page_idx, current_page.as_ref()) {
            self.store.write(self.pages[idx], page)?;
        }
        Ok(first)
    }

    /// Reads the record with the given id.
    pub fn get(&self, id: RecordId) -> StorageResult<Vec<u8>> {
        if id.0 >= self.record_count {
            return Err(StorageError::RecordOutOfBounds {
                record_id: id.0,
                record_count: self.record_count,
            });
        }
        let slot = (id.0 % self.records_per_page as u64) as usize;
        let page_idx = (id.0 / self.records_per_page as u64) as usize;
        let page = self.store.read(self.pages[page_idx])?;
        Ok(page
            .read_bytes(slot * self.record_len, self.record_len)
            .to_vec())
    }

    /// Overwrites the record with the given id.
    pub fn update(&mut self, id: RecordId, record: &[u8]) -> StorageResult<()> {
        if record.len() != self.record_len {
            return Err(StorageError::RecordSizeMismatch {
                expected: self.record_len,
                actual: record.len(),
            });
        }
        if id.0 >= self.record_count {
            return Err(StorageError::RecordOutOfBounds {
                record_id: id.0,
                record_count: self.record_count,
            });
        }
        let slot = (id.0 % self.records_per_page as u64) as usize;
        let page_idx = (id.0 / self.records_per_page as u64) as usize;
        let page_id = self.pages[page_idx];
        let mut page = self.store.read(page_id)?;
        page.write_bytes(slot * self.record_len, record);
        self.store.write(page_id, &page)
    }

    /// Reads a contiguous run of records `[start, start + count)`, touching
    /// each underlying page only once. This models the sequential scan of the
    /// dataset file the SP performs to return the query result.
    pub fn get_range(&self, start: RecordId, count: u64) -> StorageResult<Vec<Vec<u8>>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let end = start.0 + count;
        if end > self.record_count {
            return Err(StorageError::RecordOutOfBounds {
                record_id: end - 1,
                record_count: self.record_count,
            });
        }
        let mut out = Vec::with_capacity(count as usize);
        let mut current_page_idx = usize::MAX;
        let mut current_page = None;
        for rid in start.0..end {
            let slot = (rid % self.records_per_page as u64) as usize;
            let page_idx = (rid / self.records_per_page as u64) as usize;
            if page_idx != current_page_idx {
                current_page = Some(self.store.read(self.pages[page_idx])?);
                current_page_idx = page_idx;
            }
            // analyzer:allow(no-unwrap-in-lib, the branch above loads the page whenever the index changes, and it always changes on the first iteration)
            let page = current_page.as_ref().expect("page loaded above");
            out.push(
                page.read_bytes(slot * self.record_len, self.record_len)
                    .to_vec(),
            );
        }
        Ok(out)
    }

    /// Iterates over all records (used by the data owner when shipping the
    /// dataset to the SP/TE and by full-scan baselines).
    pub fn scan_all(&self) -> StorageResult<Vec<Vec<u8>>> {
        self.get_range(RecordId(0), self.record_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn record(len: usize, tag: u8) -> Vec<u8> {
        let mut r = vec![tag; len];
        r[0] = tag.wrapping_add(1);
        r
    }

    fn new_heap(record_len: usize) -> HeapFile {
        HeapFile::create(MemPager::new_shared(), record_len).unwrap()
    }

    #[test]
    fn create_rejects_bad_record_lengths() {
        assert!(matches!(
            HeapFile::create(MemPager::new_shared(), 0),
            Err(StorageError::InvalidRecordLength(0))
        ));
        assert!(matches!(
            HeapFile::create(MemPager::new_shared(), PAGE_SIZE + 1),
            Err(StorageError::InvalidRecordLength(_))
        ));
        assert!(HeapFile::create(MemPager::new_shared(), PAGE_SIZE).is_ok());
    }

    #[test]
    fn append_and_get_round_trip() {
        let mut heap = new_heap(500);
        let ids: Vec<RecordId> = (0..20u8)
            .map(|i| heap.append(&record(500, i)).unwrap())
            .collect();
        assert_eq!(heap.record_count(), 20);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(heap.get(*id).unwrap(), record(500, i as u8));
        }
    }

    #[test]
    fn records_per_page_matches_paper_parameters() {
        // 500-byte records in 4096-byte pages -> 8 records per page.
        let heap = new_heap(500);
        assert_eq!(heap.records_per_page(), 8);
    }

    #[test]
    fn pages_are_allocated_lazily() {
        let mut heap = new_heap(500);
        assert_eq!(heap.page_count(), 0);
        for i in 0..8u8 {
            heap.append(&record(500, i)).unwrap();
        }
        assert_eq!(heap.page_count(), 1);
        heap.append(&record(500, 8)).unwrap();
        assert_eq!(heap.page_count(), 2);
        assert_eq!(heap.storage_bytes(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn append_rejects_wrong_size() {
        let mut heap = new_heap(100);
        assert!(matches!(
            heap.append(&[0u8; 99]),
            Err(StorageError::RecordSizeMismatch { .. })
        ));
    }

    #[test]
    fn get_out_of_bounds_errors() {
        let heap = new_heap(64);
        assert!(matches!(
            heap.get(RecordId(0)),
            Err(StorageError::RecordOutOfBounds { .. })
        ));
    }

    #[test]
    fn update_overwrites_in_place() {
        let mut heap = new_heap(64);
        let id = heap.append(&record(64, 1)).unwrap();
        heap.update(id, &record(64, 9)).unwrap();
        assert_eq!(heap.get(id).unwrap(), record(64, 9));
        assert!(heap.update(RecordId(7), &record(64, 1)).is_err());
        assert!(heap.update(id, &[0u8; 3]).is_err());
    }

    #[test]
    fn get_range_spans_pages() {
        let mut heap = new_heap(500);
        for i in 0..30u8 {
            heap.append(&record(500, i)).unwrap();
        }
        let rows = heap.get_range(RecordId(5), 20).unwrap();
        assert_eq!(rows.len(), 20);
        for (off, row) in rows.iter().enumerate() {
            assert_eq!(*row, record(500, 5 + off as u8));
        }
        assert!(heap.get_range(RecordId(20), 20).is_err());
        assert!(heap.get_range(RecordId(0), 0).unwrap().is_empty());
    }

    #[test]
    fn get_range_touches_each_page_once() {
        let store = MemPager::new_shared();
        let mut heap = HeapFile::create(store.clone(), 500).unwrap();
        for i in 0..32u8 {
            heap.append(&record(500, i)).unwrap();
        }
        let before = store.stats().snapshot();
        heap.get_range(RecordId(0), 32).unwrap();
        let delta = store.stats().snapshot().delta_since(&before);
        // 32 records / 8 per page = 4 pages, read exactly once each.
        assert_eq!(delta.node_reads, 4);
    }

    #[test]
    fn append_batch_matches_individual_appends() {
        let mut a = new_heap(128);
        let mut b = new_heap(128);
        let records: Vec<Vec<u8>> = (0..50u8).map(|i| record(128, i)).collect();
        for r in &records {
            a.append(r).unwrap();
        }
        let first = b
            .append_batch(records.iter().map(|r| r.as_slice()))
            .unwrap();
        assert_eq!(first, Some(RecordId(0)));
        assert_eq!(a.record_count(), b.record_count());
        for i in 0..50u64 {
            assert_eq!(a.get(RecordId(i)).unwrap(), b.get(RecordId(i)).unwrap());
        }
    }

    #[test]
    fn append_batch_uses_fewer_page_accesses() {
        let store_single = MemPager::new_shared();
        let store_batch = MemPager::new_shared();
        let mut single = HeapFile::create(store_single.clone(), 500).unwrap();
        let mut batch = HeapFile::create(store_batch.clone(), 500).unwrap();
        let records: Vec<Vec<u8>> = (0..64u8).map(|i| record(500, i)).collect();
        for r in &records {
            single.append(r).unwrap();
        }
        batch
            .append_batch(records.iter().map(|r| r.as_slice()))
            .unwrap();
        let single_accesses = store_single.stats().snapshot().node_accesses();
        let batch_accesses = store_batch.stats().snapshot().node_accesses();
        assert!(batch_accesses < single_accesses);
    }

    #[test]
    fn open_round_trips_the_persisted_geometry() {
        let store = MemPager::new_shared();
        let mut heap = HeapFile::create(store.clone(), 500).unwrap();
        for i in 0..20u8 {
            heap.append(&record(500, i)).unwrap();
        }
        let pages = heap.pages().to_vec();
        let count = heap.record_count();
        drop(heap);

        let reopened = HeapFile::open(store.clone(), 500, count, pages.clone()).unwrap();
        assert_eq!(reopened.record_count(), 20);
        for i in 0..20u64 {
            assert_eq!(reopened.get(RecordId(i)).unwrap(), record(500, i as u8));
        }

        // Geometry mismatches are corruption, not silent truncation.
        assert!(matches!(
            HeapFile::open(store.clone(), 500, count + 100, pages.clone()),
            Err(StorageError::Corrupted(_))
        ));
        assert!(matches!(
            HeapFile::open(store.clone(), 500, count, pages[..1].to_vec()),
            Err(StorageError::Corrupted(_))
        ));
        assert!(matches!(
            HeapFile::open(store, 0, 0, Vec::new()),
            Err(StorageError::InvalidRecordLength(0))
        ));
    }

    #[test]
    fn scan_all_returns_everything_in_order() {
        let mut heap = new_heap(500);
        for i in 0..17u8 {
            heap.append(&record(500, i)).unwrap();
        }
        let all = heap.scan_all().unwrap();
        assert_eq!(all.len(), 17);
        assert_eq!(all[16], record(500, 16));
    }
}
