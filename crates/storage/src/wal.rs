//! Per-shard write-ahead log: the commit pipeline's source of truth.
//!
//! Every durable commit is appended here and fsynced **before** any page or
//! manifest write — the acknowledgement fsync is the log fsync, and page
//! flush + manifest save are demoted to a later checkpoint. Recovery scans
//! the log, tolerates a torn tail (a crash mid-append), replays every fully
//! committed transaction past the manifest's epoch, and truncates the log
//! once a checkpoint has made the replayed state durable in the page files.
//!
//! ## On-disk format
//!
//! A log file (`wal-<shard>.log`) is a flat sequence of CRC-framed records:
//!
//! ```text
//! frame  := [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! payload:= [tag: u8] [body]
//! ```
//!
//! `crc32` is CRC-32/IEEE over the payload. Records, by tag:
//!
//! | tag | record         | body                                           |
//! |-----|----------------|------------------------------------------------|
//! | 1   | `Seg`          | `base_epoch: u64` — first frame of a segment   |
//! | 2   | `Begin`        | `epoch: u64`                                   |
//! | 3   | `PageImage`    | `party: u8, page_id: u64, image: PAGE_SIZE`    |
//! | 4   | `HeapDirEntry` | `index: u64, page_id: u64`                     |
//! | 5   | `Commit`       | the committing shard's [`ShardMeta`] bytes     |
//!
//! One transaction is `Begin`, any number of `PageImage` / `HeapDirEntry`
//! records, then `Commit` whose metadata carries the same epoch. The scan
//! ([`scan_log`]) is **torn-tail tolerant**: it stops at the first frame
//! that is short, oversized, or fails its CRC, and drops a trailing `Begin`
//! that never reached its `Commit` — the result is always the longest valid
//! committed prefix, never a panic or a bogus record.
//!
//! ## Segments, rotation, truncation
//!
//! The first frame of every file is `Seg { base_epoch }`: the commit epoch
//! already durable in the page files when the segment was started. Each
//! checkpoint, after saving the manifest, *rotates* the log — atomically
//! replaces it (via [`crate::atomic_replace::atomic_replace`]) with a fresh
//! one-frame segment — which is how the log is truncated: everything the
//! checkpoint persisted no longer needs replaying.

use crate::atomic_replace::atomic_replace;
use crate::error::{StorageError, StorageResult};
use crate::manifest::{Party, ShardMeta, SHARD_META_LEN};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::stats::IoStats;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Returns the WAL file name of shard `shard`: `wal-<shard>.log`.
pub fn wal_file_name(shard: usize) -> String {
    format!("wal-{shard}.log")
}

const TAG_SEG: u8 = 1;
const TAG_BEGIN: u8 = 2;
const TAG_PAGE_IMAGE: u8 = 3;
const TAG_HEAP_DIR_ENTRY: u8 = 4;
const TAG_COMMIT: u8 = 5;

/// Frame header: 4-byte length + 4-byte CRC.
const FRAME_HEADER_LEN: usize = 8;

/// Largest legal payload — a `PageImage` record. Anything claiming more is
/// garbage, rejected before allocation.
const MAX_FRAME_PAYLOAD: usize = 1 + 1 + 8 + PAGE_SIZE;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32/IEEE over `bytes` (the polynomial used by zip, PNG and ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// One WAL record. See the module docs for the on-disk layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Segment header: the first frame of every log file. `base_epoch` is
    /// the epoch already durable in the page files when the segment started.
    Seg {
        /// Epoch the page files held when this segment was started.
        base_epoch: u64,
    },
    /// Opens a transaction committing `epoch`.
    Begin {
        /// The epoch this transaction commits.
        epoch: u64,
    },
    /// Full after-image of one page of one party's pager file.
    PageImage {
        /// Whose pager file the page belongs to.
        party: Party,
        /// The page being replaced.
        page_id: PageId,
        /// The complete new content (boxed: a bare [`Page`] would bloat
        /// every variant to 4 KiB).
        image: Box<Page>,
    },
    /// Appends `page_id` at position `index` of the SP heap file's page
    /// list. Redundant with the chain-page images, logged as a cheap
    /// cross-check replay verifies.
    HeapDirEntry {
        /// Position in the heap page list.
        index: u64,
        /// The heap page appended there.
        page_id: PageId,
    },
    /// Closes a transaction: the shard metadata a checkpoint would publish
    /// for it — including the TE digest replay verifies against.
    Commit {
        /// The committed shard metadata.
        meta: ShardMeta,
    },
}

fn encode_payload(record: &WalRecord) -> Vec<u8> {
    match record {
        WalRecord::Seg { base_epoch } => {
            let mut out = Vec::with_capacity(9);
            out.push(TAG_SEG);
            out.extend_from_slice(&base_epoch.to_le_bytes());
            out
        }
        WalRecord::Begin { epoch } => {
            let mut out = Vec::with_capacity(9);
            out.push(TAG_BEGIN);
            out.extend_from_slice(&epoch.to_le_bytes());
            out
        }
        WalRecord::PageImage {
            party,
            page_id,
            image,
        } => {
            let mut out = Vec::with_capacity(MAX_FRAME_PAYLOAD);
            out.push(TAG_PAGE_IMAGE);
            out.push(party.code());
            out.extend_from_slice(&page_id.0.to_le_bytes());
            out.extend_from_slice(image.as_slice());
            out
        }
        WalRecord::HeapDirEntry { index, page_id } => {
            let mut out = Vec::with_capacity(17);
            out.push(TAG_HEAP_DIR_ENTRY);
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&page_id.0.to_le_bytes());
            out
        }
        WalRecord::Commit { meta } => {
            let mut out = Vec::with_capacity(1 + SHARD_META_LEN);
            out.push(TAG_COMMIT);
            out.extend_from_slice(&meta.to_bytes());
            out
        }
    }
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Decodes one frame payload. `None` means the payload is not a valid
/// record (unknown tag or wrong body length) — scans treat that exactly
/// like a CRC failure and stop.
fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let (&tag, body) = payload.split_first()?;
    match tag {
        TAG_SEG if body.len() == 8 => Some(WalRecord::Seg {
            base_epoch: read_u64(body, 0),
        }),
        TAG_BEGIN if body.len() == 8 => Some(WalRecord::Begin {
            epoch: read_u64(body, 0),
        }),
        TAG_PAGE_IMAGE if body.len() == 1 + 8 + PAGE_SIZE => {
            let party = Party::from_code(body[0])?;
            let page_id = PageId(read_u64(body, 1));
            let image = Box::new(Page::from_bytes(&body[9..])?);
            Some(WalRecord::PageImage {
                party,
                page_id,
                image,
            })
        }
        TAG_HEAP_DIR_ENTRY if body.len() == 16 => Some(WalRecord::HeapDirEntry {
            index: read_u64(body, 0),
            page_id: PageId(read_u64(body, 8)),
        }),
        TAG_COMMIT if body.len() == SHARD_META_LEN => Some(WalRecord::Commit {
            meta: ShardMeta::from_bytes(body).ok()?,
        }),
        _ => None,
    }
}

/// Encodes `record` into one complete frame (header + CRC + payload).
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Encodes `records` as one contiguous run of frames — the byte layout a
/// [`scan_log`] of the result decodes back. Used by the replication layer
/// to synthesize snapshot and WAL-tail streams in the exact on-disk format.
pub fn encode_records(records: &[WalRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for record in records {
        out.extend_from_slice(&encode_frame(record));
    }
    out
}

/// Decodes the frame at the front of `bytes`, returning the record and the
/// frame's total length. `None` for anything invalid: a short header, a
/// zero or oversized length, a truncated payload, a CRC mismatch, or an
/// undecodable record.
pub fn decode_frame(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    if bytes.len() < FRAME_HEADER_LEN {
        return None;
    }
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[0..4]);
    let len = u32::from_le_bytes(buf) as usize;
    if len == 0 || len > MAX_FRAME_PAYLOAD || bytes.len() < FRAME_HEADER_LEN + len {
        return None;
    }
    buf.copy_from_slice(&bytes[4..8]);
    let crc = u32::from_le_bytes(buf);
    let payload = &bytes[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
    if crc32(payload) != crc {
        return None;
    }
    Some((decode_payload(payload)?, FRAME_HEADER_LEN + len))
}

/// The segment header a scan recovered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalSegment {
    /// Epoch already durable in the page files when the segment started.
    pub base_epoch: u64,
}

/// One fully committed transaction recovered from the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalTx {
    /// The epoch the transaction commits.
    pub epoch: u64,
    /// Page after-images, in append order.
    pub pages: Vec<(Party, PageId, Page)>,
    /// Heap page-list appends, in append order.
    pub heap_entries: Vec<(u64, PageId)>,
    /// The shard metadata published by the transaction's `Commit`.
    pub meta: ShardMeta,
}

/// Scans a log image and returns the segment header plus every fully
/// committed transaction, in log order.
///
/// The scan is total and torn-tail tolerant by construction:
///
/// * it stops at the first invalid frame (short, oversized, CRC-failed or
///   undecodable) and ignores everything after it;
/// * a trailing `Begin` without its `Commit` is dropped;
/// * a record out of place (a `Commit` matching no `Begin`, an epoch lower
///   than an already-committed one, a `Commit` whose metadata disagrees
///   with its `Begin`'s epoch) ends the scan at the last good transaction;
/// * a file that does not open with a valid `Seg` frame yields
///   `(None, [])` — no evidence at all.
///
/// It never panics and never returns a partially-valid transaction, so the
/// result is always the longest valid committed prefix of the log.
pub fn scan_log(bytes: &[u8]) -> (Option<WalSegment>, Vec<WalTx>) {
    let mut at = 0usize;
    let mut next = || -> Option<WalRecord> {
        let (record, consumed) = decode_frame(&bytes[at..])?;
        at += consumed;
        Some(record)
    };
    let seg = match next() {
        Some(WalRecord::Seg { base_epoch }) => WalSegment { base_epoch },
        _ => return (None, Vec::new()),
    };
    let mut txs: Vec<WalTx> = Vec::new();
    let mut last_epoch = seg.base_epoch;
    'txs: loop {
        let epoch = match next() {
            Some(WalRecord::Begin { epoch }) if epoch >= last_epoch => epoch,
            _ => break,
        };
        let mut pages = Vec::new();
        let mut heap_entries = Vec::new();
        loop {
            match next() {
                Some(WalRecord::PageImage {
                    party,
                    page_id,
                    image,
                }) => pages.push((party, page_id, *image)),
                Some(WalRecord::HeapDirEntry { index, page_id }) => {
                    heap_entries.push((index, page_id));
                }
                Some(WalRecord::Commit { meta }) if meta.epoch == epoch => {
                    txs.push(WalTx {
                        epoch,
                        pages,
                        heap_entries,
                        meta,
                    });
                    last_epoch = epoch;
                    continue 'txs;
                }
                // Torn or out-of-place record: the transaction never fully
                // committed — drop it and stop.
                _ => break 'txs,
            }
        }
    }
    (Some(seg), txs)
}

struct WalInner {
    file: File,
    bytes: u64,
    /// First append error, if any. A torn in-memory append leaves the file
    /// tail in an unknown state; later appends could frame valid-looking
    /// transactions after garbage, so the writer refuses everything until
    /// the next rotation gives it a known-good file again.
    poisoned: Option<String>,
}

/// Append-side handle on one shard's WAL file.
///
/// The writer shares the shard's SP [`IoStats`] so log fsyncs appear in the
/// same per-party accounting the benchmarks gate on: [`WalWriter::sync`]
/// records both a plain sync and a WAL sync, and every append records its
/// byte count.
pub struct WalWriter {
    path: PathBuf,
    wal: Mutex<WalInner>,
    stats: Arc<IoStats>,
    sync_delay_micros: AtomicU64,
}

impl WalWriter {
    /// Creates (or atomically replaces) the log at `path` as a fresh
    /// segment whose page files are durable at `base_epoch`.
    pub fn create<P: AsRef<Path>>(
        path: P,
        base_epoch: u64,
        stats: Arc<IoStats>,
    ) -> StorageResult<WalWriter> {
        let path = path.as_ref().to_path_buf();
        atomic_replace(&path, &encode_frame(&WalRecord::Seg { base_epoch }))?;
        let file = OpenOptions::new().append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        Ok(WalWriter {
            path,
            wal: Mutex::new(WalInner {
                file,
                bytes,
                poisoned: None,
            }),
            stats,
            sync_delay_micros: AtomicU64::new(0),
        })
    }

    /// Simulated barrier latency: [`WalWriter::sync`] sleeps this long
    /// after the real fsync, mirroring `FilePager::set_sync_delay_micros`.
    pub fn set_sync_delay_micros(&self, micros: u64) {
        self.sync_delay_micros.store(micros, Ordering::Relaxed);
    }

    /// Bytes currently in the log file (segment header included); the
    /// checkpoint-threshold input.
    pub fn log_bytes(&self) -> u64 {
        self.wal.lock().bytes
    }

    /// Appends `records` as one contiguous run of frames, unsynced. A
    /// mid-write failure poisons the writer (later appends could frame
    /// valid-looking transactions after garbage); only
    /// [`WalWriter::rotate`] clears the poisoning.
    pub fn append(&self, records: &[WalRecord]) -> StorageResult<()> {
        let mut buf = Vec::new();
        for record in records {
            buf.extend_from_slice(&encode_frame(record));
        }
        let mut inner = self.wal.lock();
        if let Some(msg) = &inner.poisoned {
            return Err(StorageError::Io(std::io::Error::other(format!(
                "WAL writer poisoned by an earlier append failure: {msg}"
            ))));
        }
        if let Err(e) = inner.file.write_all(&buf) {
            inner.poisoned = Some(e.to_string());
            return Err(StorageError::Io(e));
        }
        inner.bytes += buf.len() as u64;
        self.stats.record_wal_append(buf.len() as u64);
        Ok(())
    }

    /// Fsyncs the log — the acknowledgement barrier of every durable
    /// commit. Counts as both a plain sync and a WAL sync in the shared
    /// [`IoStats`].
    pub fn sync(&self) -> StorageResult<()> {
        {
            let inner = self.wal.lock();
            if let Some(msg) = &inner.poisoned {
                return Err(StorageError::Io(std::io::Error::other(format!(
                    "WAL writer poisoned by an earlier append failure: {msg}"
                ))));
            }
            inner.file.sync_data()?;
        }
        let delay = self.sync_delay_micros.load(Ordering::Relaxed);
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_micros(delay));
        }
        self.stats.record_sync();
        self.stats.record_wal_sync();
        Ok(())
    }

    /// Reads the current segment file back as one byte image, serialized
    /// against concurrent appends and rotations (both hold the same lock),
    /// so the image is always a frame-aligned prefix of some segment —
    /// exactly what a replica's `scan_log` expects. Refuses a poisoned
    /// writer: the file tail is in an unknown state and must not be shipped.
    pub fn segment_image(&self) -> StorageResult<Vec<u8>> {
        let inner = self.wal.lock();
        if let Some(msg) = &inner.poisoned {
            return Err(StorageError::Io(std::io::Error::other(format!(
                "WAL writer poisoned by an earlier append failure: {msg}"
            ))));
        }
        Ok(std::fs::read(&self.path)?)
    }

    /// Truncates the log to a fresh segment at `base_epoch` — called by a
    /// checkpoint *after* the manifest save, so everything dropped is
    /// already durable elsewhere. Atomic: a crash mid-rotation leaves
    /// either the old log or the new one-frame segment. Clears any append
    /// poisoning (the replaced file is known-good again).
    pub fn rotate(&self, base_epoch: u64) -> StorageResult<()> {
        let mut inner = self.wal.lock();
        atomic_replace(&self.path, &encode_frame(&WalRecord::Seg { base_epoch }))?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        inner.bytes = file.metadata()?.len();
        inner.file = file;
        inner.poisoned = None;
        Ok(())
    }
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("bytes", &self.log_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::TreeMeta;

    fn meta(epoch: u64) -> ShardMeta {
        let tree = TreeMeta {
            root: PageId(3),
            height: 2,
            len: 40,
            node_count: 5,
        };
        ShardMeta {
            upper: 1000,
            epoch,
            sp_index: tree,
            heap_record_count: 40,
            heap_page_count: 5,
            heap_dir_head: PageId(1),
            te_tree: tree,
            te_digest: [7u8; crate::manifest::TE_DIGEST_LEN],
        }
    }

    fn tx_frames(epoch: u64) -> Vec<u8> {
        let mut image = Page::new();
        image.write_u64(0, epoch);
        let records = [
            WalRecord::Begin { epoch },
            WalRecord::PageImage {
                party: Party::Sp,
                page_id: PageId(9),
                image: Box::new(image),
            },
            WalRecord::HeapDirEntry {
                index: 4,
                page_id: PageId(77),
            },
            WalRecord::Commit { meta: meta(epoch) },
        ];
        records.iter().flat_map(encode_frame).collect()
    }

    #[test]
    fn crc32_matches_known_answers() {
        // CRC-32/IEEE check values: the classic "123456789" vector and the
        // empty string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_every_record_kind() {
        let mut image = Page::new();
        image.write_bytes(100, b"payload");
        let records = [
            WalRecord::Seg { base_epoch: 12 },
            WalRecord::Begin { epoch: 13 },
            WalRecord::PageImage {
                party: Party::Te,
                page_id: PageId(42),
                image: Box::new(image),
            },
            WalRecord::HeapDirEntry {
                index: 3,
                page_id: PageId(55),
            },
            WalRecord::Commit { meta: meta(13) },
        ];
        for record in &records {
            let frame = encode_frame(record);
            let (decoded, consumed) = decode_frame(&frame).unwrap();
            assert_eq!(&decoded, record);
            assert_eq!(consumed, frame.len());
            // Frames decode mid-stream too (trailing bytes ignored).
            let mut padded = frame.clone();
            padded.extend_from_slice(b"trailing");
            assert_eq!(decode_frame(&padded).unwrap().1, frame.len());
        }
    }

    #[test]
    fn scan_recovers_committed_transactions_in_order() {
        let mut log = encode_frame(&WalRecord::Seg { base_epoch: 4 });
        log.extend(tx_frames(5));
        log.extend(tx_frames(6));
        let (seg, txs) = scan_log(&log);
        assert_eq!(seg, Some(WalSegment { base_epoch: 4 }));
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[0].epoch, 5);
        assert_eq!(txs[1].epoch, 6);
        assert_eq!(txs[0].pages.len(), 1);
        assert_eq!(txs[0].heap_entries, vec![(4, PageId(77))]);
        assert_eq!(txs[1].meta, meta(6));
        // Duplicate epochs (a failed-then-retried commit) are both kept.
        log.extend(tx_frames(6));
        assert_eq!(scan_log(&log).1.len(), 3);
    }

    #[test]
    fn scan_drops_torn_tails_at_every_truncation_point() {
        let mut log = encode_frame(&WalRecord::Seg { base_epoch: 0 });
        log.extend(tx_frames(1));
        let committed_len = log.len();
        log.extend(tx_frames(2));
        // Any truncation strictly inside the second transaction yields
        // exactly the first.
        for cut in committed_len..log.len() {
            let (seg, txs) = scan_log(&log[..cut]);
            assert_eq!(seg, Some(WalSegment { base_epoch: 0 }));
            assert_eq!(txs.len(), 1, "cut at {cut}");
            assert_eq!(txs[0].epoch, 1);
        }
        // A file cut inside the segment header has no evidence at all.
        assert_eq!(scan_log(&log[..4]), (None, Vec::new()));
        assert_eq!(scan_log(&[]), (None, Vec::new()));
    }

    #[test]
    fn scan_stops_at_corruption_and_epoch_regressions() {
        let mut log = encode_frame(&WalRecord::Seg { base_epoch: 0 });
        log.extend(tx_frames(1));
        let good = scan_log(&log).1.len();
        assert_eq!(good, 1);

        // A flipped byte in the second transaction's frames kills exactly
        // that transaction.
        let mut flipped = log.clone();
        flipped.extend(tx_frames(2));
        let offset = log.len() + 20;
        flipped[offset] ^= 0x40;
        let (seg, txs) = scan_log(&flipped);
        assert_eq!(seg, Some(WalSegment { base_epoch: 0 }));
        assert_eq!(txs.len(), 1);

        // An epoch regression is out of place: scan keeps the prefix.
        let mut regressed = log.clone();
        regressed.extend(tx_frames(0));
        assert_eq!(scan_log(&regressed).1.len(), 1);

        // A Begin whose Commit carries a different epoch never commits.
        let mut mismatched = log.clone();
        mismatched.extend(encode_frame(&WalRecord::Begin { epoch: 2 }));
        mismatched.extend(encode_frame(&WalRecord::Commit { meta: meta(3) }));
        assert_eq!(scan_log(&mismatched).1.len(), 1);
    }

    #[test]
    fn writer_appends_syncs_and_rotates() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join(wal_file_name(0));
        let stats = IoStats::new_shared();
        let wal = WalWriter::create(&path, 3, Arc::clone(&stats)).unwrap();
        let seg_len = wal.log_bytes();
        assert!(seg_len > 0);

        wal.append(&[
            WalRecord::Begin { epoch: 4 },
            WalRecord::Commit { meta: meta(4) },
        ])
        .unwrap();
        wal.sync().unwrap();
        assert!(wal.log_bytes() > seg_len);

        let snap = stats.snapshot();
        assert_eq!(snap.wal_appends, 1);
        assert_eq!(snap.wal_syncs, 1);
        assert_eq!(snap.syncs, 1);
        assert!(snap.wal_bytes > 0);

        let bytes = std::fs::read(&path).unwrap();
        let (seg, txs) = scan_log(&bytes);
        assert_eq!(seg, Some(WalSegment { base_epoch: 3 }));
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].epoch, 4);

        // Rotation truncates to a fresh segment.
        wal.rotate(4).unwrap();
        assert_eq!(wal.log_bytes(), seg_len);
        let bytes = std::fs::read(&path).unwrap();
        let (seg, txs) = scan_log(&bytes);
        assert_eq!(seg, Some(WalSegment { base_epoch: 4 }));
        assert!(txs.is_empty());

        // And appends keep working after a rotation.
        wal.append(&[
            WalRecord::Begin { epoch: 5 },
            WalRecord::Commit { meta: meta(5) },
        ])
        .unwrap();
        wal.sync().unwrap();
        let (_, txs) = scan_log(&std::fs::read(&path).unwrap());
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].epoch, 5);
    }

    #[test]
    fn encode_records_concatenates_scannable_frames() {
        let records = vec![
            WalRecord::Seg { base_epoch: 7 },
            WalRecord::Begin { epoch: 8 },
            WalRecord::Commit { meta: meta(8) },
        ];
        let bytes = encode_records(&records);
        let (seg, txs) = scan_log(&bytes);
        assert_eq!(seg, Some(WalSegment { base_epoch: 7 }));
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].epoch, 8);
    }

    #[test]
    fn segment_image_reflects_appends_and_rotation() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join(wal_file_name(2));
        let wal = WalWriter::create(&path, 1, IoStats::new_shared()).unwrap();
        wal.append(&[
            WalRecord::Begin { epoch: 2 },
            WalRecord::Commit { meta: meta(2) },
        ])
        .unwrap();
        let image = wal.segment_image().unwrap();
        let (seg, txs) = scan_log(&image);
        assert_eq!(seg, Some(WalSegment { base_epoch: 1 }));
        assert_eq!(txs.len(), 1);
        wal.rotate(2).unwrap();
        let (seg, txs) = scan_log(&wal.segment_image().unwrap());
        assert_eq!(seg, Some(WalSegment { base_epoch: 2 }));
        assert!(txs.is_empty());
    }

    #[test]
    fn create_replaces_an_existing_log() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join(wal_file_name(1));
        std::fs::write(&path, b"old torn garbage").unwrap();
        let stats = IoStats::new_shared();
        let wal = WalWriter::create(&path, 9, stats).unwrap();
        drop(wal);
        let (seg, txs) = scan_log(&std::fs::read(&path).unwrap());
        assert_eq!(seg, Some(WalSegment { base_epoch: 9 }));
        assert!(txs.is_empty());
    }
}
