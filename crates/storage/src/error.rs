//! Error types for the storage engine.

use std::fmt;
use std::io;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors surfaced by pagers, buffer pools and heap files.
#[derive(Debug)]
pub enum StorageError {
    /// A page id outside the allocated range was requested.
    PageOutOfBounds {
        /// The requested page.
        page_id: u64,
        /// Number of pages currently allocated.
        page_count: u64,
    },
    /// A record id outside the heap file was requested.
    RecordOutOfBounds {
        /// The requested record index.
        record_id: u64,
        /// Number of records currently stored.
        record_count: u64,
    },
    /// A record did not have the fixed length the heap file was created with.
    RecordSizeMismatch {
        /// The expected fixed record length.
        expected: usize,
        /// The length of the record that was supplied.
        actual: usize,
    },
    /// The fixed record length is invalid (zero or larger than a page).
    InvalidRecordLength(usize),
    /// An on-disk structure failed validation (corrupt page, bad magic, ...).
    Corrupted(String),
    /// A record with this id already exists and overwriting it would leave a
    /// stale copy indexed elsewhere.
    DuplicateRecordId(u64),
    /// A record key falls outside the key domain a partitioned deployment
    /// was built over; accepting it would store the record where no range
    /// query could ever reach it.
    KeyOutOfDomain {
        /// The offending key.
        key: u32,
        /// The inclusive domain bound of the deployment.
        domain: u32,
    },
    /// Two parties that must stay in lockstep (e.g. the SAE service provider
    /// and trusted entity) disagreed about an update. The message names the
    /// parties and the operation; any rollback already performed is described
    /// there too.
    Desync(String),
    /// A pager file's committed epoch is ahead of the deployment manifest:
    /// the pages of a later commit were synced but the manifest describing
    /// them never made it to disk. Reopening from the stale manifest would
    /// serve roots that no longer match the page contents, so the deployment
    /// refuses to open instead of silently recovering to a torn state.
    StaleManifest {
        /// Shard whose pager file is ahead of the manifest.
        shard: u32,
        /// Commit epoch recorded in the manifest.
        manifest_epoch: u64,
        /// Commit epoch found in the pager file's header.
        file_epoch: u64,
    },
    /// A replica asked for the WAL tail from an epoch the primary's current
    /// segment no longer covers (a checkpoint rotated it away). The replica
    /// must fall back to a full snapshot.
    TailUnavailable {
        /// First epoch the primary's current segment can replay from.
        base_epoch: u64,
        /// Epoch the replica asked to stream from.
        from_epoch: u64,
    },
    /// Replication export was requested from a deployment that has no
    /// durable state to export (e.g. a purely in-memory engine).
    ReplicationUnsupported,
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfBounds {
                page_id,
                page_count,
            } => write!(
                f,
                "page {page_id} out of bounds (only {page_count} pages allocated)"
            ),
            StorageError::RecordOutOfBounds {
                record_id,
                record_count,
            } => write!(
                f,
                "record {record_id} out of bounds (only {record_count} records stored)"
            ),
            StorageError::RecordSizeMismatch { expected, actual } => write!(
                f,
                "record size mismatch: expected {expected} bytes, got {actual}"
            ),
            StorageError::InvalidRecordLength(len) => {
                write!(f, "invalid fixed record length: {len}")
            }
            StorageError::Corrupted(msg) => write!(f, "corrupted storage: {msg}"),
            StorageError::DuplicateRecordId(id) => {
                write!(f, "record id {id} already exists")
            }
            StorageError::KeyOutOfDomain { key, domain } => {
                write!(f, "key {key} outside the deployment's domain [0, {domain}]")
            }
            StorageError::Desync(msg) => write!(f, "parties desynchronized: {msg}"),
            StorageError::StaleManifest {
                shard,
                manifest_epoch,
                file_epoch,
            } => write!(
                f,
                "stale manifest: shard {shard}'s pager file is at commit epoch {file_epoch} \
                 but the manifest records epoch {manifest_epoch}"
            ),
            StorageError::TailUnavailable {
                base_epoch,
                from_epoch,
            } => write!(
                f,
                "WAL tail unavailable from epoch {from_epoch}: the current segment starts at \
                 epoch {base_epoch}; a full snapshot is required"
            ),
            StorageError::ReplicationUnsupported => {
                write!(f, "replication export requires a durable deployment")
            }
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::PageOutOfBounds {
            page_id: 12,
            page_count: 3,
        };
        assert!(e.to_string().contains("page 12"));
        let e = StorageError::RecordSizeMismatch {
            expected: 500,
            actual: 100,
        };
        assert!(e.to_string().contains("500"));
        let e = StorageError::Corrupted("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = StorageError::DuplicateRecordId(42);
        assert!(e.to_string().contains("42"));
        let e = StorageError::Desync("SP removed id 7 but TE did not".into());
        assert!(e.to_string().contains("desynchronized"));
        assert!(e.to_string().contains("id 7"));
        let e = StorageError::StaleManifest {
            shard: 3,
            manifest_epoch: 4,
            file_epoch: 5,
        };
        assert!(e.to_string().contains("stale manifest"));
        assert!(e.to_string().contains("shard 3"));
        assert!(e.to_string().contains("epoch 5"));
        let e = StorageError::TailUnavailable {
            base_epoch: 9,
            from_epoch: 6,
        };
        assert!(e.to_string().contains("epoch 6"));
        assert!(e.to_string().contains("epoch 9"));
        assert!(e.to_string().contains("snapshot"));
        let e = StorageError::ReplicationUnsupported;
        assert!(e.to_string().contains("durable"));
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "missing");
        let e: StorageError = io_err.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
