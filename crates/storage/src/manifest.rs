//! The durable-deployment manifest and the on-disk commit protocol.
//!
//! A durable SAE deployment is a directory of per-shard pager files
//! (`sp-<i>.pages` / `te-<i>.pages`) plus one `MANIFEST` file. The manifest
//! is a single versioned, checksummed header page recording, for every
//! shard: the layout bound, the commit epoch, both parties' tree roots and
//! shapes, the heap-file geometry, and the trusted entity's published total
//! digest. Recovery reopens the trees *from these roots* instead of
//! rebuilding them from the dataset.
//!
//! Three pieces live here:
//!
//! * [`Manifest`] / [`ShardMeta`] / [`TreeMeta`] — the manifest page itself,
//!   with [`Manifest::save`] writing it atomically through
//!   [`crate::atomic_replace::atomic_replace`] so a crash never leaves a
//!   half-written manifest in place, and [`Manifest::load`] rejecting torn
//!   or garbage files with a typed [`StorageError::Corrupted`].
//!   [`ShardMeta::to_bytes`] / [`ShardMeta::from_bytes`] expose the
//!   per-shard encoding on its own: the WAL's `Commit` record carries it,
//!   so replay adopts exactly what a checkpoint would have published.
//! * [`ShardHeader`] — page 0 of every pager file: a versioned identity
//!   header (shard index, party, commit epoch). Commit order is *log before
//!   pages*: every commit is appended to the shard's WAL and fsynced first;
//!   a checkpoint later flushes pages, bumps + syncs the header epoch, and
//!   rewrites the manifest. On open, [`ShardHeader::validate`] enforces
//!   exact epoch agreement (used when no WAL evidence exists) — file ahead
//!   of manifest is [`StorageError::StaleManifest`], file behind is
//!   corruption — while [`ShardHeader::validate_identity`] checks only the
//!   identity so WAL replay can resolve the epoch itself. Either way an
//!   identity mismatch (a shard file swapped for another shard's or the
//!   other party's) is rejected before any tree page is touched.
//! * [`PageDirectory`] — a rewritable chain of pages persisting an ordered
//!   `PageId` list (the heap file's page table) inside a pager file.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::pager::PageStore;
use std::path::Path;

/// Current manifest / shard-header format version.
///
/// Version 2 added the global `checkpoint_seq` counter (the number of
/// checkpoints the deployment has taken), recorded so operators can relate
/// a manifest to the WAL segments that were truncated beneath it. Version 1
/// — the pre-WAL format, identical but for a 24-byte fixed header with no
/// `checkpoint_seq` — is still read (decoding defaults the counter to 0),
/// so a pre-WAL directory opens through the no-log recovery fallback; the
/// first checkpoint then rewrites manifest and headers at version 2.
pub const MANIFEST_VERSION: u32 = 2;

/// The pre-WAL format version, still accepted on read.
const MANIFEST_V1: u32 = 1;

/// Magic bytes opening the manifest page.
const MANIFEST_MAGIC: &[u8; 8] = b"SAEMANIF";

/// Magic bytes opening every pager file's shard header page.
const HEADER_MAGIC: &[u8; 8] = b"SAESHARD";

/// Magic `u32` opening every page-directory chain page.
const PAGE_DIR_MAGIC: u32 = 0x5044_4952; // "PDIR"

/// Byte length of the trusted entity's published digest.
pub const TE_DIGEST_LEN: usize = 20;

/// The page every pager file reserves for its [`ShardHeader`].
pub const SHARD_HEADER_PAGE: PageId = PageId(0);

const MANIFEST_FIXED_LEN: usize = 32;

/// Fixed-header length of a version-1 manifest (no `checkpoint_seq`).
const MANIFEST_V1_FIXED_LEN: usize = 24;

/// Exact byte length of one encoded [`ShardMeta`] (see
/// [`ShardMeta::to_bytes`]); also the per-shard stride inside the manifest
/// page.
pub const SHARD_META_LEN: usize = 112;

const CHECKSUM_OFFSET: usize = PAGE_SIZE - 8;

/// Maximum shard count a single manifest page can describe.
pub const MAX_MANIFEST_SHARDS: usize = (CHECKSUM_OFFSET - MANIFEST_FIXED_LEN) / SHARD_META_LEN;

/// FNV-1a over `bytes`; cheap torn-write detection for header pages.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Root and shape of one persisted tree, enough to reopen it without
/// traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeMeta {
    /// The root page.
    pub root: PageId,
    /// Number of levels (1 = the root is a leaf).
    pub height: u32,
    /// Number of entries stored.
    pub len: u64,
    /// Number of nodes (pages).
    pub node_count: u64,
}

/// Everything the manifest records about one shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMeta {
    /// Inclusive upper key bound of the shard's range.
    pub upper: u32,
    /// Commit epoch; must equal both pager files' header epochs.
    pub epoch: u64,
    /// The SP's B⁺-Tree.
    pub sp_index: TreeMeta,
    /// Records stored in the SP's heap file (tombstones included).
    pub heap_record_count: u64,
    /// Pages the heap file occupies.
    pub heap_page_count: u64,
    /// Head of the [`PageDirectory`] chain persisting the heap's page list.
    pub heap_dir_head: PageId,
    /// The TE's XB-Tree.
    pub te_tree: TreeMeta,
    /// The TE's published digest (XOR over every stored tuple digest) at
    /// commit time; recomputed and checked on open.
    pub te_digest: [u8; TE_DIGEST_LEN],
}

/// The deployment manifest: one checksummed page describing every shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Fixed record length of the outsourced relation, in bytes.
    pub record_size: u32,
    /// Inclusive key-domain bound of the published layout.
    pub domain: u32,
    /// Number of checkpoints the deployment has taken (monotonic). Each
    /// checkpoint flushes cached pages, saves the manifest, and truncates
    /// the per-shard WAL segments the manifest now supersedes.
    pub checkpoint_seq: u64,
    /// Per-shard metadata, in ascending shard order.
    pub shards: Vec<ShardMeta>,
}

fn write_tree_meta(page: &mut Page, at: usize, meta: &TreeMeta) -> usize {
    page.write_page_id(at, meta.root);
    page.write_u32(at + 8, meta.height);
    page.write_u64(at + 12, meta.len);
    page.write_u64(at + 20, meta.node_count);
    at + 28
}

fn read_tree_meta(page: &Page, at: usize) -> (TreeMeta, usize) {
    (
        TreeMeta {
            root: page.read_page_id(at),
            height: page.read_u32(at + 8),
            len: page.read_u64(at + 12),
            node_count: page.read_u64(at + 20),
        },
        at + 28,
    )
}

fn write_shard_meta(page: &mut Page, at: usize, shard: &ShardMeta) {
    page.write_u32(at, shard.upper);
    page.write_u64(at + 4, shard.epoch);
    let mut inner = write_tree_meta(page, at + 12, &shard.sp_index);
    page.write_u64(inner, shard.heap_record_count);
    page.write_u64(inner + 8, shard.heap_page_count);
    page.write_page_id(inner + 16, shard.heap_dir_head);
    inner = write_tree_meta(page, inner + 24, &shard.te_tree);
    page.write_bytes(inner, &shard.te_digest);
}

fn read_shard_meta(page: &Page, at: usize) -> ShardMeta {
    let upper = page.read_u32(at);
    let epoch = page.read_u64(at + 4);
    let (sp_index, mut inner) = read_tree_meta(page, at + 12);
    let heap_record_count = page.read_u64(inner);
    let heap_page_count = page.read_u64(inner + 8);
    let heap_dir_head = page.read_page_id(inner + 16);
    let (te_tree, digest_at) = read_tree_meta(page, inner + 24);
    inner = digest_at;
    let mut te_digest = [0u8; TE_DIGEST_LEN];
    te_digest.copy_from_slice(page.read_bytes(inner, TE_DIGEST_LEN));
    ShardMeta {
        upper,
        epoch,
        sp_index,
        heap_record_count,
        heap_page_count,
        heap_dir_head,
        te_tree,
        te_digest,
    }
}

impl ShardMeta {
    /// Serializes the shard metadata into its fixed [`SHARD_META_LEN`]-byte
    /// form — the same layout the manifest page uses, reused verbatim by the
    /// WAL's `Commit` record so replay adopts exactly what a checkpoint
    /// would have published.
    pub fn to_bytes(&self) -> [u8; SHARD_META_LEN] {
        let mut page = Page::new();
        write_shard_meta(&mut page, 0, self);
        let mut out = [0u8; SHARD_META_LEN];
        out.copy_from_slice(&page.as_slice()[..SHARD_META_LEN]);
        out
    }

    /// Deserializes a [`SHARD_META_LEN`]-byte encoding produced by
    /// [`ShardMeta::to_bytes`]. Integrity is the caller's concern: WAL
    /// frames carry a CRC over the whole record, the manifest page a
    /// checksum over the whole page.
    pub fn from_bytes(bytes: &[u8]) -> StorageResult<ShardMeta> {
        if bytes.len() != SHARD_META_LEN {
            return Err(StorageError::Corrupted(format!(
                "shard metadata record is {} bytes, expected {SHARD_META_LEN}",
                bytes.len()
            )));
        }
        let mut page = Page::new();
        page.write_bytes(0, bytes);
        Ok(read_shard_meta(&page, 0))
    }
}

impl Manifest {
    /// Serializes the manifest into a single checksummed page.
    pub fn encode(&self) -> StorageResult<Page> {
        if self.shards.is_empty() || self.shards.len() > MAX_MANIFEST_SHARDS {
            return Err(StorageError::Corrupted(format!(
                "manifest must describe 1..={MAX_MANIFEST_SHARDS} shards, got {}",
                self.shards.len()
            )));
        }
        let mut page = Page::new();
        page.write_bytes(0, MANIFEST_MAGIC);
        page.write_u32(8, MANIFEST_VERSION);
        page.write_u32(12, self.record_size);
        page.write_u32(16, self.domain);
        page.write_u32(20, self.shards.len() as u32);
        page.write_u64(24, self.checkpoint_seq);
        let mut at = MANIFEST_FIXED_LEN;
        for shard in &self.shards {
            write_shard_meta(&mut page, at, shard);
            at += SHARD_META_LEN;
        }
        let checksum = fnv1a(&page.as_slice()[..CHECKSUM_OFFSET]);
        page.write_u64(CHECKSUM_OFFSET, checksum);
        Ok(page)
    }

    /// Deserializes and validates a manifest page. Accepts the current
    /// version and version 1 (the pre-WAL format), whose shorter fixed
    /// header carries no `checkpoint_seq` — it decodes as 0.
    pub fn decode(page: &Page) -> StorageResult<Manifest> {
        if page.read_bytes(0, 8) != MANIFEST_MAGIC {
            return Err(StorageError::Corrupted(
                "manifest magic mismatch: not a SAE deployment manifest".into(),
            ));
        }
        let version = page.read_u32(8);
        if version != MANIFEST_VERSION && version != MANIFEST_V1 {
            return Err(StorageError::Corrupted(format!(
                "unsupported manifest version {version} (supported: \
                 {MANIFEST_V1}..={MANIFEST_VERSION})"
            )));
        }
        let checksum = fnv1a(&page.as_slice()[..CHECKSUM_OFFSET]);
        if checksum != page.read_u64(CHECKSUM_OFFSET) {
            return Err(StorageError::Corrupted(
                "manifest checksum mismatch: the manifest page is torn or tampered".into(),
            ));
        }
        let shard_count = page.read_u32(20) as usize;
        if shard_count == 0 || shard_count > MAX_MANIFEST_SHARDS {
            return Err(StorageError::Corrupted(format!(
                "manifest shard count {shard_count} outside 1..={MAX_MANIFEST_SHARDS}"
            )));
        }
        let (fixed_len, checkpoint_seq) = if version == MANIFEST_V1 {
            (MANIFEST_V1_FIXED_LEN, 0)
        } else {
            (MANIFEST_FIXED_LEN, page.read_u64(24))
        };
        let mut shards = Vec::with_capacity(shard_count);
        let mut at = fixed_len;
        for _ in 0..shard_count {
            shards.push(read_shard_meta(page, at));
            at += SHARD_META_LEN;
        }
        if !shards.windows(2).all(|w| w[0].upper < w[1].upper) {
            return Err(StorageError::Corrupted(
                "manifest shard bounds are not strictly ascending".into(),
            ));
        }
        Ok(Manifest {
            record_size: page.read_u32(12),
            domain: page.read_u32(16),
            checkpoint_seq,
            shards,
        })
    }

    /// Atomically replaces the manifest at `path` via
    /// [`crate::atomic_replace::atomic_replace`], so a crash leaves either
    /// the old or the new manifest — never a torn one.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> StorageResult<()> {
        let page = self.encode()?;
        crate::atomic_replace::atomic_replace(path, page.as_slice())
    }

    /// Loads and validates the manifest at `path`. A missing, short or long
    /// file is reported as corruption (a torn manifest), not a generic I/O
    /// error.
    pub fn load<P: AsRef<Path>>(path: P) -> StorageResult<Manifest> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StorageError::Corrupted(format!(
                    "no deployment manifest at {}",
                    path.as_ref().display()
                ))
            } else {
                StorageError::Io(e)
            }
        })?;
        let page = Page::from_bytes(&bytes).ok_or_else(|| {
            StorageError::Corrupted(format!(
                "torn manifest: {} bytes on disk, expected exactly one {PAGE_SIZE}-byte page",
                bytes.len()
            ))
        })?;
        Manifest::decode(&page)
    }
}

/// Which party a pager file belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Party {
    /// The service provider (heap file + B⁺-Tree).
    Sp,
    /// The trusted entity (XB-Tree).
    Te,
}

impl Party {
    /// The file-name prefix of this party's pager files.
    pub fn prefix(self) -> &'static str {
        match self {
            Party::Sp => "sp",
            Party::Te => "te",
        }
    }

    pub(crate) fn code(self) -> u8 {
        match self {
            Party::Sp => 0,
            Party::Te => 1,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<Party> {
        match code {
            0 => Some(Party::Sp),
            1 => Some(Party::Te),
            _ => None,
        }
    }
}

impl std::fmt::Display for Party {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.prefix())
    }
}

/// The identity + epoch header stored in page 0 of every pager file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardHeader {
    /// Shard index the file belongs to.
    pub shard: u32,
    /// Which party's structures the file holds.
    pub party: Party,
    /// Commit epoch of the last synced commit.
    pub epoch: u64,
}

impl ShardHeader {
    /// Serializes the header into a page.
    pub fn encode(&self) -> Page {
        let mut page = Page::new();
        page.write_bytes(0, HEADER_MAGIC);
        page.write_u32(8, MANIFEST_VERSION);
        page.write_u8(12, self.party.code());
        page.write_u32(16, self.shard);
        page.write_u64(24, self.epoch);
        page.write_u64(32, fnv1a(&page.as_slice()[..32]));
        page
    }

    /// Deserializes and validates a header page. Version 1 (pre-WAL)
    /// headers share this exact layout and are accepted; the next
    /// checkpoint rewrites them at the current version.
    pub fn decode(page: &Page) -> StorageResult<ShardHeader> {
        if page.read_bytes(0, 8) != HEADER_MAGIC {
            return Err(StorageError::Corrupted(
                "pager file header magic mismatch: not a SAE shard pager file".into(),
            ));
        }
        let version = page.read_u32(8);
        if version != MANIFEST_VERSION && version != MANIFEST_V1 {
            return Err(StorageError::Corrupted(format!(
                "unsupported pager header version {version}"
            )));
        }
        if fnv1a(&page.as_slice()[..32]) != page.read_u64(32) {
            return Err(StorageError::Corrupted(
                "pager file header checksum mismatch".into(),
            ));
        }
        let party = Party::from_code(page.read_u8(12)).ok_or_else(|| {
            StorageError::Corrupted(format!("unknown party code {}", page.read_u8(12)))
        })?;
        Ok(ShardHeader {
            shard: page.read_u32(16),
            party,
            epoch: page.read_u64(24),
        })
    }

    /// Reads and validates the header of `store`, checking the file's
    /// identity against the expected `(shard, party)` and its epoch against
    /// the manifest's. A file ahead of the manifest is a stale manifest
    /// (pages synced, manifest not); a file behind it, or one identifying as
    /// a different shard or party (a swapped file), is corruption.
    pub fn validate(
        store: &dyn PageStore,
        shard: u32,
        party: Party,
        manifest_epoch: u64,
    ) -> StorageResult<ShardHeader> {
        if store.page_count() == 0 {
            return Err(StorageError::Corrupted(format!(
                "{party}-{shard} pager file has no header page"
            )));
        }
        let header = ShardHeader::decode(&store.read(SHARD_HEADER_PAGE)?)?;
        if header.shard != shard || header.party != party {
            return Err(StorageError::Corrupted(format!(
                "pager file identity mismatch: expected {party} shard {shard}, file says \
                 {} shard {} — shard files were swapped or renamed",
                header.party, header.shard
            )));
        }
        if header.epoch > manifest_epoch {
            return Err(StorageError::StaleManifest {
                shard,
                manifest_epoch,
                file_epoch: header.epoch,
            });
        }
        if header.epoch < manifest_epoch {
            return Err(StorageError::Corrupted(format!(
                "{party}-{shard} pager file is at epoch {} but the manifest requires epoch \
                 {manifest_epoch}: committed pages are missing",
                header.epoch
            )));
        }
        Ok(header)
    }

    /// Reads the header of `store` and checks only the file's *identity*
    /// against the expected `(shard, party)`, returning the header so the
    /// caller can judge the epoch itself. WAL-based recovery needs this
    /// relaxed form: a file epoch ahead of the manifest is normal there (a
    /// checkpoint ran further than the last manifest save) and is resolved
    /// by replaying the log, not refused up front.
    pub fn validate_identity(
        store: &dyn PageStore,
        shard: u32,
        party: Party,
    ) -> StorageResult<ShardHeader> {
        if store.page_count() == 0 {
            return Err(StorageError::Corrupted(format!(
                "{party}-{shard} pager file has no header page"
            )));
        }
        let header = ShardHeader::decode(&store.read(SHARD_HEADER_PAGE)?)?;
        if header.shard != shard || header.party != party {
            return Err(StorageError::Corrupted(format!(
                "pager file identity mismatch: expected {party} shard {shard}, file says \
                 {} shard {} — shard files were swapped or renamed",
                header.party, header.shard
            )));
        }
        Ok(header)
    }
}

const PAGE_DIR_HEADER_LEN: usize = 16;
const PAGE_DIR_CAPACITY: usize = (PAGE_SIZE - PAGE_DIR_HEADER_LEN) / 8;

/// What one chain page held the last time it was successfully written:
/// its entry chunk and its next pointer. `None` means the on-store content
/// is unknown (a write to it failed midway) and it must be rewritten.
type ChainPageContent = Option<(Vec<PageId>, PageId)>;

/// A rewritable on-store chain of pages persisting an ordered [`PageId`]
/// list (the heap file's page table). The chain grows by one chain page
/// whenever the list outgrows the current capacity, so commits do not leak
/// pages.
///
/// Checkpointing is **incremental**: the directory remembers what every
/// chain page last held and rewrites only the pages whose chunk or next
/// pointer actually changed. A heap file grows by appending, so a typical
/// commit touches exactly one chain page (the tail) instead of rewriting
/// the whole chain.
#[derive(Debug)]
pub struct PageDirectory {
    chain: Vec<PageId>,
    written: Vec<ChainPageContent>,
}

impl PageDirectory {
    /// Allocates a fresh, empty directory on `store` and returns it with its
    /// head page id (what the manifest records).
    pub fn create(store: &dyn PageStore) -> StorageResult<(PageDirectory, PageId)> {
        let head = store.allocate()?;
        let mut dir = PageDirectory {
            chain: vec![head],
            written: vec![None],
        };
        dir.write(store, &[])?;
        Ok((dir, head))
    }

    /// The head page of the chain.
    pub fn head(&self) -> PageId {
        self.chain[0]
    }

    /// Rewrites the chain to hold exactly `entries`, allocating further
    /// chain pages as needed and skipping every chain page whose content is
    /// unchanged since the last successful write.
    pub fn write(&mut self, store: &dyn PageStore, entries: &[PageId]) -> StorageResult<()> {
        let needed = entries.len().div_ceil(PAGE_DIR_CAPACITY).max(1);
        while self.chain.len() < needed {
            self.chain.push(store.allocate()?);
            self.written.push(None);
        }
        for i in 0..needed {
            let lo = (i * PAGE_DIR_CAPACITY).min(entries.len());
            let hi = ((i + 1) * PAGE_DIR_CAPACITY).min(entries.len());
            let chunk = &entries[lo..hi];
            let next = if i + 1 < needed {
                self.chain[i + 1]
            } else {
                PageId::INVALID
            };
            if matches!(&self.written[i], Some((c, n)) if c == chunk && *n == next) {
                continue;
            }
            let mut page = Page::new();
            page.write_u32(0, PAGE_DIR_MAGIC);
            page.write_u32(4, chunk.len() as u32);
            page.write_page_id(8, next);
            for (j, id) in chunk.iter().enumerate() {
                page.write_page_id(PAGE_DIR_HEADER_LEN + j * 8, *id);
            }
            // Invalidate before writing: a failed write leaves the on-store
            // page in an unknown state, so the next commit must retry it.
            self.written[i] = None;
            store.write(self.chain[i], &page)?;
            self.written[i] = Some((chunk.to_vec(), next));
        }
        // Pages past the shrunk chain keep their last-written content on the
        // store (they are unreachable via next pointers), and `written`
        // still describes them — a later regrow compares against exactly
        // what is there.
        Ok(())
    }

    /// Reads the chain starting at `head`, returning the stored entries and
    /// the directory handle for later rewrites. `expected_len` is the entry
    /// count the manifest recorded; a disagreement is corruption.
    pub fn open(
        store: &dyn PageStore,
        head: PageId,
        expected_len: u64,
    ) -> StorageResult<(PageDirectory, Vec<PageId>)> {
        let mut chain = Vec::new();
        let mut written = Vec::new();
        let mut entries = Vec::new();
        let mut current = head;
        while !current.is_invalid() {
            if chain.contains(&current) {
                return Err(StorageError::Corrupted(
                    "page-directory chain contains a cycle".into(),
                ));
            }
            let page = store.read(current)?;
            if page.read_u32(0) != PAGE_DIR_MAGIC {
                return Err(StorageError::Corrupted(format!(
                    "page {current} is not a page-directory chain page"
                )));
            }
            let count = page.read_u32(4) as usize;
            if count > PAGE_DIR_CAPACITY {
                return Err(StorageError::Corrupted(format!(
                    "page-directory chunk claims {count} entries (capacity {PAGE_DIR_CAPACITY})"
                )));
            }
            let mut chunk = Vec::with_capacity(count);
            for j in 0..count {
                chunk.push(page.read_page_id(PAGE_DIR_HEADER_LEN + j * 8));
            }
            let next = page.read_page_id(8);
            entries.extend_from_slice(&chunk);
            written.push(Some((chunk, next)));
            chain.push(current);
            current = next;
        }
        if entries.len() as u64 != expected_len {
            return Err(StorageError::Corrupted(format!(
                "page directory holds {} entries but the manifest recorded {expected_len}",
                entries.len()
            )));
        }
        Ok((PageDirectory { chain, written }, entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn tree(root: u64, len: u64) -> TreeMeta {
        TreeMeta {
            root: PageId(root),
            height: 2,
            len,
            node_count: len / 10 + 1,
        }
    }

    fn sample_manifest(shards: usize) -> Manifest {
        Manifest {
            record_size: 500,
            domain: 100_000,
            checkpoint_seq: 7,
            shards: (0..shards)
                .map(|i| ShardMeta {
                    upper: (i as u32 + 1) * 25_000,
                    epoch: 3 + i as u64,
                    sp_index: tree(7 + i as u64, 1000),
                    heap_record_count: 900,
                    heap_page_count: 113,
                    heap_dir_head: PageId(1),
                    te_tree: tree(40 + i as u64, 1000),
                    te_digest: [i as u8; TE_DIGEST_LEN],
                })
                .collect(),
        }
    }

    #[test]
    fn manifest_round_trips_through_a_page() {
        for shards in [1usize, 4, MAX_MANIFEST_SHARDS] {
            let manifest = sample_manifest(shards);
            let page = manifest.encode().unwrap();
            assert_eq!(Manifest::decode(&page).unwrap(), manifest);
        }
    }

    #[test]
    fn shard_meta_round_trips_through_bytes() {
        let manifest = sample_manifest(3);
        for shard in &manifest.shards {
            let bytes = shard.to_bytes();
            assert_eq!(bytes.len(), SHARD_META_LEN);
            assert_eq!(&ShardMeta::from_bytes(&bytes).unwrap(), shard);
        }
        // A wrong-length slice is corruption, not a panic.
        assert!(matches!(
            ShardMeta::from_bytes(&[0u8; SHARD_META_LEN - 1]),
            Err(StorageError::Corrupted(_))
        ));
    }

    #[test]
    fn identity_only_validation_ignores_the_epoch() {
        let store = MemPager::new();
        let id = store.allocate().unwrap();
        let header = ShardHeader {
            shard: 4,
            party: Party::Sp,
            epoch: 11,
        };
        store.write(id, &header.encode()).unwrap();
        // Any epoch relationship passes; identity mismatches still fail.
        assert_eq!(
            ShardHeader::validate_identity(&store, 4, Party::Sp).unwrap(),
            header
        );
        assert!(ShardHeader::validate_identity(&store, 4, Party::Te).is_err());
        assert!(ShardHeader::validate_identity(&store, 3, Party::Sp).is_err());
    }

    /// Encodes `manifest` in the version-1 (pre-WAL) layout: 24-byte fixed
    /// header, no `checkpoint_seq` — byte-for-byte what v1 code wrote.
    fn encode_v1(manifest: &Manifest) -> Page {
        let mut page = Page::new();
        page.write_bytes(0, MANIFEST_MAGIC);
        page.write_u32(8, MANIFEST_V1);
        page.write_u32(12, manifest.record_size);
        page.write_u32(16, manifest.domain);
        page.write_u32(20, manifest.shards.len() as u32);
        let mut at = MANIFEST_V1_FIXED_LEN;
        for shard in &manifest.shards {
            write_shard_meta(&mut page, at, shard);
            at += SHARD_META_LEN;
        }
        let checksum = fnv1a(&page.as_slice()[..CHECKSUM_OFFSET]);
        page.write_u64(CHECKSUM_OFFSET, checksum);
        page
    }

    #[test]
    fn version_1_manifest_still_decodes() {
        let mut manifest = sample_manifest(3);
        let page = encode_v1(&manifest);
        // A v1 manifest has no checkpoint counter; decode defaults it to 0.
        manifest.checkpoint_seq = 0;
        assert_eq!(Manifest::decode(&page).unwrap(), manifest);

        // And Manifest::load accepts a v1 file on disk.
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("MANIFEST");
        std::fs::write(&path, page.as_slice()).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), manifest);
    }

    #[test]
    fn version_1_shard_header_still_decodes() {
        let header = ShardHeader {
            shard: 2,
            party: Party::Te,
            epoch: 9,
        };
        // Same layout as the current version, only the version field (and
        // therefore the checksum) differs.
        let mut page = header.encode();
        page.write_u32(8, MANIFEST_V1);
        page.write_u64(32, fnv1a(&page.as_slice()[..32]));
        assert_eq!(ShardHeader::decode(&page).unwrap(), header);
    }

    #[test]
    fn manifest_rejects_bad_magic_version_and_checksum() {
        let manifest = sample_manifest(2);
        let mut page = manifest.encode().unwrap();
        page.write_u8(0, b'X');
        assert!(matches!(
            Manifest::decode(&page),
            Err(StorageError::Corrupted(_))
        ));

        let mut page = manifest.encode().unwrap();
        page.write_u32(8, 99);
        assert!(matches!(
            Manifest::decode(&page),
            Err(StorageError::Corrupted(_))
        ));

        // A flipped byte anywhere under the checksum is caught.
        let mut page = manifest.encode().unwrap();
        page.write_u8(100, page.read_u8(100) ^ 0xFF);
        assert!(matches!(
            Manifest::decode(&page),
            Err(StorageError::Corrupted(_))
        ));
    }

    #[test]
    fn manifest_rejects_unordered_bounds_and_bad_shard_counts() {
        let mut manifest = sample_manifest(2);
        manifest.shards[1].upper = manifest.shards[0].upper;
        let page = manifest.encode().unwrap();
        assert!(matches!(
            Manifest::decode(&page),
            Err(StorageError::Corrupted(_))
        ));

        let empty = Manifest {
            record_size: 1,
            domain: 1,
            checkpoint_seq: 0,
            shards: Vec::new(),
        };
        assert!(empty.encode().is_err());
        assert!(sample_manifest(MAX_MANIFEST_SHARDS + 1).encode().is_err());
    }

    #[test]
    fn manifest_save_load_round_trips_and_rejects_torn_files() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("MANIFEST");
        let manifest = sample_manifest(3);
        manifest.save(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), manifest);

        // Saving again replaces atomically.
        let manifest2 = sample_manifest(1);
        manifest2.save(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), manifest2);

        // Torn file (short) and garbage file are typed corruption.
        std::fs::write(&path, vec![1u8; 100]).unwrap();
        assert!(matches!(
            Manifest::load(&path),
            Err(StorageError::Corrupted(_))
        ));
        std::fs::write(&path, vec![0xABu8; PAGE_SIZE]).unwrap();
        assert!(matches!(
            Manifest::load(&path),
            Err(StorageError::Corrupted(_))
        ));
        assert!(matches!(
            Manifest::load(dir.path().join("absent")),
            Err(StorageError::Corrupted(_))
        ));
    }

    #[test]
    fn shard_header_round_trips_and_validates_identity_and_epoch() {
        let store = MemPager::new();
        let id = store.allocate().unwrap();
        assert_eq!(id, SHARD_HEADER_PAGE);
        let header = ShardHeader {
            shard: 2,
            party: Party::Te,
            epoch: 9,
        };
        store.write(id, &header.encode()).unwrap();

        assert_eq!(
            ShardHeader::validate(&store, 2, Party::Te, 9).unwrap(),
            header
        );
        // Identity mismatches (swapped files) are corruption.
        assert!(matches!(
            ShardHeader::validate(&store, 1, Party::Te, 9),
            Err(StorageError::Corrupted(_))
        ));
        assert!(matches!(
            ShardHeader::validate(&store, 2, Party::Sp, 9),
            Err(StorageError::Corrupted(_))
        ));
        // File ahead of the manifest: stale manifest, typed.
        assert!(matches!(
            ShardHeader::validate(&store, 2, Party::Te, 8),
            Err(StorageError::StaleManifest {
                shard: 2,
                manifest_epoch: 8,
                file_epoch: 9,
            })
        ));
        // File behind the manifest: missing committed pages.
        assert!(matches!(
            ShardHeader::validate(&store, 2, Party::Te, 10),
            Err(StorageError::Corrupted(_))
        ));
        // A garbage header page is corruption, not a panic.
        store.write(id, &Page::new()).unwrap();
        assert!(matches!(
            ShardHeader::validate(&store, 2, Party::Te, 9),
            Err(StorageError::Corrupted(_))
        ));
    }

    #[test]
    fn page_directory_round_trips_grows_and_rewrites_in_place() {
        let store = MemPager::new();
        let (mut dir, head) = PageDirectory::create(&store).unwrap();
        let (reopened, entries) = PageDirectory::open(&store, head, 0).unwrap();
        assert!(entries.is_empty());
        assert_eq!(reopened.head(), head);

        // A list spanning multiple chain pages.
        let many: Vec<PageId> = (100..100 + 2 * PAGE_DIR_CAPACITY as u64 + 7)
            .map(PageId)
            .collect();
        dir.write(&store, &many).unwrap();
        let pages_after_big = store.page_count();
        let (_, loaded) = PageDirectory::open(&store, head, many.len() as u64).unwrap();
        assert_eq!(loaded, many);

        // Shrinking and rewriting reuses the chain: no page leak.
        let few: Vec<PageId> = (5..25).map(PageId).collect();
        dir.write(&store, &few).unwrap();
        assert_eq!(store.page_count(), pages_after_big);
        let (_, loaded) = PageDirectory::open(&store, head, few.len() as u64).unwrap();
        assert_eq!(loaded, few);

        // A count disagreement with the manifest is corruption.
        assert!(matches!(
            PageDirectory::open(&store, head, 99),
            Err(StorageError::Corrupted(_))
        ));
    }

    #[test]
    fn page_directory_rewrites_only_dirty_chain_pages() {
        let store = MemPager::new();
        let (mut dir, head) = PageDirectory::create(&store).unwrap();
        // Fill two full chain pages plus a partial third.
        let many: Vec<PageId> = (0..2 * PAGE_DIR_CAPACITY as u64 + 5).map(PageId).collect();
        dir.write(&store, &many).unwrap();

        // Unchanged entries: zero chain-page writes.
        let before = store.stats().snapshot();
        dir.write(&store, &many).unwrap();
        assert_eq!(store.stats().snapshot().delta_since(&before).node_writes, 0);

        // Appending within the tail chunk's capacity touches only the tail.
        let mut grown = many.clone();
        grown.push(PageId(9_000));
        let before = store.stats().snapshot();
        dir.write(&store, &grown).unwrap();
        assert_eq!(store.stats().snapshot().delta_since(&before).node_writes, 1);

        // The incremental writes still round-trip through open.
        let (_, loaded) = PageDirectory::open(&store, head, grown.len() as u64).unwrap();
        assert_eq!(loaded, grown);

        // A reopened directory knows the on-store content: rewriting the
        // same entries is still free.
        let (mut reopened, _) = PageDirectory::open(&store, head, grown.len() as u64).unwrap();
        let before = store.stats().snapshot();
        reopened.write(&store, &grown).unwrap();
        assert_eq!(store.stats().snapshot().delta_since(&before).node_writes, 0);
    }

    #[test]
    fn page_directory_shrink_then_regrow_rewrites_what_changed() {
        let store = MemPager::new();
        let (mut dir, head) = PageDirectory::create(&store).unwrap();
        let two_pages: Vec<PageId> = (0..PAGE_DIR_CAPACITY as u64 + 10).map(PageId).collect();
        dir.write(&store, &two_pages).unwrap();

        // Shrink to one chunk, then regrow with different tail entries: the
        // stale second chain page must be rewritten, not skipped.
        let few: Vec<PageId> = (500..520).map(PageId).collect();
        dir.write(&store, &few).unwrap();
        let regrown: Vec<PageId> = (1_000..1_000 + PAGE_DIR_CAPACITY as u64 + 10)
            .map(PageId)
            .collect();
        dir.write(&store, &regrown).unwrap();
        let (_, loaded) = PageDirectory::open(&store, head, regrown.len() as u64).unwrap();
        assert_eq!(loaded, regrown);
    }
}
