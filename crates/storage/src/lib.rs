//! # sae-storage
//!
//! Disk-page storage engine underlying every index in the SAE reproduction.
//!
//! The paper's evaluation runs all indexes (the SP's B⁺-Tree / MB-Tree and the
//! TE's XB-Tree) as disk-based structures with 4096-byte pages and charges a
//! fixed 10 ms for every node access. This crate provides exactly that
//! substrate:
//!
//! * [`page`] — the fixed-size [`page::Page`] buffer with typed read/write
//!   helpers, and [`page::PageId`].
//! * [`pager`] — the [`pager::PageStore`] abstraction with an in-memory
//!   implementation ([`pager::MemPager`]) and a file-backed implementation
//!   ([`pager::FilePager`]).
//! * [`buffer_pool`] — [`buffer_pool::CachedPager`], an LRU page cache that
//!   wraps any `PageStore`.
//! * [`stats`] — [`stats::IoStats`] counters and the [`stats::CostModel`]
//!   implementing the paper's "10 ms per node access" charging scheme.
//! * [`heap_file`] — [`heap_file::HeapFile`], the fixed-size-record dataset
//!   file the SP scans to return actual result records.
//! * [`manifest`] — the durable-deployment layer: the versioned, checksummed
//!   [`manifest::Manifest`] header page, per-pager-file
//!   [`manifest::ShardHeader`] identity/epoch pages, and the
//!   [`manifest::PageDirectory`] chains persisting heap page tables.
//! * [`wal`] — the per-shard write-ahead log: CRC-framed sequential records
//!   appended and fsynced *before* any page write, with torn-tail-tolerant
//!   scans ([`wal::scan_log`]) and checkpoint-time segment rotation.
//! * [`mod@atomic_replace`] — the shared temp+write+fsync+rename idiom
//!   behind both the manifest save and WAL rotation.
//!
//! The cost model is *simulated*: node accesses are counted, not slept on, so
//! paper-scale experiments (a million 500-byte records) run in seconds while
//! reporting the same charged processing times the paper reports.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod atomic_replace;
pub mod buffer_pool;
pub mod error;
pub mod heap_file;
pub mod manifest;
pub mod page;
pub mod pager;
pub mod stats;
pub mod wal;

pub use atomic_replace::atomic_replace;
pub use buffer_pool::CachedPager;
pub use error::{StorageError, StorageResult};
pub use heap_file::{HeapFile, RecordId};
pub use manifest::{
    Manifest, PageDirectory, Party, ShardHeader, ShardMeta, TreeMeta, SHARD_HEADER_PAGE,
    SHARD_META_LEN, TE_DIGEST_LEN,
};
pub use page::{Page, PageId, PAGE_SIZE};
pub use pager::{FilePager, MemPager, PageStore, SharedPageStore};
pub use stats::{CostModel, IoSnapshot, IoStats};
pub use wal::{encode_records, scan_log, WalRecord, WalSegment, WalTx, WalWriter};
