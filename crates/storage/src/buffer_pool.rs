//! An LRU page cache layered over any [`PageStore`].
//!
//! [`CachedPager`] keeps the *logical* node-access accounting of the paper's
//! cost model intact (every read or write through the cache still counts as a
//! node access) while avoiding redundant physical transfers to the backing
//! store. This separates the two quantities the experiments care about:
//! charged node accesses (identical with or without the cache) and real I/O
//! work (reduced by the cache), and lets the ablation experiments show both.

use crate::error::StorageResult;
use crate::page::{Page, PageId};
use crate::pager::{PageStore, SharedPageStore};
use crate::stats::IoStats;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Default number of cached pages (1 MiB worth of 4 KiB pages).
pub const DEFAULT_CAPACITY: usize = 256;

struct CacheState {
    /// page id -> (page contents, dirty flag, last-use tick)
    entries: HashMap<u64, (Page, bool, u64)>,
    /// Pages written since the last [`CachedPager::take_write_set`] — the
    /// WAL commit path's after-image source. Independent of the dirty
    /// flags: a flush clears dirtiness but not the pending write set.
    write_set: HashSet<u64>,
    tick: u64,
}

impl CacheState {
    fn touch(&mut self, id: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.2 = tick;
        }
    }

    fn lru_victim(&self) -> Option<u64> {
        self.entries
            .iter()
            .min_by_key(|(_, (_, _, tick))| *tick)
            .map(|(&id, _)| id)
    }

    fn lru_clean_victim(&self) -> Option<u64> {
        self.entries
            .iter()
            .filter(|(_, (_, dirty, _))| !*dirty)
            .min_by_key(|(_, (_, _, tick))| *tick)
            .map(|(&id, _)| id)
    }
}

/// Write-back LRU cache in front of a [`PageStore`].
pub struct CachedPager {
    inner: SharedPageStore,
    capacity: usize,
    cache_state: Mutex<CacheState>,
    stats: Arc<IoStats>,
    flush_on_drop: AtomicBool,
    no_steal: AtomicBool,
}

impl CachedPager {
    /// Wraps `inner` with an LRU cache of `capacity` pages.
    ///
    /// The cache keeps its own [`IoStats`] for logical accesses and hit/miss
    /// accounting; physical transfers continue to be counted by `inner`'s
    /// stats.
    pub fn new(inner: SharedPageStore, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CachedPager {
            inner,
            capacity,
            cache_state: Mutex::new(CacheState {
                entries: HashMap::new(),
                write_set: HashSet::new(),
                tick: 0,
            }),
            stats: IoStats::new_shared(),
            flush_on_drop: AtomicBool::new(true),
            no_steal: AtomicBool::new(false),
        }
    }

    /// Controls whether `Drop` performs a best-effort flush of dirty pages
    /// (the default). A durable deployment running a group-commit or
    /// flush-on-close policy turns this **off**: its cache may hold
    /// mutations that were never acknowledged as durable, and writing them
    /// into the backing file on drop would overwrite committed pages in
    /// place with state the manifest does not describe — turning a clean
    /// crash (recover the last commit) into a detected corruption.
    pub fn set_flush_on_drop(&self, flush: bool) {
        self.flush_on_drop.store(flush, Ordering::Relaxed);
    }

    /// Wraps `inner` with the default capacity.
    pub fn with_default_capacity(inner: SharedPageStore) -> Self {
        Self::new(inner, DEFAULT_CAPACITY)
    }

    /// Switches the pool to **no-steal** eviction: a dirty page is never
    /// written back to the backing store by an eviction — only clean pages
    /// are evicted, and when everything is dirty the pool overflows its
    /// soft capacity instead. WAL-backed deployments require this: a dirty
    /// page holds mutations the log has not yet committed, and stealing it
    /// into the page file would clobber checkpointed pages with state
    /// recovery cannot reconstruct. The default (steal) keeps the classic
    /// write-back behavior for non-durable uses.
    pub fn set_no_steal(&self, no_steal: bool) {
        self.no_steal.store(no_steal, Ordering::Relaxed);
    }

    /// Flushes all dirty pages to the backing store, in ascending page-id
    /// order. `HashMap` iteration order would scatter the writes across the
    /// backing file; the commit path flushes whole batches at once, and
    /// sorted ids turn that into one sequential pass over the file.
    pub fn flush(&self) -> StorageResult<()> {
        let mut state = self.cache_state.lock();
        let mut ids: Vec<u64> = state
            .entries
            .iter()
            .filter(|(_, (_, dirty, _))| *dirty)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            if let Some((page, dirty, _)) = state.entries.get_mut(&id) {
                if *dirty {
                    self.inner.write(PageId(id), page)?;
                    *dirty = false;
                }
            }
        }
        Ok(())
    }

    /// The backing store.
    pub fn inner(&self) -> &SharedPageStore {
        &self.inner
    }

    /// The set of pages written since the last [`CachedPager::clear_write_set`],
    /// each with its current content, in ascending page-id order — the
    /// after-images a commit appends to the WAL. A page that was written
    /// and then evicted (steal mode only) is read back from the backing
    /// store, which already received its write-back. Non-draining, so a
    /// commit that fails after collecting the set retries with nothing
    /// lost; the commit clears the set only once the images are safely in
    /// the log.
    pub fn write_set_pages(&self) -> StorageResult<Vec<(PageId, Page)>> {
        let state = self.cache_state.lock();
        let mut ids: Vec<u64> = state.write_set.iter().copied().collect();
        ids.sort_unstable();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let page = match state.entries.get(&id) {
                Some((page, _, _)) => page.clone(),
                None => self.inner.read(PageId(id))?,
            };
            out.push((PageId(id), page));
        }
        Ok(out)
    }

    /// Forgets the accumulated write set — called once a commit has the
    /// set's after-images durably appended to the WAL.
    pub fn clear_write_set(&self) {
        self.cache_state.lock().write_set.clear();
    }

    /// [`CachedPager::write_set_pages`] followed by
    /// [`CachedPager::clear_write_set`], as one call.
    pub fn take_write_set(&self) -> StorageResult<Vec<(PageId, Page)>> {
        let pages = self.write_set_pages()?;
        self.clear_write_set();
        Ok(pages)
    }

    fn evict_if_full(&self, state: &mut CacheState) -> StorageResult<()> {
        let no_steal = self.no_steal.load(Ordering::Relaxed);
        while state.entries.len() >= self.capacity {
            let victim = if no_steal {
                // Never steal a dirty page; overflow the soft capacity when
                // everything resident is dirty.
                state.lru_clean_victim()
            } else {
                state.lru_victim()
            };
            let Some(victim) = victim else {
                break;
            };
            if let Some((page, dirty, _)) = state.entries.remove(&victim) {
                if dirty {
                    self.inner.write(PageId(victim), &page)?;
                }
            }
        }
        Ok(())
    }
}

impl PageStore for CachedPager {
    fn allocate(&self) -> StorageResult<PageId> {
        self.inner.allocate()
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        self.stats.record_node_read();
        let mut state = self.cache_state.lock();
        if let Some((page, _, _)) = state.entries.get(&id.0) {
            let page = page.clone();
            self.stats.record_cache_hit();
            state.touch(id.0);
            return Ok(page);
        }
        self.stats.record_cache_miss();
        let page = self.inner.read(id)?;
        self.evict_if_full(&mut state)?;
        state.tick += 1;
        let tick = state.tick;
        state.entries.insert(id.0, (page.clone(), false, tick));
        Ok(page)
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        self.stats.record_node_write();
        let mut state = self.cache_state.lock();
        if state.entries.contains_key(&id.0) {
            self.stats.record_cache_hit();
            state.tick += 1;
            let tick = state.tick;
            state.entries.insert(id.0, (page.clone(), true, tick));
            state.write_set.insert(id.0);
            return Ok(());
        }
        self.stats.record_cache_miss();
        self.evict_if_full(&mut state)?;
        state.tick += 1;
        let tick = state.tick;
        state.entries.insert(id.0, (page.clone(), true, tick));
        state.write_set.insert(id.0);
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        // A durability barrier is meaningless for pages still sitting dirty
        // in the pool; callers flush first (the commit path does). The
        // physical barrier belongs to the backing store; the cache mirrors
        // it in its own stats — exactly like logical reads/writes — so a
        // consumer watching the cache's counters (the engines' party
        // accounting) sees the same fsyncs-per-op with or without a pool.
        self.inner.sync()?;
        self.stats.record_sync();
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

impl Drop for CachedPager {
    fn drop(&mut self) {
        // Best-effort flush; Drop cannot fail, but a swallowed error is
        // still recorded so callers holding the stats Arc (`close()` paths)
        // can surface it after the fact.
        if self.flush_on_drop.load(Ordering::Relaxed) && self.flush().is_err() {
            self.stats.record_swallowed_sync_error();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn make(capacity: usize) -> (SharedPageStore, CachedPager) {
        let inner: SharedPageStore = MemPager::new_shared();
        let cache = CachedPager::new(Arc::clone(&inner), capacity);
        (inner, cache)
    }

    #[test]
    fn read_through_and_hit_accounting() {
        let (_inner, cache) = make(4);
        let id = cache.allocate().unwrap();
        let mut page = Page::new();
        page.write_u32(0, 7);
        cache.write(id, &page).unwrap();

        let first = cache.read(id).unwrap();
        let second = cache.read(id).unwrap();
        assert_eq!(first.read_u32(0), 7);
        assert_eq!(second.read_u32(0), 7);

        let snap = cache.stats().snapshot();
        assert_eq!(snap.node_reads, 2);
        assert_eq!(snap.node_writes, 1);
        // The write populated the cache, so both reads hit; the initial write
        // itself was the only miss.
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 1);
    }

    #[test]
    fn dirty_pages_reach_backing_store_on_flush() {
        let (inner, cache) = make(4);
        let id = cache.allocate().unwrap();
        let mut page = Page::new();
        page.write_u64(0, 99);
        cache.write(id, &page).unwrap();

        // Not yet flushed: backing store still sees zeros.
        assert_eq!(inner.read(id).unwrap().read_u64(0), 0);
        cache.flush().unwrap();
        assert_eq!(inner.read(id).unwrap().read_u64(0), 99);
    }

    #[test]
    fn eviction_writes_back_dirty_victims() {
        let (inner, cache) = make(2);
        let mut ids = Vec::new();
        for i in 0..4u64 {
            let id = cache.allocate().unwrap();
            let mut page = Page::new();
            page.write_u64(0, i + 1);
            cache.write(id, &page).unwrap();
            ids.push(id);
        }
        // Capacity 2, so the first pages must have been evicted + written back.
        assert_eq!(inner.read(ids[0]).unwrap().read_u64(0), 1);
        assert_eq!(inner.read(ids[1]).unwrap().read_u64(0), 2);
        // All pages readable through the cache with correct contents.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(cache.read(*id).unwrap().read_u64(0), i as u64 + 1);
        }
    }

    #[test]
    fn logical_accesses_counted_even_on_hits() {
        let (_inner, cache) = make(8);
        let id = cache.allocate().unwrap();
        cache.write(id, &Page::new()).unwrap();
        for _ in 0..10 {
            cache.read(id).unwrap();
        }
        let snap = cache.stats().snapshot();
        assert_eq!(snap.node_reads, 10);
        // Physical reads on the inner store: none needed (page was cached by the write).
        let inner_snap = cache.inner().stats().snapshot();
        assert_eq!(inner_snap.physical_reads, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (_inner, cache) = make(2);
        let a = cache.allocate().unwrap();
        let b = cache.allocate().unwrap();
        let c = cache.allocate().unwrap();
        cache.write(a, &Page::new()).unwrap();
        cache.write(b, &Page::new()).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        cache.read(a).unwrap();
        cache.write(c, &Page::new()).unwrap();

        let misses_before = cache.stats().snapshot().cache_misses;
        cache.read(a).unwrap(); // still cached -> no new miss
        assert_eq!(cache.stats().snapshot().cache_misses, misses_before);
        cache.read(b).unwrap(); // evicted -> miss
        assert_eq!(cache.stats().snapshot().cache_misses, misses_before + 1);
    }

    /// `flush` must emit dirty pages in ascending page-id order — sequential
    /// I/O on the backing file — regardless of `HashMap` iteration order.
    #[test]
    fn flush_writes_dirty_pages_in_ascending_id_order() {
        struct Recorder {
            inner: SharedPageStore,
            writes: Mutex<Vec<u64>>,
        }
        impl PageStore for Recorder {
            fn allocate(&self) -> StorageResult<PageId> {
                self.inner.allocate()
            }
            fn read(&self, id: PageId) -> StorageResult<Page> {
                self.inner.read(id)
            }
            fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
                self.writes.lock().push(id.0);
                self.inner.write(id, page)
            }
            fn sync(&self) -> StorageResult<()> {
                self.inner.sync()
            }
            fn page_count(&self) -> u64 {
                self.inner.page_count()
            }
            fn stats(&self) -> Arc<IoStats> {
                self.inner.stats()
            }
        }

        let recorder = Arc::new(Recorder {
            inner: MemPager::new_shared(),
            writes: Mutex::new(Vec::new()),
        });
        let cache = CachedPager::new(Arc::clone(&recorder) as SharedPageStore, 64);
        let ids: Vec<PageId> = (0..16).map(|_| cache.allocate().unwrap()).collect();
        // Dirty them in a scrambled order; leave some clean.
        for &i in &[7usize, 2, 11, 0, 13, 5, 9] {
            cache.write(ids[i], &Page::new()).unwrap();
        }
        cache.read(ids[3]).unwrap(); // cached but clean
        recorder.writes.lock().clear();
        cache.flush().unwrap();
        let order = recorder.writes.lock().clone();
        assert_eq!(order, vec![0, 2, 5, 7, 9, 11, 13]);
        // A second flush has nothing dirty left.
        recorder.writes.lock().clear();
        cache.flush().unwrap();
        assert!(recorder.writes.lock().is_empty());
    }

    #[test]
    fn take_write_set_returns_written_pages_and_clears() {
        let (_inner, cache) = make(8);
        let a = cache.allocate().unwrap();
        let b = cache.allocate().unwrap();
        let c = cache.allocate().unwrap();
        let mut page = Page::new();
        page.write_u64(0, 1);
        cache.write(b, &page).unwrap();
        page.write_u64(0, 2);
        cache.write(a, &page).unwrap();
        cache.read(c).unwrap(); // reads don't enter the write set

        let set = cache.take_write_set().unwrap();
        let ids: Vec<PageId> = set.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![a, b]); // ascending order
        assert_eq!(set[0].1.read_u64(0), 2);
        assert_eq!(set[1].1.read_u64(0), 1);
        // Drained: nothing pending until the next write.
        assert!(cache.take_write_set().unwrap().is_empty());
        cache.write(c, &Page::new()).unwrap();
        assert_eq!(cache.take_write_set().unwrap().len(), 1);
    }

    #[test]
    fn take_write_set_survives_a_flush_clearing_dirtiness() {
        let (_inner, cache) = make(8);
        let id = cache.allocate().unwrap();
        let mut page = Page::new();
        page.write_u64(8, 77);
        cache.write(id, &page).unwrap();
        // A flush (e.g. a checkpoint racing in) clears the dirty flag but
        // must not lose the pending after-image.
        cache.flush().unwrap();
        let set = cache.take_write_set().unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set[0].1.read_u64(8), 77);
    }

    #[test]
    fn take_write_set_reads_back_stolen_pages() {
        // Steal mode, capacity 2: dirty pages get evicted + written back;
        // the write set must recover their content from the backing store.
        let (_inner, cache) = make(2);
        let mut ids = Vec::new();
        for i in 0..4u64 {
            let id = cache.allocate().unwrap();
            let mut page = Page::new();
            page.write_u64(0, i + 1);
            cache.write(id, &page).unwrap();
            ids.push(id);
        }
        let set = cache.take_write_set().unwrap();
        assert_eq!(set.len(), 4);
        for (i, (id, page)) in set.iter().enumerate() {
            assert_eq!(*id, ids[i]);
            assert_eq!(page.read_u64(0), i as u64 + 1);
        }
    }

    #[test]
    fn no_steal_eviction_never_writes_dirty_pages_back() {
        let (inner, cache) = make(2);
        cache.set_no_steal(true);
        let mut ids = Vec::new();
        for i in 0..4u64 {
            let id = cache.allocate().unwrap();
            let mut page = Page::new();
            page.write_u64(0, i + 1);
            cache.write(id, &page).unwrap();
            ids.push(id);
        }
        // All four dirty pages are resident (soft overflow) and none ever
        // reached the backing store.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(inner.read(id).unwrap().read_u64(0), 0);
            assert_eq!(cache.read(id).unwrap().read_u64(0), i as u64 + 1);
        }
        assert_eq!(inner.stats().snapshot().physical_writes, 0);

        // Once flushed clean, pages become evictable again: reading two
        // fresh pages evicts clean victims without growing past capacity.
        cache.flush().unwrap();
        let e = cache.allocate().unwrap();
        let f = cache.allocate().unwrap();
        cache.read(e).unwrap();
        cache.read(f).unwrap();
        assert_eq!(cache.cache_state.lock().entries.len(), 2);
    }

    #[test]
    fn drop_records_swallowed_flush_errors() {
        struct FailingStore {
            inner: SharedPageStore,
        }
        impl PageStore for FailingStore {
            fn allocate(&self) -> StorageResult<PageId> {
                self.inner.allocate()
            }
            fn read(&self, id: PageId) -> StorageResult<Page> {
                self.inner.read(id)
            }
            fn write(&self, _id: PageId, _page: &Page) -> StorageResult<()> {
                Err(crate::error::StorageError::Io(std::io::Error::other(
                    "disk on fire",
                )))
            }
            fn sync(&self) -> StorageResult<()> {
                self.inner.sync()
            }
            fn page_count(&self) -> u64 {
                self.inner.page_count()
            }
            fn stats(&self) -> Arc<IoStats> {
                self.inner.stats()
            }
        }

        let failing = Arc::new(FailingStore {
            inner: MemPager::new_shared(),
        });
        let stats;
        {
            let cache = CachedPager::new(Arc::clone(&failing) as SharedPageStore, 4);
            stats = cache.stats();
            let id = cache.allocate().unwrap();
            cache.write(id, &Page::new()).unwrap();
            assert_eq!(stats.swallowed_sync_errors(), 0);
        }
        // Drop flushed, the flush failed, and the failure left a trace.
        assert_eq!(stats.swallowed_sync_errors(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let inner: SharedPageStore = MemPager::new_shared();
        let _ = CachedPager::new(inner, 0);
    }

    #[test]
    fn drop_flushes_dirty_pages() {
        let inner: SharedPageStore = MemPager::new_shared();
        let id;
        {
            let cache = CachedPager::new(Arc::clone(&inner), 4);
            id = cache.allocate().unwrap();
            let mut page = Page::new();
            page.write_u32(16, 0xCAFE);
            cache.write(id, &page).unwrap();
        }
        assert_eq!(inner.read(id).unwrap().read_u32(16), 0xCAFE);
    }

    #[test]
    fn drop_flush_can_be_disabled() {
        let inner: SharedPageStore = MemPager::new_shared();
        let id;
        {
            let cache = CachedPager::new(Arc::clone(&inner), 4);
            cache.set_flush_on_drop(false);
            id = cache.allocate().unwrap();
            let mut page = Page::new();
            page.write_u32(16, 0xCAFE);
            cache.write(id, &page).unwrap();
        }
        // The dirty page was discarded, not written back.
        assert_eq!(inner.read(id).unwrap().read_u32(16), 0);
    }
}
