//! Page stores: the abstraction the trees and heap files are built on.
//!
//! A [`PageStore`] hands out 4096-byte pages by id and records every logical
//! access in its [`IoStats`]. Two implementations are provided:
//!
//! * [`MemPager`] — pages live in a `Vec` in memory. This is the "main memory
//!   index" configuration the paper mentions for the trusted entity (§IV) and
//!   the default for unit tests.
//! * [`FilePager`] — pages live in a real file, read and written with
//!   positioned I/O. This is the disk-based configuration of the evaluation.
//!
//! Both are thread-safe (`Send + Sync`) so the concurrent-throughput
//! extension experiment can share a store across worker threads.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::stats::IoStats;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, dynamically-dispatched page store.
pub type SharedPageStore = Arc<dyn PageStore>;

/// Storage abstraction for fixed-size pages.
///
/// Every `read`/`write` counts as one logical node access in the attached
/// [`IoStats`], which is what the paper's 10 ms/access cost model charges.
pub trait PageStore: Send + Sync {
    /// Allocates a new zeroed page and returns its id.
    fn allocate(&self) -> StorageResult<PageId>;

    /// Reads the page with the given id.
    fn read(&self, id: PageId) -> StorageResult<Page>;

    /// Writes the page with the given id.
    fn write(&self, id: PageId, page: &Page) -> StorageResult<()>;

    /// Forces everything written so far to stable storage (a durability
    /// barrier). Every implementation records the barrier in its
    /// [`IoStats::record_sync`] counter — in-memory stores as a counted
    /// no-op — so identical access sequences charge identical stats on
    /// every backend and benches can report fsyncs-per-op.
    fn sync(&self) -> StorageResult<()>;

    /// Number of pages allocated so far.
    fn page_count(&self) -> u64;

    /// The I/O counters attached to this store.
    fn stats(&self) -> Arc<IoStats>;

    /// Total bytes occupied by the allocated pages.
    fn storage_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }
}

/// An in-memory page store.
pub struct MemPager {
    pages: Mutex<Vec<Page>>,
    stats: Arc<IoStats>,
}

impl Default for MemPager {
    fn default() -> Self {
        Self::new()
    }
}

impl MemPager {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        MemPager {
            pages: Mutex::new(Vec::new()),
            stats: IoStats::new_shared(),
        }
    }

    /// Creates an empty in-memory store behind an `Arc`.
    pub fn new_shared() -> SharedPageStore {
        Arc::new(Self::new())
    }
}

impl PageStore for MemPager {
    fn allocate(&self) -> StorageResult<PageId> {
        let mut pages = self.pages.lock();
        pages.push(Page::new());
        Ok(PageId(pages.len() as u64 - 1))
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        // Only successful accesses are charged, so the cost-model numbers
        // stay identical across backends for identical access sequences
        // (FilePager applies the same rule).
        let pages = self.pages.lock();
        let page = pages
            .get(id.0 as usize)
            .cloned()
            .ok_or(StorageError::PageOutOfBounds {
                page_id: id.0,
                page_count: pages.len() as u64,
            })?;
        self.stats.record_node_read();
        self.stats.record_physical_read();
        Ok(page)
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let mut pages = self.pages.lock();
        let len = pages.len() as u64;
        match pages.get_mut(id.0 as usize) {
            Some(slot) => {
                *slot = page.clone();
                self.stats.record_node_write();
                self.stats.record_physical_write();
                Ok(())
            }
            None => Err(StorageError::PageOutOfBounds {
                page_id: id.0,
                page_count: len,
            }),
        }
    }

    fn sync(&self) -> StorageResult<()> {
        // Memory is always "durable" for the in-memory backend; counting the
        // barrier keeps the stats parity with FilePager.
        self.stats.record_sync();
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

/// A file-backed page store using positioned reads/writes.
pub struct FilePager {
    file: Mutex<File>,
    page_count: AtomicU64,
    stats: Arc<IoStats>,
    sync_delay_micros: AtomicU64,
}

impl FilePager {
    /// Creates (or truncates) a pager file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePager {
            file: Mutex::new(file),
            page_count: AtomicU64::new(0),
            stats: IoStats::new_shared(),
            sync_delay_micros: AtomicU64::new(0),
        })
    }

    /// Opens an existing pager file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupted(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        Ok(FilePager {
            file: Mutex::new(file),
            page_count: AtomicU64::new(len / PAGE_SIZE as u64),
            stats: IoStats::new_shared(),
            sync_delay_micros: AtomicU64::new(0),
        })
    }

    /// Adds a simulated latency to every durability barrier, slept while
    /// the file lock is held (a real device stalls same-file writers during
    /// a barrier too). Zero — the default — disables it. Like
    /// `ServeOptions::io_micros_per_query` and the 10 ms/node-access cost
    /// model, this lets experiments on fast CI disks measure protocol
    /// effects (group commit amortizing fsyncs) at production-disk barrier
    /// costs; the real `fdatasync` is still issued.
    pub fn set_sync_delay_micros(&self, micros: u64) {
        self.sync_delay_micros.store(micros, Ordering::Relaxed);
    }
}

impl PageStore for FilePager {
    fn allocate(&self) -> StorageResult<PageId> {
        // The new count is published only after the zero-extension hit the
        // file, and only while still holding the file lock. Publishing first
        // (the old `fetch_add` outside the lock) let a concurrent `read` of
        // the fresh id pass the bounds check and fail on the not-yet-extended
        // file, and a failed `write_all` leaked the count forever.
        let mut file = self.file.lock();
        let id = self.page_count.load(Ordering::SeqCst);
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        file.write_all(&[0u8; PAGE_SIZE])?;
        self.page_count.store(id + 1, Ordering::SeqCst);
        Ok(PageId(id))
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        let count = self.page_count.load(Ordering::SeqCst);
        if id.0 >= count {
            return Err(StorageError::PageOutOfBounds {
                page_id: id.0,
                page_count: count,
            });
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
            // An in-bounds page that the file cannot deliver means the file
            // was truncated behind the pager's back: report corruption, not a
            // generic I/O failure.
            file.read_exact(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    StorageError::Corrupted(format!(
                        "pager file truncated: page {} is within the {} allocated pages but \
                         could not be read in full",
                        id.0, count
                    ))
                } else {
                    StorageError::Io(e)
                }
            })?;
        }
        self.stats.record_node_read();
        self.stats.record_physical_read();
        // analyzer:allow(no-unwrap-in-lib, buf is allocated at PAGE_SIZE above so from_bytes cannot fail)
        Ok(Page::from_bytes(&buf).expect("buffer is exactly one page"))
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let count = self.page_count.load(Ordering::SeqCst);
        if id.0 >= count {
            return Err(StorageError::PageOutOfBounds {
                page_id: id.0,
                page_count: count,
            });
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        file.write_all(page.as_slice())?;
        self.stats.record_node_write();
        self.stats.record_physical_write();
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        let file = self.file.lock();
        file.sync_data()?;
        let delay = self.sync_delay_micros.load(Ordering::Relaxed);
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_micros(delay));
        }
        drop(file);
        // Charged only on success, like every other access.
        self.stats.record_sync();
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.page_count.load(Ordering::SeqCst)
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_store(store: &dyn PageStore) {
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(store.page_count(), 2);

        let mut page = Page::new();
        page.write_u64(0, 0xFEED_FACE);
        page.write_bytes(100, b"hello pages");
        store.write(a, &page).unwrap();

        let loaded = store.read(a).unwrap();
        assert_eq!(loaded.read_u64(0), 0xFEED_FACE);
        assert_eq!(loaded.read_bytes(100, 11), b"hello pages");

        // Page b is still zeroed.
        let empty = store.read(b).unwrap();
        assert!(empty.as_slice().iter().all(|&x| x == 0));

        // Out-of-bounds access errors.
        assert!(matches!(
            store.read(PageId(99)),
            Err(StorageError::PageOutOfBounds { .. })
        ));
        assert!(matches!(
            store.write(PageId(99), &page),
            Err(StorageError::PageOutOfBounds { .. })
        ));

        // Stats recorded the accesses.
        let snap = store.stats().snapshot();
        assert!(snap.node_reads >= 2);
        assert!(snap.node_writes >= 1);
        assert_eq!(store.storage_bytes(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn mem_pager_basics() {
        let store = MemPager::new();
        exercise_store(&store);
    }

    #[test]
    fn file_pager_basics() {
        let dir = tempfile::tempdir().unwrap();
        let store = FilePager::create(dir.path().join("pages.db")).unwrap();
        exercise_store(&store);
        store.sync().unwrap();
    }

    #[test]
    fn file_pager_persists_across_reopen() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("persist.db");
        let id;
        {
            let store = FilePager::create(&path).unwrap();
            id = store.allocate().unwrap();
            let mut page = Page::new();
            page.write_u32(8, 1234);
            store.write(id, &page).unwrap();
            store.sync().unwrap();
        }
        let reopened = FilePager::open(&path).unwrap();
        assert_eq!(reopened.page_count(), 1);
        assert_eq!(reopened.read(id).unwrap().read_u32(8), 1234);
    }

    #[test]
    fn file_pager_open_rejects_torn_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("torn.db");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(matches!(
            FilePager::open(&path),
            Err(StorageError::Corrupted(_))
        ));
    }

    #[test]
    fn mem_pager_concurrent_allocation_is_consistent() {
        let store = Arc::new(MemPager::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let st = Arc::clone(&store);
                s.spawn(move || {
                    for _ in 0..100 {
                        st.allocate().unwrap();
                    }
                });
            }
        });
        assert_eq!(store.page_count(), 400);
    }

    #[test]
    fn shared_page_store_is_object_safe() {
        let store: SharedPageStore = MemPager::new_shared();
        let id = store.allocate().unwrap();
        assert_eq!(id, PageId(0));
    }

    /// Regression for the allocate race: the page count used to be published
    /// *before* the zeroed extension was written, so a concurrent read of a
    /// fresh id passed the bounds check and failed with a raw
    /// `Io(UnexpectedEof)`. Any id at or above the observed count may race
    /// the allocator and report `PageOutOfBounds`; an id *below* an observed
    /// count must always read successfully.
    #[test]
    fn file_pager_concurrent_allocate_and_read_hammer() {
        let dir = tempfile::tempdir().unwrap();
        let store = Arc::new(FilePager::create(dir.path().join("hammer.db")).unwrap());
        std::thread::scope(|s| {
            for _ in 0..2 {
                let st = Arc::clone(&store);
                s.spawn(move || {
                    for _ in 0..200 {
                        st.allocate().unwrap();
                    }
                });
            }
            for t in 0..2u64 {
                let st = Arc::clone(&store);
                s.spawn(move || {
                    let mut probe = t;
                    for _ in 0..2_000 {
                        let count = st.page_count();
                        if count == 0 {
                            continue;
                        }
                        probe = probe
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407)
                            % count;
                        match st.read(PageId(probe)) {
                            Ok(page) => assert!(page.as_slice().iter().all(|&b| b == 0)),
                            Err(e) => panic!(
                                "read of page {probe} below observed count {count} failed: {e}"
                            ),
                        }
                    }
                });
            }
        });
        assert_eq!(store.page_count(), 400);
    }

    /// Identical access sequences — including out-of-bounds ones — must
    /// charge identical stats on both backends, or per-backend cost-model
    /// numbers diverge.
    #[test]
    fn stats_accounting_is_identical_across_backends() {
        let dir = tempfile::tempdir().unwrap();
        let mem = MemPager::new();
        let file = FilePager::create(dir.path().join("parity.db")).unwrap();
        let drive = |store: &dyn PageStore| {
            let a = store.allocate().unwrap();
            let b = store.allocate().unwrap();
            let mut page = Page::new();
            page.write_u64(0, 7);
            store.write(a, &page).unwrap();
            store.read(a).unwrap();
            store.read(b).unwrap();
            store.sync().unwrap();
            // Failed accesses must not be charged on either backend.
            assert!(store.read(PageId(77)).is_err());
            assert!(store.write(PageId(77), &page).is_err());
            store.stats().snapshot()
        };
        let mem_snap = drive(&mem);
        let file_snap = drive(&file);
        assert_eq!(mem_snap, file_snap);
        assert_eq!(mem_snap.node_reads, 2);
        assert_eq!(mem_snap.node_writes, 1);
        // The durability barrier is counted identically on both backends
        // (the in-memory one as a no-op) and is not a node access.
        assert_eq!(mem_snap.syncs, 1);
        assert_eq!(mem_snap.node_accesses(), 3);
    }

    /// A truncated pager file is *corruption*, not a generic I/O error: the
    /// in-bounds page exists according to the pager's accounting but the file
    /// cannot deliver it.
    #[test]
    fn truncated_file_reports_corruption_not_io() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("trunc.db");
        let store = FilePager::create(&path).unwrap();
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        store.sync().unwrap();
        // Truncate the file behind the pager's back: page `b` is gone.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(PAGE_SIZE as u64).unwrap();
        drop(file);
        assert!(store.read(a).is_ok());
        match store.read(b) {
            Err(StorageError::Corrupted(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected Corrupted, got {other:?}"),
        }
        // The failed read was not charged.
        assert_eq!(store.stats().snapshot().node_reads, 1);
    }
}
