//! Fixed-size page buffers.
//!
//! All indexes in the evaluation use disk pages of 4096 bytes (§IV of the
//! paper). A [`Page`] is an owned 4096-byte buffer with bounds-checked,
//! little-endian accessors used by the tree node serializers and the heap
//! file.

use std::fmt;

/// The page size used by every disk-based structure, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a [`crate::pager::PageStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// A sentinel id used for "no page" (e.g. a missing child pointer).
    pub const INVALID: PageId = PageId(u64::MAX);

    /// Returns `true` if this id is the invalid sentinel.
    pub fn is_invalid(&self) -> bool {
        *self == PageId::INVALID
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_invalid() {
            write!(f, "PageId(INVALID)")
        } else {
            write!(f, "PageId({})", self.0)
        }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An owned, fixed-size page buffer.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

impl Page {
    /// Creates a zero-filled page.
    pub fn new() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Creates a page from an existing buffer.
    ///
    /// Returns `None` if `bytes` is not exactly [`PAGE_SIZE`] long.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != PAGE_SIZE {
            return None;
        }
        let mut page = Page::new();
        page.data.copy_from_slice(bytes);
        Some(page)
    }

    /// The full page contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[..]
    }

    /// The full page contents, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data[..]
    }

    /// Reads one byte.
    pub fn read_u8(&self, offset: usize) -> u8 {
        self.data[offset]
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, offset: usize, value: u8) {
        self.data[offset] = value;
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, offset: usize) -> u16 {
        // analyzer:allow(no-unwrap-in-lib, a 2-byte slice always converts; out-of-range offsets already panic at the slice, the accessors' documented contract)
        u16::from_le_bytes(self.data[offset..offset + 2].try_into().expect("2 bytes"))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, offset: usize, value: u16) {
        self.data[offset..offset + 2].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, offset: usize) -> u32 {
        // analyzer:allow(no-unwrap-in-lib, a 4-byte slice always converts; out-of-range offsets already panic at the slice, the accessors' documented contract)
        u32::from_le_bytes(self.data[offset..offset + 4].try_into().expect("4 bytes"))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, offset: usize, value: u32) {
        self.data[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, offset: usize) -> u64 {
        // analyzer:allow(no-unwrap-in-lib, an 8-byte slice always converts; out-of-range offsets already panic at the slice, the accessors' documented contract)
        u64::from_le_bytes(self.data[offset..offset + 8].try_into().expect("8 bytes"))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, offset: usize, value: u64) {
        self.data[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads `len` bytes starting at `offset`.
    pub fn read_bytes(&self, offset: usize, len: usize) -> &[u8] {
        &self.data[offset..offset + len]
    }

    /// Writes `bytes` starting at `offset`.
    pub fn write_bytes(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads a [`PageId`] (stored as a `u64`).
    pub fn read_page_id(&self, offset: usize) -> PageId {
        PageId(self.read_u64(offset))
    }

    /// Writes a [`PageId`].
    pub fn write_page_id(&mut self, offset: usize, id: PageId) {
        self.write_u64(offset, id.0);
    }

    /// Zeroes the whole page.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_zeroed() {
        let p = Page::new();
        assert!(p.as_slice().iter().all(|&b| b == 0));
        assert_eq!(p.as_slice().len(), PAGE_SIZE);
    }

    #[test]
    fn integer_round_trips() {
        let mut p = Page::new();
        p.write_u8(0, 0xAB);
        p.write_u16(1, 0xBEEF);
        p.write_u32(3, 0xDEAD_BEEF);
        p.write_u64(7, 0x0123_4567_89AB_CDEF);
        assert_eq!(p.read_u8(0), 0xAB);
        assert_eq!(p.read_u16(1), 0xBEEF);
        assert_eq!(p.read_u32(3), 0xDEAD_BEEF);
        assert_eq!(p.read_u64(7), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn byte_slices_round_trip() {
        let mut p = Page::new();
        let payload = [7u8, 8, 9, 10, 11];
        p.write_bytes(100, &payload);
        assert_eq!(p.read_bytes(100, 5), &payload);
        assert_eq!(p.read_u8(99), 0);
        assert_eq!(p.read_u8(105), 0);
    }

    #[test]
    fn page_id_round_trip_and_sentinel() {
        let mut p = Page::new();
        p.write_page_id(16, PageId(42));
        assert_eq!(p.read_page_id(16), PageId(42));
        p.write_page_id(16, PageId::INVALID);
        assert!(p.read_page_id(16).is_invalid());
        assert!(!PageId(0).is_invalid());
    }

    #[test]
    fn from_bytes_validates_length() {
        assert!(Page::from_bytes(&[0u8; PAGE_SIZE]).is_some());
        assert!(Page::from_bytes(&[0u8; 100]).is_none());
        let mut buf = vec![3u8; PAGE_SIZE];
        buf[0] = 9;
        let p = Page::from_bytes(&buf).unwrap();
        assert_eq!(p.read_u8(0), 9);
        assert_eq!(p.read_u8(1), 3);
    }

    #[test]
    fn clear_resets_contents() {
        let mut p = Page::new();
        p.write_u64(0, u64::MAX);
        p.clear();
        assert!(p.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn writes_at_page_end_are_allowed() {
        let mut p = Page::new();
        p.write_u32(PAGE_SIZE - 4, 0xFFFF_FFFF);
        assert_eq!(p.read_u32(PAGE_SIZE - 4), 0xFFFF_FFFF);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut p = Page::new();
        p.write_u32(PAGE_SIZE - 2, 1);
    }
}
