//! I/O accounting and the paper's node-access cost model.
//!
//! The evaluation in the paper charges **10 milliseconds per node access** and
//! reports processing cost as charged time. [`IoStats`] counts node accesses
//! (logical reads/writes seen by the index code) as well as physical page
//! transfers and cache hits, and [`CostModel`] converts a counter snapshot
//! into charged milliseconds exactly as the paper does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters.
///
/// One `IoStats` instance is typically attached to a pager and shared (via
/// `Arc`) with every structure built on top of it; experiments snapshot the
/// counters before and after an operation and report the delta.
#[derive(Debug, Default)]
pub struct IoStats {
    node_reads: AtomicU64,
    node_writes: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    syncs: AtomicU64,
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    wal_syncs: AtomicU64,
    /// Sync/flush errors swallowed by `Drop` paths (which cannot return
    /// them). Not part of [`IoSnapshot`] — it is a health indicator, not an
    /// I/O quantity benches should delta — but observable through the
    /// shared `Arc` even after the owning store is gone.
    swallowed_sync_errors: AtomicU64,
}

impl IoStats {
    /// Creates a fresh, zeroed counter set behind an `Arc`.
    pub fn new_shared() -> Arc<IoStats> {
        Arc::new(IoStats::default())
    }

    /// Records a logical node read (one "node access" in the paper's model).
    pub fn record_node_read(&self) {
        self.node_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a logical node write.
    pub fn record_node_write(&self) {
        self.node_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a physical page read (cache miss reaching the backing store).
    pub fn record_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a physical page write.
    pub fn record_physical_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one durability barrier (an `fsync`/`fdatasync` on the backing
    /// store, or its no-op equivalent on an in-memory store). Not a node
    /// access — the paper's cost model does not charge for it — but the
    /// quantity group commit exists to amortize, so benches report it as
    /// fsyncs-per-op.
    pub fn record_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one write-ahead-log record append of `bytes` framed bytes.
    pub fn record_wal_append(&self, bytes: u64) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one durability barrier on a write-ahead log — the fsync that
    /// acknowledges a durable write. Callers also record the generic
    /// [`IoStats::record_sync`] barrier so total fsync accounting stays
    /// uniform; this counter isolates the ack-path share.
    pub fn record_wal_sync(&self) {
        self.wal_syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a sync/flush error a `Drop` implementation had to swallow.
    pub fn record_swallowed_sync_error(&self) {
        self.swallowed_sync_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Sync/flush errors swallowed by `Drop` paths so far. Zero on a healthy
    /// store; a non-zero value after teardown means a durability barrier
    /// failed where no caller could observe it.
    pub fn swallowed_sync_errors(&self) -> u64 {
        self.swallowed_sync_errors.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            node_reads: self.node_reads.load(Ordering::Relaxed),
            node_writes: self.node_writes.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.node_reads.store(0, Ordering::Relaxed);
        self.node_writes.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.syncs.store(0, Ordering::Relaxed);
        self.wal_appends.store(0, Ordering::Relaxed);
        self.wal_bytes.store(0, Ordering::Relaxed);
        self.wal_syncs.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`] counters; supports delta arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use = "a snapshot is only meaningful when compared or reported; dropping it is a lost measurement"]
pub struct IoSnapshot {
    /// Logical node reads ("node accesses" in the paper).
    pub node_reads: u64,
    /// Logical node writes.
    pub node_writes: u64,
    /// Physical page reads that reached the backing store.
    pub physical_reads: u64,
    /// Physical page writes that reached the backing store.
    pub physical_writes: u64,
    /// Buffer-pool hits.
    pub cache_hits: u64,
    /// Buffer-pool misses.
    pub cache_misses: u64,
    /// Durability barriers (`fsync`/`fdatasync`) issued against the store.
    pub syncs: u64,
    /// Write-ahead-log record appends.
    pub wal_appends: u64,
    /// Framed bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Durability barriers issued against the write-ahead log — the fsyncs
    /// that acknowledge durable writes (a subset of [`IoSnapshot::syncs`]).
    pub wal_syncs: u64,
}

impl IoSnapshot {
    /// Component-wise difference `self - earlier` (saturating).
    pub fn delta_since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            node_reads: self.node_reads.saturating_sub(earlier.node_reads),
            node_writes: self.node_writes.saturating_sub(earlier.node_writes),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            syncs: self.syncs.saturating_sub(earlier.syncs),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            wal_syncs: self.wal_syncs.saturating_sub(earlier.wal_syncs),
        }
    }

    /// Total logical node accesses (reads + writes) — the quantity the paper
    /// charges for.
    pub fn node_accesses(&self) -> u64 {
        self.node_reads + self.node_writes
    }

    /// Component-wise sum `self + other` (used to aggregate the counters of
    /// several stores belonging to the same logical party, e.g. one store per
    /// shard).
    pub fn accumulate(&mut self, other: &IoSnapshot) {
        self.node_reads += other.node_reads;
        self.node_writes += other.node_writes;
        self.physical_reads += other.physical_reads;
        self.physical_writes += other.physical_writes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.syncs += other.syncs;
        self.wal_appends += other.wal_appends;
        self.wal_bytes += other.wal_bytes;
        self.wal_syncs += other.wal_syncs;
    }
}

/// The charging scheme of the paper's evaluation (§IV).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Milliseconds charged per node access. The paper uses 10 ms.
    pub ms_per_node_access: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ms_per_node_access: 10.0,
        }
    }
}

impl CostModel {
    /// The paper's configuration: 10 ms per node access.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A cost model that charges nothing (useful to isolate CPU-only costs).
    pub fn free() -> Self {
        CostModel {
            ms_per_node_access: 0.0,
        }
    }

    /// Charged milliseconds for a counter delta.
    pub fn charge_ms(&self, delta: &IoSnapshot) -> f64 {
        delta.node_accesses() as f64 * self.ms_per_node_access
    }

    /// Charged milliseconds for an explicit number of node accesses.
    pub fn charge_accesses_ms(&self, accesses: u64) -> f64 {
        accesses as f64 * self.ms_per_node_access
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = IoStats::new_shared();
        stats.record_node_read();
        stats.record_node_read();
        stats.record_node_write();
        stats.record_physical_read();
        stats.record_cache_hit();
        stats.record_cache_miss();
        let snap = stats.snapshot();
        assert_eq!(snap.node_reads, 2);
        assert_eq!(snap.node_writes, 1);
        assert_eq!(snap.physical_reads, 1);
        assert_eq!(snap.physical_writes, 0);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.node_accesses(), 3);
    }

    #[test]
    fn delta_since_subtracts_componentwise() {
        let stats = IoStats::new_shared();
        stats.record_node_read();
        let before = stats.snapshot();
        stats.record_node_read();
        stats.record_node_read();
        stats.record_node_write();
        let after = stats.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.node_reads, 2);
        assert_eq!(delta.node_writes, 1);
        assert_eq!(delta.node_accesses(), 3);
    }

    #[test]
    fn accumulate_sums_componentwise() {
        let mut acc = IoSnapshot {
            node_reads: 1,
            cache_hits: 2,
            ..Default::default()
        };
        acc.accumulate(&IoSnapshot {
            node_reads: 3,
            node_writes: 4,
            cache_misses: 5,
            ..Default::default()
        });
        assert_eq!(acc.node_reads, 4);
        assert_eq!(acc.node_writes, 4);
        assert_eq!(acc.cache_hits, 2);
        assert_eq!(acc.cache_misses, 5);
        assert_eq!(acc.node_accesses(), 8);
    }

    #[test]
    fn reset_zeroes_counters() {
        let stats = IoStats::new_shared();
        stats.record_node_read();
        stats.record_sync();
        stats.reset();
        assert_eq!(stats.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn syncs_are_counted_but_not_charged_as_node_accesses() {
        let stats = IoStats::new_shared();
        stats.record_node_read();
        stats.record_sync();
        stats.record_sync();
        let snap = stats.snapshot();
        assert_eq!(snap.syncs, 2);
        assert_eq!(snap.node_accesses(), 1);
        assert_eq!(CostModel::paper().charge_ms(&snap), 10.0);
        // Delta and accumulate carry the counter like any other.
        let mut acc = snap;
        acc.accumulate(&snap);
        assert_eq!(acc.syncs, 4);
        assert_eq!(snap.delta_since(&IoSnapshot::default()).syncs, 2);
    }

    #[test]
    fn wal_counters_flow_through_snapshot_delta_and_accumulate() {
        let stats = IoStats::new_shared();
        stats.record_wal_append(128);
        stats.record_wal_append(64);
        stats.record_wal_sync();
        let snap = stats.snapshot();
        assert_eq!(snap.wal_appends, 2);
        assert_eq!(snap.wal_bytes, 192);
        assert_eq!(snap.wal_syncs, 1);
        // WAL traffic is not a node access and charges nothing.
        assert_eq!(snap.node_accesses(), 0);
        assert_eq!(CostModel::paper().charge_ms(&snap), 0.0);
        let mut acc = snap;
        acc.accumulate(&snap);
        assert_eq!(acc.wal_appends, 4);
        assert_eq!(acc.wal_bytes, 384);
        assert_eq!(snap.delta_since(&IoSnapshot::default()).wal_syncs, 1);
        stats.reset();
        assert_eq!(stats.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn swallowed_sync_errors_survive_outside_the_snapshot() {
        let stats = IoStats::new_shared();
        assert_eq!(stats.swallowed_sync_errors(), 0);
        stats.record_swallowed_sync_error();
        stats.record_swallowed_sync_error();
        assert_eq!(stats.swallowed_sync_errors(), 2);
        // Not an I/O quantity: the snapshot stays clean.
        assert_eq!(stats.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn paper_cost_model_charges_10ms_per_access() {
        let model = CostModel::paper();
        let delta = IoSnapshot {
            node_reads: 7,
            node_writes: 3,
            ..Default::default()
        };
        assert_eq!(model.charge_ms(&delta), 100.0);
        assert_eq!(model.charge_accesses_ms(5), 50.0);
        assert_eq!(CostModel::free().charge_ms(&delta), 0.0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let stats = IoStats::new_shared();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let st = Arc::clone(&stats);
                s.spawn(move || {
                    for _ in 0..1000 {
                        st.record_node_read();
                    }
                });
            }
        });
        assert_eq!(stats.snapshot().node_reads, 4000);
    }
}
