//! Atomic whole-file replacement: the temp + write + fsync + rename idiom.
//!
//! Both the manifest save and the WAL segment rotation need the same
//! guarantee: after a crash at *any* point, the path holds either the old
//! bytes or the new bytes in full — never a torn mixture, never nothing.
//! POSIX gives exactly that from `rename(2)` over a fully-synced temp file;
//! [`atomic_replace`] is the one shared implementation of the idiom so the
//! two call sites cannot drift apart.

use crate::error::StorageResult;
use std::path::Path;

/// Atomically replaces the file at `path` with `bytes`.
///
/// The new content is written to a sibling temp file (`path` with an
/// extension of `.tmp`), synced to stable storage, and renamed over `path`;
/// the parent directory is then synced (best effort) so the rename itself
/// survives a crash. Any pre-existing file at `path` is untouched until the
/// rename, so a reader can never observe a partial write.
pub fn atomic_replace<P: AsRef<Path>>(path: P, bytes: &[u8]) -> StorageResult<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Directory sync is best effort: some filesystems refuse to open a
    // directory for writing, and the rename is already ordered after the
    // temp file's sync.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            dir.sync_all()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_a_new_file_when_none_exists() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("fresh.bin");
        atomic_replace(&path, b"hello").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        // The temp file is gone after the rename.
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn replaces_existing_content_in_full() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("swap.bin");
        atomic_replace(&path, &vec![0xAAu8; 8192]).unwrap();
        atomic_replace(&path, b"short").unwrap();
        // The replacement is complete: no tail of the longer old content
        // survives the rename.
        assert_eq!(std::fs::read(&path).unwrap(), b"short");
    }

    #[test]
    fn empty_replacement_truncates() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("trunc.bin");
        atomic_replace(&path, b"old bytes").unwrap();
        atomic_replace(&path, b"").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"");
    }

    #[test]
    fn missing_parent_directory_is_an_error() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("no-such-dir").join("x.bin");
        assert!(atomic_replace(&path, b"x").is_err());
    }

    #[test]
    fn leftover_temp_file_from_a_crash_is_overwritten() {
        // A crash between the temp write and the rename leaves `<path>.tmp`
        // behind; the next replacement must simply overwrite it.
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        std::fs::write(path.with_extension("tmp"), b"torn garbage").unwrap();
        atomic_replace(&path, b"good").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"good");
        assert!(!path.with_extension("tmp").exists());
    }
}
