//! Concurrency tests for the storage layer: N threads hammering one
//! [`CachedPager`] must never lose a write, must keep the hit/miss accounting
//! consistent with the logical access counters, and must still flush every
//! dirty page on drop.

use sae_storage::{CachedPager, MemPager, Page, PageId, PageStore, SharedPageStore};
use std::sync::Arc;

const THREADS: u64 = 8;
const ROUNDS: u64 = 200;

/// Each thread owns a disjoint set of pages and repeatedly writes a
/// round-stamped value and reads it back through the shared cache. A small
/// capacity forces constant eviction traffic between the threads.
#[test]
fn hammering_one_cache_loses_no_writes() {
    let inner: SharedPageStore = MemPager::new_shared();
    let cache = Arc::new(CachedPager::new(Arc::clone(&inner), 16));

    let pages: Vec<Vec<PageId>> = (0..THREADS)
        .map(|_| (0..4).map(|_| cache.allocate().unwrap()).collect())
        .collect();

    std::thread::scope(|scope| {
        for (t, my_pages) in pages.iter().enumerate() {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for (i, &id) in my_pages.iter().enumerate() {
                        let stamp = (t as u64) << 32 | round << 8 | i as u64;
                        let mut page = Page::new();
                        page.write_u64(0, stamp);
                        cache.write(id, &page).unwrap();
                        // Read-your-writes must hold even under eviction
                        // pressure from the other threads.
                        assert_eq!(cache.read(id).unwrap().read_u64(0), stamp);
                    }
                }
            });
        }
    });

    // Final state: every page carries its last stamp, both through the cache
    // and (after a flush) in the backing store.
    cache.flush().unwrap();
    for (t, my_pages) in pages.iter().enumerate() {
        for (i, &id) in my_pages.iter().enumerate() {
            let expected = (t as u64) << 32 | (ROUNDS - 1) << 8 | i as u64;
            assert_eq!(cache.read(id).unwrap().read_u64(0), expected);
            assert_eq!(inner.read(id).unwrap().read_u64(0), expected);
        }
    }
}

/// Every logical access is classified as exactly one hit or miss, even when
/// the classifying and the counting race against other threads.
#[test]
fn hit_miss_accounting_stays_consistent_under_concurrency() {
    let cache = Arc::new(CachedPager::new(MemPager::new_shared(), 8));
    let ids: Vec<PageId> = (0..32).map(|_| cache.allocate().unwrap()).collect();
    // Materialize every page once so reads never observe an unwritten page.
    for &id in &ids {
        cache.write(id, &Page::new()).unwrap();
    }

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let ids = &ids;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let id = ids[((t * 7 + round) % ids.len() as u64) as usize];
                    if (t + round) % 3 == 0 {
                        let mut page = Page::new();
                        page.write_u64(8, round);
                        cache.write(id, &page).unwrap();
                    } else {
                        cache.read(id).unwrap();
                    }
                }
            });
        }
    });

    let snap = cache.stats().snapshot();
    assert_eq!(
        snap.cache_hits + snap.cache_misses,
        snap.node_reads + snap.node_writes,
        "{snap:?}"
    );
    assert_eq!(snap.node_reads + snap.node_writes, 32 + THREADS * ROUNDS);
    // With 8 cache slots for 32 pages there must be real miss traffic, and
    // with heavy re-use there must be hits too.
    assert!(snap.cache_misses > 0);
    assert!(snap.cache_hits > 0);
}

/// Dropping the cache after concurrent writers still flushes every dirty page.
#[test]
fn flush_on_drop_survives_concurrent_writers() {
    let inner: SharedPageStore = MemPager::new_shared();
    let ids: Vec<PageId>;
    {
        let cache = Arc::new(CachedPager::new(Arc::clone(&inner), 64));
        ids = (0..THREADS * 4)
            .map(|_| cache.allocate().unwrap())
            .collect();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                let ids = &ids;
                scope.spawn(move || {
                    for i in 0..4 {
                        let id = ids[(t * 4 + i) as usize];
                        let mut page = Page::new();
                        page.write_u64(16, t * 1000 + i);
                        cache.write(id, &page).unwrap();
                    }
                });
            }
        });
        let last = Arc::try_unwrap(cache);
        assert!(last.is_ok(), "all worker clones joined");
        // `last` dropped here: Drop must write back all dirty pages.
    }
    for t in 0..THREADS {
        for i in 0..4 {
            let id = ids[(t * 4 + i) as usize];
            assert_eq!(inner.read(id).unwrap().read_u64(16), t * 1000 + i);
        }
    }
}
