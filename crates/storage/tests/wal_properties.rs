//! Property-based tests for the WAL frame codec and the torn-tail scan.
//!
//! The recovery guarantee the commit pipeline leans on is exactly this:
//! whatever happened to the tail of the log — truncation at any byte,
//! arbitrary bit flips, or pure garbage — [`sae_storage::wal::scan_log`]
//! returns the longest valid committed prefix, never panics, and never
//! fabricates a transaction that was not fully appended.

use proptest::prelude::*;
use sae_storage::wal::{decode_frame, encode_frame, scan_log, WalRecord};
use sae_storage::{Page, PageId, Party, ShardMeta, TreeMeta, PAGE_SIZE};

/// One transaction's inputs: its page after-images plus committed metadata.
type TxSpec = (Vec<(Party, PageId, Page)>, ShardMeta);

fn arb_tree_meta() -> impl Strategy<Value = TreeMeta> {
    (any::<u64>(), 1u32..16, any::<u64>(), any::<u64>()).prop_map(|(root, height, len, nodes)| {
        TreeMeta {
            root: PageId(root),
            height,
            len,
            node_count: nodes,
        }
    })
}

fn arb_shard_meta(epoch: u64) -> impl Strategy<Value = ShardMeta> {
    (
        any::<u32>(),
        arb_tree_meta(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        arb_tree_meta(),
        prop::array::uniform20(any::<u8>()),
    )
        .prop_map(
            move |(upper, sp_index, (records, pages, head), te_tree, te_digest)| ShardMeta {
                upper,
                epoch,
                sp_index,
                heap_record_count: records,
                heap_page_count: pages,
                heap_dir_head: PageId(head),
                te_tree,
                te_digest,
            },
        )
}

/// A page built from a handful of scattered u64 writes — cheap to generate,
/// still exercises arbitrary content under the CRC.
fn arb_page() -> impl Strategy<Value = Page> {
    prop::collection::vec((0usize..PAGE_SIZE - 8, any::<u64>()), 0..6).prop_map(|writes| {
        let mut page = Page::new();
        for (at, value) in writes {
            page.write_u64(at, value);
        }
        page
    })
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    (
        0u8..5,
        any::<u64>(),
        any::<u64>(),
        arb_page(),
        arb_shard_meta(3),
    )
        .prop_map(|(kind, a, b, page, meta)| match kind {
            0 => WalRecord::Seg { base_epoch: a },
            1 => WalRecord::Begin { epoch: a },
            2 => WalRecord::PageImage {
                party: if b % 2 == 0 { Party::Sp } else { Party::Te },
                page_id: PageId(a),
                image: Box::new(page),
            },
            3 => WalRecord::HeapDirEntry {
                index: a,
                page_id: PageId(b),
            },
            _ => WalRecord::Commit { meta },
        })
}

/// One committed transaction's frames plus its scan-visible epoch.
fn tx_bytes(epoch: u64, pages: &[(Party, PageId, Page)], meta: ShardMeta) -> Vec<u8> {
    let mut out = encode_frame(&WalRecord::Begin { epoch });
    for (party, page_id, image) in pages {
        out.extend(encode_frame(&WalRecord::PageImage {
            party: *party,
            page_id: *page_id,
            image: Box::new(image.clone()),
        }));
        out.extend(encode_frame(&WalRecord::HeapDirEntry {
            index: page_id.0,
            page_id: *page_id,
        }));
    }
    out.extend(encode_frame(&WalRecord::Commit { meta }));
    out
}

/// A committed log of `n` transactions starting after `base`, returning the
/// full byte image plus each transaction's end offset.
fn committed_log(base: u64, txs: &[TxSpec]) -> (Vec<u8>, Vec<usize>) {
    let mut log = encode_frame(&WalRecord::Seg { base_epoch: base });
    let mut ends = Vec::new();
    for (i, (pages, meta)) in txs.iter().enumerate() {
        let mut meta = meta.clone();
        meta.epoch = base + 1 + i as u64;
        log.extend(tx_bytes(meta.epoch, pages, meta));
        ends.push(log.len());
    }
    (log, ends)
}

fn arb_committed_log() -> impl Strategy<Value = (Vec<u8>, Vec<usize>, u64)> {
    (
        0u64..100,
        prop::collection::vec(
            (
                prop::collection::vec((any::<bool>(), 1u64..64, arb_page()), 0..3),
                arb_shard_meta(0),
            ),
            1..5,
        ),
    )
        .prop_map(|(base, raw)| {
            let txs: Vec<TxSpec> = raw
                .into_iter()
                .map(|(pages, meta)| {
                    (
                        pages
                            .into_iter()
                            .map(|(sp, id, page)| {
                                (if sp { Party::Sp } else { Party::Te }, PageId(id), page)
                            })
                            .collect(),
                        meta,
                    )
                })
                .collect();
            let (log, ends) = committed_log(base, &txs);
            (log, ends, base)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // --- Frame codec --------------------------------------------------------

    #[test]
    fn frames_round_trip(record in arb_record()) {
        let frame = encode_frame(&record);
        let (decoded, consumed) = decode_frame(&frame).expect("own frames decode");
        prop_assert_eq!(&decoded, &record);
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn any_single_byte_corruption_kills_the_frame(
        record in arb_record(),
        at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut frame = encode_frame(&record);
        let at = (at as usize) % frame.len();
        frame[at] ^= flip;
        // Either the frame is rejected outright, or (a flip in the length
        // field) it no longer frames the same record at the same length.
        if let Some((decoded, consumed)) = decode_frame(&frame) {
            prop_assert!(decoded != record || consumed != frame.len());
        }
    }

    // --- Torn-tail scans ----------------------------------------------------

    #[test]
    fn full_logs_scan_completely((log, ends, base) in arb_committed_log()) {
        let (seg, txs) = scan_log(&log);
        prop_assert_eq!(seg.expect("segment header present").base_epoch, base);
        prop_assert_eq!(txs.len(), ends.len());
        for (i, tx) in txs.iter().enumerate() {
            prop_assert_eq!(tx.epoch, base + 1 + i as u64);
            prop_assert_eq!(tx.meta.epoch, tx.epoch);
        }
    }

    #[test]
    fn truncation_anywhere_yields_the_committed_prefix(
        (log, ends, _base) in arb_committed_log(),
        cut in any::<u64>(),
    ) {
        let cut = (cut as usize) % (log.len() + 1);
        let (_, full) = scan_log(&log);
        let (_, txs) = scan_log(&log[..cut]);
        // Exactly the transactions whose bytes fully precede the cut.
        let expected = ends.iter().filter(|&&end| end <= cut).count();
        prop_assert_eq!(txs.len(), expected);
        prop_assert_eq!(&txs[..], &full[..expected]);
    }

    #[test]
    fn a_bit_flip_never_yields_a_fabricated_suffix(
        (log, ends, _base) in arb_committed_log(),
        at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let at = (at as usize) % log.len();
        let mut damaged = log.clone();
        damaged[at] ^= flip;
        let (_, full) = scan_log(&log);
        let (_, txs) = scan_log(&damaged);
        // The flip invalidates the frame holding that byte, so the scan
        // keeps at most the transactions entirely before it — and whatever
        // it keeps is a verbatim prefix of the undamaged log's result.
        let before = ends.iter().filter(|&&end| end <= at).count();
        prop_assert!(txs.len() <= before);
        prop_assert_eq!(&txs[..], &full[..txs.len()]);
    }

    #[test]
    fn garbage_never_panics_and_never_commits(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let (seg, txs) = scan_log(&bytes);
        // Random bytes essentially never frame a valid CRC'd record; at
        // minimum the scan stays structurally sound.
        if seg.is_none() {
            prop_assert!(txs.is_empty());
        }
        for pair in txs.windows(2) {
            prop_assert!(pair[0].epoch <= pair[1].epoch);
        }
    }

    #[test]
    fn garbage_appended_to_a_log_is_ignored(
        (log, ends, _base) in arb_committed_log(),
        tail in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut extended = log.clone();
        extended.extend_from_slice(&tail);
        let (_, full) = scan_log(&log);
        let (_, txs) = scan_log(&extended);
        // The appended garbage can only extend the log if it happens to
        // frame valid records (CRC makes that astronomically unlikely);
        // committed transactions are never lost.
        prop_assert!(txs.len() >= ends.len());
        prop_assert_eq!(&txs[..full.len()], &full[..]);
    }
}
