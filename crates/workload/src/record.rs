//! The record model shared by every entity in the system.
//!
//! A [`Record`] is one row of the outsourced relation `R`: a unique id, the
//! value of the query attribute (`r.a`, the *search key*) and the remaining
//! attributes modelled as an opaque payload that pads the record to its fixed
//! size (500 bytes in the evaluation). The canonical binary encoding produced
//! by [`Record::encode`] is what gets hashed — the paper computes record
//! digests "on the binary representation of r".
//!
//! A [`TeTuple`] is the reduced tuple `t = <id, a, h>` the trusted entity
//! keeps for each record (§II).

use sae_crypto::{Digest, HashAlgorithm};
use serde::{Deserialize, Serialize};

/// The search-key type (4-byte integer, as in the paper).
pub type RecordKey = u32;

/// Number of bytes of fixed header in the encoding (id + key).
pub const RECORD_HEADER_LEN: usize = 8 + 4;

/// One record of the outsourced relation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Unique record identifier (`t.id` refers back to this).
    pub id: u64,
    /// Value of the query attribute (the search key `r.a`).
    pub key: RecordKey,
    /// All remaining attributes, serialized; pads the record to its fixed size.
    pub payload: Vec<u8>,
}

impl Record {
    /// Creates a record with the given payload.
    pub fn new(id: u64, key: RecordKey, payload: Vec<u8>) -> Self {
        Record { id, key, payload }
    }

    /// Creates a record padded with a deterministic pseudo-payload so that the
    /// encoded record is exactly `record_size` bytes.
    ///
    /// Panics if `record_size` is smaller than the fixed header.
    pub fn with_size(id: u64, key: RecordKey, record_size: usize) -> Self {
        assert!(
            record_size >= RECORD_HEADER_LEN,
            "record size {record_size} smaller than header {RECORD_HEADER_LEN}"
        );
        let payload_len = record_size - RECORD_HEADER_LEN;
        // Deterministic filler derived from the id so two different records
        // never share a payload byte-for-byte by accident.
        let mut payload = Vec::with_capacity(payload_len);
        let mut state = id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key as u64);
        while payload.len() < payload_len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            payload.extend_from_slice(&state.to_le_bytes());
        }
        payload.truncate(payload_len);
        Record { id, key, payload }
    }

    /// Total encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER_LEN + self.payload.len()
    }

    /// Canonical binary encoding: `id (8 LE) || key (4 LE) || payload`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes a record from its canonical encoding.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < RECORD_HEADER_LEN {
            return None;
        }
        let id = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let key = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
        Some(Record {
            id,
            key,
            payload: bytes[RECORD_HEADER_LEN..].to_vec(),
        })
    }

    /// The record digest `h = H(binary representation of r)`.
    pub fn digest(&self, alg: HashAlgorithm) -> Digest {
        alg.hash(&self.encode())
    }

    /// The reduced tuple the trusted entity stores for this record.
    pub fn te_tuple(&self, alg: HashAlgorithm) -> TeTuple {
        TeTuple {
            id: self.id,
            key: self.key,
            digest: self.digest(alg),
        }
    }
}

/// The tuple `t = <t.id, t.a, t.h>` maintained by the trusted entity (§II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TeTuple {
    /// The unique identifier of the corresponding record.
    pub id: u64,
    /// The value of the query attribute of the corresponding record.
    pub key: RecordKey,
    /// The digest of the binary representation of the corresponding record.
    pub digest: Digest,
}

impl TeTuple {
    /// Size in bytes of the information the TE keeps per record
    /// (id + key + digest) — used in the storage-cost experiment (Fig. 8).
    pub const STORED_SIZE: usize = 8 + 4 + sae_crypto::DIGEST_LEN;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_size_produces_exact_encoded_length() {
        for size in [12usize, 100, 500, 777] {
            let r = Record::with_size(42, 1234, size);
            assert_eq!(r.encode().len(), size);
            assert_eq!(r.encoded_len(), size);
        }
    }

    #[test]
    #[should_panic(expected = "smaller than header")]
    fn with_size_rejects_tiny_records() {
        let _ = Record::with_size(1, 1, 4);
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = Record::new(7, 250, b"Canon SD850 IS".to_vec());
        let decoded = Record::decode(&r.encode()).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn decode_rejects_short_buffers() {
        assert!(Record::decode(&[0u8; 11]).is_none());
        assert!(Record::decode(&[]).is_none());
        // Exactly the header is a valid empty-payload record.
        let r = Record::decode(&[0u8; 12]).unwrap();
        assert!(r.payload.is_empty());
    }

    #[test]
    fn encoding_layout_is_id_key_payload() {
        let r = Record::new(0x0102030405060708, 0xAABBCCDD, vec![0xEE, 0xFF]);
        let enc = r.encode();
        assert_eq!(&enc[0..8], &0x0102030405060708u64.to_le_bytes());
        assert_eq!(&enc[8..12], &0xAABBCCDDu32.to_le_bytes());
        assert_eq!(&enc[12..], &[0xEE, 0xFF]);
    }

    #[test]
    fn digest_depends_on_every_field() {
        let alg = HashAlgorithm::Sha1;
        let base = Record::with_size(1, 100, 64);
        let mut other_id = base.clone();
        other_id.id = 2;
        let mut other_key = base.clone();
        other_key.key = 101;
        let mut other_payload = base.clone();
        other_payload.payload[0] ^= 1;
        assert_ne!(base.digest(alg), other_id.digest(alg));
        assert_ne!(base.digest(alg), other_key.digest(alg));
        assert_ne!(base.digest(alg), other_payload.digest(alg));
    }

    #[test]
    fn digest_is_deterministic_across_algorithms() {
        let r = Record::with_size(9, 500_000, 500);
        assert_eq!(r.digest(HashAlgorithm::Sha1), r.digest(HashAlgorithm::Sha1));
        assert_ne!(
            r.digest(HashAlgorithm::Sha1),
            r.digest(HashAlgorithm::Sha256)
        );
    }

    #[test]
    fn te_tuple_mirrors_record_fields() {
        let r = Record::with_size(33, 777, 500);
        let t = r.te_tuple(HashAlgorithm::Sha1);
        assert_eq!(t.id, 33);
        assert_eq!(t.key, 777);
        assert_eq!(t.digest, r.digest(HashAlgorithm::Sha1));
        assert_eq!(TeTuple::STORED_SIZE, 32);
    }

    #[test]
    fn with_size_payloads_differ_between_records() {
        let a = Record::with_size(1, 10, 500);
        let b = Record::with_size(2, 10, 500);
        assert_ne!(a.payload, b.payload);
    }
}
