//! Search-key distributions: UNF (uniform) and SKW (Zipf, θ = 0.8).
//!
//! The paper evaluates two datasets: *UNF*, whose search keys are uniform over
//! the domain `[0, 10^7]`, and *SKW*, whose keys follow a Zipf distribution
//! with skew parameter 0.8 so that roughly 77 % of the keys fall in 20 % of
//! the domain. Only the `rand` crate is available offline, so the Zipf sampler
//! is implemented here via inversion of the continuous approximation of the
//! Zipf CDF (accurate for large domains, which is exactly our setting).

use crate::record::RecordKey;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A search-key distribution over the domain `[0, domain]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Uniform keys (the paper's UNF dataset).
    Uniform {
        /// Inclusive upper bound of the key domain.
        domain: RecordKey,
    },
    /// Zipf-distributed keys (the paper's SKW dataset).
    Zipf {
        /// Inclusive upper bound of the key domain.
        domain: RecordKey,
        /// Skew parameter θ (0 = uniform, larger = more skew). The paper uses 0.8.
        theta: f64,
    },
}

impl KeyDistribution {
    /// The paper's UNF distribution over the standard domain.
    pub fn unf() -> Self {
        KeyDistribution::Uniform {
            domain: crate::paper::KEY_DOMAIN,
        }
    }

    /// The paper's SKW distribution over the standard domain.
    pub fn skw() -> Self {
        KeyDistribution::Zipf {
            domain: crate::paper::KEY_DOMAIN,
            theta: crate::paper::ZIPF_THETA,
        }
    }

    /// The inclusive upper bound of the key domain.
    pub fn domain(&self) -> RecordKey {
        match self {
            KeyDistribution::Uniform { domain } => *domain,
            KeyDistribution::Zipf { domain, .. } => *domain,
        }
    }

    /// Short name used in experiment reports ("UNF"/"SKW").
    pub fn name(&self) -> &'static str {
        match self {
            KeyDistribution::Uniform { .. } => "UNF",
            KeyDistribution::Zipf { .. } => "SKW",
        }
    }

    /// Samples one search key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> RecordKey {
        match self {
            KeyDistribution::Uniform { domain } => rng.gen_range(0..=*domain),
            KeyDistribution::Zipf { domain, theta } => {
                sample_zipf(*domain as u64 + 1, *theta, rng) as RecordKey
            }
        }
    }

    /// Samples `n` search keys.
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<RecordKey> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Samples a value in `[0, n)` following (approximately) a Zipf distribution
/// with exponent `theta`, using inversion of the continuous CDF
/// `F(x) ∝ x^(1-θ)`. For θ in (0, 1) and large `n` this matches the discrete
/// Zipf closely and is O(1) per sample.
fn sample_zipf<R: Rng + ?Sized>(n: u64, theta: f64, rng: &mut R) -> u64 {
    assert!(n > 0);
    assert!(
        (0.0..1.0).contains(&theta),
        "this sampler supports 0 <= theta < 1 (paper uses 0.8)"
    );
    let u: f64 = rng.gen::<f64>();
    let exp = 1.0 - theta;
    // Inverse of F(x) = (x^exp - 1) / (n^exp - 1) over x in [1, n].
    let x = (1.0 + u * ((n as f64).powf(exp) - 1.0)).powf(1.0 / exp);
    // Map rank x in [1, n] to a key in [0, n).
    (x.floor() as u64 - 1).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_and_domains() {
        assert_eq!(KeyDistribution::unf().name(), "UNF");
        assert_eq!(KeyDistribution::skw().name(), "SKW");
        assert_eq!(KeyDistribution::unf().domain(), 10_000_000);
        assert_eq!(KeyDistribution::skw().domain(), 10_000_000);
    }

    #[test]
    fn uniform_samples_stay_in_domain_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = KeyDistribution::Uniform { domain: 1000 };
        let keys = dist.sample_many(10_000, &mut rng);
        assert!(keys.iter().all(|&k| k <= 1000));
        // Coverage: both halves of the domain are hit roughly equally.
        let low = keys.iter().filter(|&&k| k <= 500).count();
        assert!((4000..6000).contains(&low), "low half count {low}");
    }

    #[test]
    fn zipf_samples_stay_in_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = KeyDistribution::Zipf {
            domain: 9_999,
            theta: 0.8,
        };
        let keys = dist.sample_many(20_000, &mut rng);
        assert!(keys.iter().all(|&k| k <= 9_999));
    }

    #[test]
    fn zipf_is_skewed_toward_small_keys() {
        // The paper calibrates θ=0.8 as "77% of the search keys are
        // concentrated in 20% of the domain". The continuous-inversion
        // sampler should land in the same ballpark (we accept 60%–90%).
        let mut rng = StdRng::seed_from_u64(3);
        let domain: u32 = 1_000_000;
        let dist = KeyDistribution::Zipf { domain, theta: 0.8 };
        let keys = dist.sample_many(50_000, &mut rng);
        let in_first_fifth = keys
            .iter()
            .filter(|&&k| (k as f64) < domain as f64 * 0.2)
            .count() as f64
            / keys.len() as f64;
        assert!(
            (0.6..0.9).contains(&in_first_fifth),
            "fraction in first 20% of domain: {in_first_fifth}"
        );
    }

    #[test]
    fn zipf_is_more_skewed_than_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let domain: u32 = 100_000;
        let unf = KeyDistribution::Uniform { domain };
        let skw = KeyDistribution::Zipf { domain, theta: 0.8 };
        let unf_low = unf
            .sample_many(20_000, &mut rng)
            .iter()
            .filter(|&&k| (k as f64) < domain as f64 * 0.2)
            .count();
        let skw_low = skw
            .sample_many(20_000, &mut rng)
            .iter()
            .filter(|&&k| (k as f64) < domain as f64 * 0.2)
            .count();
        assert!(skw_low > unf_low * 2);
    }

    #[test]
    fn sampling_is_deterministic_for_a_fixed_seed() {
        let a: Vec<u32> = KeyDistribution::skw().sample_many(100, &mut StdRng::seed_from_u64(7));
        let b: Vec<u32> = KeyDistribution::skw().sample_many(100, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipf_theta_out_of_range_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = KeyDistribution::Zipf {
            domain: 100,
            theta: 1.5,
        };
        let _ = dist.sample(&mut rng);
    }
}
