//! Range queries and query workloads.
//!
//! The evaluation issues 100 uniformly placed range queries per configuration,
//! each covering 0.5 % of the key domain. [`RangeQuery`] is the 1-D range
//! `[lower, upper]` (inclusive bounds, matching the paper's example "price
//! between 200 and 300 euros"), and [`QueryWorkload`] generates such workloads
//! deterministically.

use crate::record::RecordKey;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A one-dimensional range query `q:[ql, qu]` with inclusive bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RangeQuery {
    /// Lower bound `ql` (inclusive).
    pub lower: RecordKey,
    /// Upper bound `qu` (inclusive).
    pub upper: RecordKey,
}

impl RangeQuery {
    /// Creates a query, normalizing reversed bounds.
    pub fn new(lower: RecordKey, upper: RecordKey) -> Self {
        if lower <= upper {
            RangeQuery { lower, upper }
        } else {
            RangeQuery {
                lower: upper,
                upper: lower,
            }
        }
    }

    /// Whether `key` satisfies the query.
    pub fn contains(&self, key: RecordKey) -> bool {
        self.lower <= key && key <= self.upper
    }

    /// The extent (width) of the query range.
    pub fn extent(&self) -> u64 {
        self.upper as u64 - self.lower as u64
    }
}

impl std::fmt::Display for RangeQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lower, self.upper)
    }
}

/// A deterministic workload of uniformly placed fixed-extent range queries.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// The queries, in issue order.
    pub queries: Vec<RangeQuery>,
}

impl QueryWorkload {
    /// Generates `count` queries over `[0, domain]`, each with an extent equal
    /// to `extent_fraction` of the domain, placed uniformly at random.
    pub fn uniform(
        count: usize,
        domain: RecordKey,
        extent_fraction: f64,
        seed: u64,
    ) -> QueryWorkload {
        assert!(
            (0.0..=1.0).contains(&extent_fraction),
            "extent fraction must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let extent = ((domain as f64) * extent_fraction).round() as u64;
        let max_start = domain as u64 - extent;
        let queries = (0..count)
            .map(|_| {
                let start = rng.gen_range(0..=max_start);
                RangeQuery::new(start as RecordKey, (start + extent) as RecordKey)
            })
            .collect();
        QueryWorkload { queries }
    }

    /// The paper's workload: 100 queries, 0.5 % extent, standard domain.
    pub fn paper(seed: u64) -> QueryWorkload {
        QueryWorkload::uniform(
            crate::paper::QUERIES_PER_EXPERIMENT,
            crate::paper::KEY_DOMAIN,
            crate::paper::QUERY_EXTENT_FRACTION,
            seed,
        )
    }

    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates over the queries.
    pub fn iter(&self) -> impl Iterator<Item = &RangeQuery> {
        self.queries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_reversed_bounds() {
        let q = RangeQuery::new(300, 200);
        assert_eq!(q.lower, 200);
        assert_eq!(q.upper, 300);
        assert_eq!(q.extent(), 100);
    }

    #[test]
    fn contains_uses_inclusive_bounds() {
        let q = RangeQuery::new(200, 300);
        assert!(q.contains(200));
        assert!(q.contains(300));
        assert!(q.contains(250));
        assert!(!q.contains(199));
        assert!(!q.contains(301));
    }

    #[test]
    fn display_shows_bounds() {
        assert_eq!(RangeQuery::new(5, 17).to_string(), "[5, 17]");
    }

    #[test]
    fn uniform_workload_respects_domain_and_extent() {
        let wl = QueryWorkload::uniform(500, 1_000_000, 0.005, 42);
        assert_eq!(wl.len(), 500);
        for q in wl.iter() {
            assert_eq!(q.extent(), 5_000);
            assert!(q.upper <= 1_000_000);
        }
    }

    #[test]
    fn paper_workload_has_paper_parameters() {
        let wl = QueryWorkload::paper(1);
        assert_eq!(wl.len(), 100);
        for q in wl.iter() {
            assert_eq!(q.extent(), 50_000); // 0.5% of 10^7
            assert!(q.upper <= 10_000_000);
        }
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        assert_eq!(QueryWorkload::paper(9), QueryWorkload::paper(9));
        assert_ne!(QueryWorkload::paper(9), QueryWorkload::paper(10));
    }

    #[test]
    fn query_starts_are_spread_over_the_domain() {
        let wl = QueryWorkload::uniform(1000, 1_000_000, 0.001, 3);
        let in_upper_half = wl.iter().filter(|q| q.lower > 500_000).count();
        assert!((350..650).contains(&in_upper_half));
    }

    #[test]
    #[should_panic(expected = "extent fraction")]
    fn invalid_extent_fraction_is_rejected() {
        let _ = QueryWorkload::uniform(1, 100, 1.5, 0);
    }

    #[test]
    fn zero_count_gives_empty_workload() {
        let wl = QueryWorkload::uniform(0, 100, 0.1, 0);
        assert!(wl.is_empty());
    }
}
