//! Dataset specification and generation.
//!
//! A [`DatasetSpec`] captures one experimental configuration (cardinality,
//! key distribution, record size, RNG seed); [`Dataset`] is the materialized
//! relation `R`. Generation is deterministic, so the data owner, the brute
//! force oracle used in tests and the benchmark harness all see identical
//! data for the same spec.

use crate::distribution::KeyDistribution;
use crate::query::RangeQuery;
use crate::record::{Record, RecordKey};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The full description of a synthetic dataset.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of records (`n` in the paper's figures).
    pub cardinality: usize,
    /// Search-key distribution (UNF or SKW).
    pub distribution: KeyDistribution,
    /// Encoded record size in bytes (500 in the paper).
    pub record_size: usize,
    /// RNG seed; the same spec always yields the same dataset.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's configuration for a given cardinality and distribution.
    pub fn paper(cardinality: usize, distribution: KeyDistribution, seed: u64) -> Self {
        DatasetSpec {
            cardinality,
            distribution,
            record_size: crate::paper::RECORD_SIZE,
            seed,
        }
    }

    /// Generates the dataset described by this spec.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let keys = self.distribution.sample_many(self.cardinality, &mut rng);
        let records = keys
            .into_iter()
            .enumerate()
            .map(|(id, key)| Record::with_size(id as u64, key, self.record_size))
            .collect();
        Dataset {
            spec: *self,
            records,
        }
    }

    /// A short, human-readable label, e.g. `UNF-100000`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.distribution.name(), self.cardinality)
    }
}

/// A materialized synthetic relation.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The spec this dataset was generated from.
    pub spec: DatasetSpec,
    /// The records, in id order (`records[i].id == i`).
    pub records: Vec<Record>,
}

impl Dataset {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// Returns the record with the given id, if present.
    pub fn get(&self, id: u64) -> Option<&Record> {
        self.records.get(id as usize)
    }

    /// Brute-force evaluation of a range query (the correctness oracle used in
    /// tests): all records whose key lies in `[q.lower, q.upper]`, ordered by
    /// `(key, id)` — the order the SP's index range-scan returns.
    pub fn query_oracle(&self, q: &RangeQuery) -> Vec<&Record> {
        let mut out: Vec<&Record> = self.records.iter().filter(|r| q.contains(r.key)).collect();
        out.sort_by_key(|r| (r.key, r.id));
        out
    }

    /// Number of records matching the query (without materializing them).
    pub fn query_cardinality(&self, q: &RangeQuery) -> usize {
        self.records.iter().filter(|r| q.contains(r.key)).count()
    }

    /// The records sorted by `(key, id)` — the bulk-load order for the SP/TE
    /// indexes.
    pub fn sorted_by_key(&self) -> Vec<&Record> {
        let mut out: Vec<&Record> = self.records.iter().collect();
        out.sort_by_key(|r| (r.key, r.id));
        out
    }

    /// Keys present in the dataset, sorted ascending (with duplicates).
    pub fn sorted_keys(&self) -> Vec<RecordKey> {
        let mut keys: Vec<RecordKey> = self.records.iter().map(|r| r.key).collect();
        keys.sort_unstable();
        keys
    }

    /// Total bytes of the encoded relation (what the DO ships to the SP).
    pub fn encoded_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.encoded_len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatasetSpec {
        DatasetSpec {
            cardinality: 1_000,
            distribution: KeyDistribution::Uniform { domain: 10_000 },
            record_size: 64,
            seed: 11,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_spec().generate();
        let b = small_spec().generate();
        assert_eq!(a.records, b.records);
        let mut other = small_spec();
        other.seed = 12;
        assert_ne!(a.records, other.generate().records);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let ds = small_spec().generate();
        assert_eq!(ds.len(), 1_000);
        for (i, r) in ds.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.encoded_len(), 64);
        }
        assert_eq!(ds.get(999).unwrap().id, 999);
        assert!(ds.get(1000).is_none());
    }

    #[test]
    fn paper_spec_uses_500_byte_records() {
        let spec = DatasetSpec::paper(100, KeyDistribution::unf(), 1);
        let ds = spec.generate();
        assert_eq!(ds.records[0].encoded_len(), 500);
        assert_eq!(ds.encoded_bytes(), 100 * 500);
        assert_eq!(spec.label(), "UNF-100");
    }

    #[test]
    fn query_oracle_matches_manual_filter() {
        let ds = small_spec().generate();
        let q = RangeQuery::new(2_000, 2_500);
        let oracle = ds.query_oracle(&q);
        assert_eq!(oracle.len(), ds.query_cardinality(&q));
        assert!(oracle.iter().all(|r| q.contains(r.key)));
        // Sorted by (key, id).
        for w in oracle.windows(2) {
            assert!((w[0].key, w[0].id) <= (w[1].key, w[1].id));
        }
        // Everything not returned is genuinely outside the range.
        let returned: std::collections::HashSet<u64> = oracle.iter().map(|r| r.id).collect();
        for r in ds.iter() {
            if !returned.contains(&r.id) {
                assert!(!q.contains(r.key));
            }
        }
    }

    #[test]
    fn sorted_views_are_sorted() {
        let ds = small_spec().generate();
        let keys = ds.sorted_keys();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let sorted = ds.sorted_by_key();
        assert!(sorted
            .windows(2)
            .all(|w| (w[0].key, w[0].id) <= (w[1].key, w[1].id)));
        assert_eq!(sorted.len(), ds.len());
    }

    #[test]
    fn skw_dataset_generates_and_respects_domain() {
        let spec = DatasetSpec {
            cardinality: 5_000,
            distribution: KeyDistribution::Zipf {
                domain: 100_000,
                theta: 0.8,
            },
            record_size: 32,
            seed: 5,
        };
        let ds = spec.generate();
        assert!(ds.iter().all(|r| r.key <= 100_000));
        assert_eq!(spec.label(), "SKW-5000");
    }

    #[test]
    fn empty_dataset_is_supported() {
        let spec = DatasetSpec {
            cardinality: 0,
            distribution: KeyDistribution::unf(),
            record_size: 500,
            seed: 0,
        };
        let ds = spec.generate();
        assert!(ds.is_empty());
        assert_eq!(ds.query_cardinality(&RangeQuery::new(0, 100)), 0);
    }
}
