//! Query mixes for concurrent client streams.
//!
//! The paper's evaluation replays one batch of uniformly placed queries; the
//! concurrent engine instead serves many clients at once, each issuing its own
//! stream. [`QueryMix`] describes *how* those queries are placed — uniformly
//! over the domain, or Zipf-skewed so a hot region of the key space absorbs
//! most of the traffic (the usual shape of real query popularity) — and
//! derives a deterministic, independently seeded stream per client so
//! multi-threaded runs stay reproducible.

use crate::distribution::KeyDistribution;
use crate::query::{QueryWorkload, RangeQuery};
use crate::record::RecordKey;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A recipe for generating range queries of a fixed extent whose placement
/// over the key domain follows a [`KeyDistribution`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryMix {
    /// How query *start* positions are placed over the domain. The
    /// distribution's own domain bound is the query domain.
    pub placement: KeyDistribution,
    /// Query extent as a fraction of the domain (the paper uses 0.5 %).
    pub extent_fraction: f64,
    /// When `Some(s)` with `s >= 2`, every query is re-centered onto one of
    /// the boundaries of an `s`-shard equal-width partition of the domain
    /// (boundary `k` starts at `k * (domain + 1) / s`), so each query
    /// deliberately spans at least two shards of such a layout. The placement
    /// distribution still decides *which* boundary a query straddles.
    pub straddle_shards: Option<usize>,
}

impl QueryMix {
    /// Uniformly placed queries over `[0, domain]`.
    pub fn uniform(domain: RecordKey, extent_fraction: f64) -> QueryMix {
        QueryMix {
            placement: KeyDistribution::Uniform { domain },
            extent_fraction,
            straddle_shards: None,
        }
    }

    /// Zipf-placed queries: most query starts land in the low-key hot region.
    pub fn zipf(domain: RecordKey, extent_fraction: f64, theta: f64) -> QueryMix {
        QueryMix {
            placement: KeyDistribution::Zipf { domain, theta },
            extent_fraction,
            straddle_shards: None,
        }
    }

    /// Uniformly placed queries that deliberately straddle the boundaries of
    /// an equal-width `shards`-way partition of `[0, domain]` (the layout
    /// `ShardLayout::uniform` in `sae-core` builds). Requires a non-zero
    /// extent to actually span; with `shards < 2` this degrades to
    /// [`QueryMix::uniform`].
    pub fn spanning(domain: RecordKey, extent_fraction: f64, shards: usize) -> QueryMix {
        QueryMix {
            placement: KeyDistribution::Uniform { domain },
            extent_fraction,
            straddle_shards: Some(shards),
        }
    }

    /// The paper's workload shape (0.5 % extent over the standard domain),
    /// uniformly placed.
    pub fn paper_uniform() -> QueryMix {
        QueryMix::uniform(
            crate::paper::KEY_DOMAIN,
            crate::paper::QUERY_EXTENT_FRACTION,
        )
    }

    /// The paper's workload shape with Zipf(θ = 0.8) placement.
    pub fn paper_zipf() -> QueryMix {
        QueryMix::zipf(
            crate::paper::KEY_DOMAIN,
            crate::paper::QUERY_EXTENT_FRACTION,
            crate::paper::ZIPF_THETA,
        )
    }

    /// The inclusive upper bound of the key domain.
    pub fn domain(&self) -> RecordKey {
        self.placement.domain()
    }

    /// The fixed query extent in key units.
    pub fn extent(&self) -> u64 {
        assert!(
            (0.0..=1.0).contains(&self.extent_fraction),
            "extent fraction must be in [0, 1]"
        );
        ((self.domain() as f64) * self.extent_fraction).round() as u64
    }

    /// An infinite, deterministic stream of queries for one seed.
    pub fn stream(&self, seed: u64) -> QueryStream {
        QueryStream {
            mix: *self,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed for `client_id`'s stream, derived so concurrent clients issue
    /// distinct (but individually reproducible) query sequences.
    pub fn client_seed(base_seed: u64, client_id: u64) -> u64 {
        base_seed ^ client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The first `count` queries of `client_id`'s stream.
    pub fn client_queries(&self, base_seed: u64, client_id: u64, count: usize) -> Vec<RangeQuery> {
        self.stream(Self::client_seed(base_seed, client_id))
            .take(count)
            .collect()
    }

    /// A finite workload drawn from one stream (for single-threaded replays).
    pub fn workload(&self, count: usize, seed: u64) -> QueryWorkload {
        QueryWorkload {
            queries: self.stream(seed).take(count).collect(),
        }
    }
}

/// Infinite iterator over a [`QueryMix`]'s queries.
pub struct QueryStream {
    mix: QueryMix,
    rng: StdRng,
}

impl Iterator for QueryStream {
    type Item = RangeQuery;

    fn next(&mut self) -> Option<RangeQuery> {
        let domain = self.mix.domain() as u64;
        let extent = self.mix.extent();
        let sampled = self.mix.placement.sample(&mut self.rng) as u64;
        let start = match self.mix.straddle_shards {
            Some(shards) if shards >= 2 => {
                // Re-center the query onto a shard boundary: boundary k is the
                // first key of shard k under the equal-width layout, so a
                // query whose lower bound falls just below it covers both
                // sides. The sampled placement picks the boundary.
                let k = 1 + sampled % (shards as u64 - 1);
                let boundary = k * (domain + 1) / shards as u64;
                boundary
                    .saturating_sub((extent / 2).max(1))
                    .min(domain - extent)
            }
            _ => sampled.min(domain - extent),
        };
        Some(RangeQuery::new(
            start as RecordKey,
            (start + extent) as RecordKey,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mix_matches_domain_and_extent() {
        let mix = QueryMix::uniform(1_000_000, 0.005);
        for q in mix.stream(3).take(500) {
            assert_eq!(q.extent(), 5_000);
            assert!(q.upper <= 1_000_000);
        }
    }

    #[test]
    fn zipf_mix_concentrates_queries_in_the_hot_region() {
        let domain = 1_000_000u32;
        let zipf = QueryMix::zipf(domain, 0.001, 0.8);
        let unf = QueryMix::uniform(domain, 0.001);
        let hot = |mix: &QueryMix| {
            mix.stream(5)
                .take(2_000)
                .filter(|q| (q.lower as f64) < domain as f64 * 0.2)
                .count()
        };
        assert!(hot(&zipf) > 2 * hot(&unf));
    }

    #[test]
    fn client_streams_are_deterministic_and_distinct() {
        let mix = QueryMix::paper_uniform();
        let a = mix.client_queries(9, 0, 50);
        let b = mix.client_queries(9, 0, 50);
        let c = mix.client_queries(9, 1, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn workload_wraps_the_stream() {
        let mix = QueryMix::paper_zipf();
        let wl = mix.workload(25, 7);
        assert_eq!(wl.len(), 25);
        assert_eq!(wl.queries, mix.stream(7).take(25).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "extent fraction")]
    fn invalid_extent_fraction_is_rejected() {
        let _ = QueryMix::uniform(100, 2.0).extent();
    }

    #[test]
    fn spanning_queries_straddle_every_layout_boundary() {
        let domain: RecordKey = 1_000_000;
        for shards in [2usize, 3, 4, 8] {
            let mix = QueryMix::spanning(domain, 0.005, shards);
            let boundaries: Vec<u64> = (1..shards as u64)
                .map(|k| k * (domain as u64 + 1) / shards as u64)
                .collect();
            let mut hit = vec![false; boundaries.len()];
            for q in mix.stream(17).take(500) {
                assert!(q.upper <= domain);
                let straddled = boundaries
                    .iter()
                    .position(|&b| ((q.lower as u64) < b) && (b <= q.upper as u64));
                let Some(i) = straddled else {
                    panic!("{shards}-shard spanning query {q} crosses no boundary");
                };
                hit[i] = true;
            }
            assert!(
                hit.iter().all(|&h| h),
                "{shards}-shard mix missed a boundary"
            );
        }
    }

    #[test]
    fn spanning_with_one_shard_degrades_to_uniform_placement() {
        let mix = QueryMix::spanning(100_000, 0.01, 1);
        let flat = QueryMix::uniform(100_000, 0.01);
        assert_eq!(
            mix.stream(3).take(50).collect::<Vec<_>>(),
            flat.stream(3).take(50).collect::<Vec<_>>()
        );
    }
}
