//! # sae-workload
//!
//! Dataset and query workload generation for the SAE evaluation.
//!
//! The paper's experiments (§IV) use synthetic relations with:
//!
//! * 4-byte integer search keys drawn from the domain `[0, 10^7]`,
//! * a total record size of 500 bytes,
//! * two key distributions — **UNF** (uniform) and **SKW** (Zipf with
//!   skew 0.8, concentrating ~77 % of the keys in 20 % of the domain),
//! * dataset cardinalities from 100 K to 1 M records, and
//! * query workloads of 100 uniformly placed range queries whose extent is
//!   0.5 % of the domain.
//!
//! This crate reproduces those generators deterministically (seeded RNG) so
//! every experiment is repeatable: [`record::Record`] and its canonical binary
//! encoding, [`dataset::DatasetSpec`]/[`dataset::Dataset`], the
//! [`distribution::KeyDistribution`] samplers and
//! [`query::QueryWorkload`]/[`query::RangeQuery`].

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod dataset;
pub mod distribution;
pub mod mix;
pub mod paper;
pub mod query;
pub mod record;

pub use dataset::{Dataset, DatasetSpec};
pub use distribution::KeyDistribution;
pub use mix::{QueryMix, QueryStream};
pub use query::{QueryWorkload, RangeQuery};
pub use record::{Record, RecordKey, TeTuple, RECORD_HEADER_LEN};
