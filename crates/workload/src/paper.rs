//! Constants of the paper's experimental setup (§IV), in one place.
//!
//! The benchmark harness and the examples read these values so that the
//! default configuration of every experiment is exactly the configuration
//! reported in the paper.

/// Size of every record in bytes ("The total record size is set to 500 bytes").
pub const RECORD_SIZE: usize = 500;

/// Upper bound of the search-key domain (keys are integers in `[0, 10^7]`).
pub const KEY_DOMAIN: u32 = 10_000_000;

/// Query extent as a fraction of the domain ("100 uniform queries with extent
/// 0.5% of the entire domain").
pub const QUERY_EXTENT_FRACTION: f64 = 0.005;

/// Number of queries per experiment.
pub const QUERIES_PER_EXPERIMENT: usize = 100;

/// Zipf skew parameter for the SKW datasets.
pub const ZIPF_THETA: f64 = 0.8;

/// Dataset cardinalities evaluated in the paper (Figures 5–8).
pub const CARDINALITIES: [usize; 5] = [100_000, 250_000, 500_000, 750_000, 1_000_000];

/// Scaled-down cardinalities used by default so the full suite runs in CI
/// time; the harness exposes `--full-scale` to switch to [`CARDINALITIES`].
pub const SCALED_CARDINALITIES: [usize; 5] = [10_000, 25_000, 50_000, 75_000, 100_000];

/// Milliseconds charged per node access in the processing-cost experiments.
pub const MS_PER_NODE_ACCESS: f64 = 10.0;

/// Digest size in bytes (also the size of the SAE verification token).
pub const DIGEST_SIZE: usize = 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_the_paper() {
        assert_eq!(RECORD_SIZE, 500);
        assert_eq!(KEY_DOMAIN, 10_000_000);
        assert_eq!(QUERY_EXTENT_FRACTION, 0.005);
        assert_eq!(QUERIES_PER_EXPERIMENT, 100);
        assert_eq!(ZIPF_THETA, 0.8);
        assert_eq!(
            CARDINALITIES,
            [100_000, 250_000, 500_000, 750_000, 1_000_000]
        );
        assert_eq!(MS_PER_NODE_ACCESS, 10.0);
        assert_eq!(DIGEST_SIZE, 20);
    }

    #[test]
    fn scaled_cardinalities_preserve_the_ratios() {
        for (full, scaled) in CARDINALITIES.iter().zip(SCALED_CARDINALITIES.iter()) {
            assert_eq!(full / scaled, 10);
        }
    }
}
