//! The XB-Tree and its `GenerateVT` traversal.

use crate::node::{XbEntry, XbNode, XbNodeKind, XB_INTERNAL_CAPACITY, XB_LEAF_CAPACITY};
use sae_crypto::Digest;
use sae_storage::{PageId, SharedPageStore, StorageError, StorageResult, TreeMeta, PAGE_SIZE};
use sae_workload::{RangeQuery, RecordKey, TeTuple};

/// The verification token: the XOR of the digests of every record that
/// qualifies the query. Always exactly 20 bytes, independent of result size.
pub type VerificationToken = Digest;

/// Shape statistics for the XB-Tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XbTreeStats {
    /// Number of levels (1 = root is a leaf).
    pub height: u32,
    /// Number of nodes (pages).
    pub node_count: u64,
    /// Number of TE tuples stored.
    pub entry_count: u64,
    /// Bytes occupied by the tree's pages.
    pub storage_bytes: u64,
}

/// A disk-based XOR B-Tree over the trusted entity's tuples.
pub struct XbTree {
    store: SharedPageStore,
    root: PageId,
    height: u32,
    len: u64,
    node_count: u64,
}

impl XbTree {
    /// Creates an empty XB-Tree.
    pub fn new(store: SharedPageStore) -> StorageResult<Self> {
        let root = store.allocate()?;
        store.write(root, &XbNode::new_leaf().to_page())?;
        Ok(XbTree {
            store,
            root,
            height: 1,
            len: 0,
            node_count: 1,
        })
    }

    /// Bulk-loads from TE tuples sorted by `(key, id)`.
    pub fn bulk_load(store: SharedPageStore, tuples: &[TeTuple]) -> StorageResult<Self> {
        assert!(
            tuples
                .windows(2)
                .all(|w| (w[0].key, w[0].id) <= (w[1].key, w[1].id)),
            "bulk_load requires tuples sorted by (key, id)"
        );
        if tuples.is_empty() {
            return Self::new(store);
        }
        let mut node_count = 0u64;

        let chunks: Vec<&[TeTuple]> = tuples.chunks(XB_LEAF_CAPACITY).collect();
        let mut pages = Vec::with_capacity(chunks.len());
        for _ in 0..chunks.len() {
            pages.push(store.allocate()?);
        }
        // (min key, page, subtree xor)
        let mut level: Vec<(RecordKey, PageId, Digest)> = Vec::with_capacity(chunks.len());
        for (i, chunk) in chunks.iter().enumerate() {
            let mut node = XbNode::new_leaf();
            node.entries = chunk
                .iter()
                .map(|t| XbEntry {
                    key: t.key,
                    ptr: t.id,
                    x: t.digest,
                })
                .collect();
            node.next_leaf = if i + 1 < pages.len() {
                pages[i + 1]
            } else {
                PageId::INVALID
            };
            store.write(pages[i], &node.to_page())?;
            node_count += 1;
            level.push((chunk[0].key, pages[i], node.node_xor()));
        }

        let mut height = 1u32;
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for group in level.chunks(XB_INTERNAL_CAPACITY) {
                let mut node = XbNode::new_internal();
                node.entries = group
                    .iter()
                    .map(|&(key, page, x)| XbEntry {
                        key,
                        ptr: page.0,
                        x,
                    })
                    .collect();
                let page_id = store.allocate()?;
                store.write(page_id, &node.to_page())?;
                node_count += 1;
                next_level.push((group[0].0, page_id, node.node_xor()));
            }
            level = next_level;
            height += 1;
        }

        Ok(XbTree {
            store,
            root: level[0].1,
            height,
            len: tuples.len() as u64,
            node_count,
        })
    }

    /// Reopens a tree from its persisted root and shape (as recorded in a
    /// deployment manifest) instead of rebuilding it from the tuple set.
    /// Only cheap sanity checks run here; the trusted entity additionally
    /// cross-checks [`XbTree::total_xor`] against its published digest.
    pub fn open(store: SharedPageStore, meta: TreeMeta) -> StorageResult<Self> {
        if meta.root.is_invalid() || meta.root.0 >= store.page_count() {
            return Err(StorageError::Corrupted(format!(
                "XB-Tree root {} outside the store's {} pages",
                meta.root,
                store.page_count()
            )));
        }
        if meta.height == 0 || meta.node_count == 0 {
            return Err(StorageError::Corrupted(
                "XB-Tree meta claims zero height or zero nodes".into(),
            ));
        }
        Ok(XbTree {
            store,
            root: meta.root,
            height: meta.height,
            len: meta.len,
            node_count: meta.node_count,
        })
    }

    /// The page store this tree lives on.
    pub fn store(&self) -> &SharedPageStore {
        &self.store
    }

    /// The root page (persisted by durable deployments so the tree can be
    /// reopened with [`XbTree::open`]).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// The tree's persistable root + shape metadata.
    pub fn meta(&self) -> TreeMeta {
        TreeMeta {
            root: self.root,
            height: self.height,
            len: self.len,
            node_count: self.node_count,
        }
    }

    /// Number of tuples stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    /// Bytes occupied by the tree's pages.
    pub fn storage_bytes(&self) -> u64 {
        self.node_count * PAGE_SIZE as u64
    }

    /// Shape statistics.
    pub fn stats(&self) -> XbTreeStats {
        XbTreeStats {
            height: self.height,
            node_count: self.node_count,
            entry_count: self.len,
            storage_bytes: self.storage_bytes(),
        }
    }

    fn read_node(&self, id: PageId) -> StorageResult<XbNode> {
        Ok(XbNode::from_page(&self.store.read(id)?))
    }

    fn write_node(&self, id: PageId, node: &XbNode) -> StorageResult<()> {
        self.store.write(id, &node.to_page())
    }

    /// The XOR of every tuple digest in the tree (useful for consistency
    /// checks: it must stay equal to the XOR of all inserted minus deleted
    /// digests).
    pub fn total_xor(&self) -> StorageResult<Digest> {
        Ok(self.read_node(self.root)?.node_xor())
    }

    // ---------------------------------------------------------- GenerateVT

    /// Computes the verification token for `q` — the paper's `GenerateVT`.
    ///
    /// Entries whose subtree is entirely inside the query range contribute
    /// their `X` aggregate without being descended into; entries whose range
    /// partially overlaps are recursed; everything else is skipped. The
    /// traversal therefore touches only the two boundary paths, i.e.
    /// `O(log n)` nodes independent of the result cardinality.
    pub fn generate_vt(&self, q: &RangeQuery) -> StorageResult<VerificationToken> {
        let mut vt = Digest::ZERO;
        self.generate_vt_rec(self.root, q, &mut vt)?;
        Ok(vt)
    }

    fn generate_vt_rec(
        &self,
        page_id: PageId,
        q: &RangeQuery,
        vt: &mut Digest,
    ) -> StorageResult<()> {
        let node = self.read_node(page_id)?;
        match node.kind {
            XbNodeKind::Leaf => {
                for e in &node.entries {
                    if q.contains(e.key) {
                        *vt ^= e.x;
                    }
                }
            }
            XbNodeKind::Internal => {
                for (i, e) in node.entries.iter().enumerate() {
                    // The subtree below entry i holds keys in
                    // [e.key, next entry's key] (closed: duplicates may equal
                    // the next minimum).
                    let low = e.key;
                    let high = node
                        .entries
                        .get(i + 1)
                        .map(|n| n.key)
                        .unwrap_or(RecordKey::MAX);
                    if low > q.upper || high < q.lower {
                        continue; // disjoint
                    }
                    if low >= q.lower && high <= q.upper {
                        // Fully covered: use the pre-aggregated X value
                        // (lines 2-3 of the paper's Figure 4).
                        *vt ^= e.x;
                    } else {
                        // Partial overlap: recurse (lines 6-8).
                        self.generate_vt_rec(e.child(), q, vt)?;
                    }
                }
            }
        }
        Ok(())
    }

    // --------------------------------------------------------------- insert

    /// Inserts a TE tuple, patching the XOR aggregates along the path.
    pub fn insert(&mut self, tuple: TeTuple) -> StorageResult<()> {
        if let Some((split_key, split_page, split_x)) = self.insert_rec(self.root, &tuple)? {
            let old_root = self.read_node(self.root)?;
            let mut new_root = XbNode::new_internal();
            new_root.entries.push(XbEntry {
                key: old_root.min_key(),
                ptr: self.root.0,
                x: old_root.node_xor(),
            });
            new_root.entries.push(XbEntry {
                key: split_key,
                ptr: split_page.0,
                x: split_x,
            });
            let new_root_id = self.store.allocate()?;
            self.write_node(new_root_id, &new_root)?;
            self.root = new_root_id;
            self.height += 1;
            self.node_count += 1;
        }
        self.len += 1;
        Ok(())
    }

    /// Recursive insert. Returns split info `(right min key, right page,
    /// right subtree XOR)` if the node split.
    fn insert_rec(
        &mut self,
        page_id: PageId,
        tuple: &TeTuple,
    ) -> StorageResult<Option<(RecordKey, PageId, Digest)>> {
        let mut node = self.read_node(page_id)?;
        match node.kind {
            XbNodeKind::Leaf => {
                let pos = node
                    .entries
                    .partition_point(|e| (e.key, e.ptr) <= (tuple.key, tuple.id));
                node.entries.insert(
                    pos,
                    XbEntry {
                        key: tuple.key,
                        ptr: tuple.id,
                        x: tuple.digest,
                    },
                );
                if node.entries.len() <= XB_LEAF_CAPACITY {
                    self.write_node(page_id, &node)?;
                    return Ok(None);
                }
                let mid = node.entries.len() / 2;
                let right_entries = node.entries.split_off(mid);
                let right_id = self.store.allocate()?;
                let mut right = XbNode::new_leaf();
                right.entries = right_entries;
                right.next_leaf = node.next_leaf;
                node.next_leaf = right_id;
                self.write_node(right_id, &right)?;
                self.write_node(page_id, &node)?;
                self.node_count += 1;
                Ok(Some((right.min_key(), right_id, right.node_xor())))
            }
            XbNodeKind::Internal => {
                let idx = node
                    .entries
                    .partition_point(|e| e.key <= tuple.key)
                    .saturating_sub(1);
                let child_id = node.entries[idx].child();
                let split = self.insert_rec(child_id, tuple)?;

                // Patch the aggregate: the child gained exactly this digest
                // (whichever half of a split it ended up in is irrelevant for
                // the XOR of the *pair*, but the left entry must reflect only
                // the left half, so re-read its local aggregate on splits).
                if split.is_some() {
                    let child = self.read_node(child_id)?;
                    node.entries[idx].x = child.node_xor();
                    node.entries[idx].key = child.min_key();
                } else {
                    node.entries[idx].x ^= tuple.digest;
                    node.entries[idx].key = node.entries[idx].key.min(tuple.key);
                }

                if let Some((split_key, split_page, split_x)) = split {
                    node.entries.insert(
                        idx + 1,
                        XbEntry {
                            key: split_key,
                            ptr: split_page.0,
                            x: split_x,
                        },
                    );
                }

                if node.entries.len() <= XB_INTERNAL_CAPACITY {
                    self.write_node(page_id, &node)?;
                    return Ok(None);
                }
                let mid = node.entries.len() / 2;
                let right_entries = node.entries.split_off(mid);
                let right_id = self.store.allocate()?;
                let mut right = XbNode::new_internal();
                right.entries = right_entries;
                self.write_node(right_id, &right)?;
                self.write_node(page_id, &node)?;
                self.node_count += 1;
                Ok(Some((right.min_key(), right_id, right.node_xor())))
            }
        }
    }

    // --------------------------------------------------------------- delete

    /// Deletes the tuple with the given `(key, id)`, patching the XOR
    /// aggregates along the path. Returns `true` if a tuple was removed.
    pub fn delete(&mut self, key: RecordKey, id: u64) -> StorageResult<bool> {
        Ok(self.take(key, id)?.is_some())
    }

    /// Like [`XbTree::delete`], but returns the removed tuple's digest so a
    /// caller coordinating multiple parties can re-insert the tuple to roll
    /// the deletion back. Returns `Ok(None)` if no tuple matched.
    pub fn take(&mut self, key: RecordKey, id: u64) -> StorageResult<Option<Digest>> {
        let outcome = self.delete_rec(self.root, key, id)?;
        let removed = outcome.is_some();
        if removed {
            self.len -= 1;
        }
        if let Some((_, true)) = outcome {
            self.write_node(self.root, &XbNode::new_leaf())?;
            self.height = 1;
            self.node_count = 1;
        } else {
            loop {
                let node = self.read_node(self.root)?;
                if node.kind == XbNodeKind::Internal && node.entries.len() == 1 {
                    self.root = node.entries[0].child();
                    self.height -= 1;
                    self.node_count -= 1;
                } else {
                    break;
                }
            }
        }
        Ok(outcome.map(|(digest, _)| digest))
    }

    /// Recursive delete. Returns `Some((removed digest, node became empty))`
    /// if the tuple was found under this node.
    fn delete_rec(
        &mut self,
        page_id: PageId,
        key: RecordKey,
        id: u64,
    ) -> StorageResult<Option<(Digest, bool)>> {
        let mut node = self.read_node(page_id)?;
        match node.kind {
            XbNodeKind::Leaf => {
                let Some(pos) = node
                    .entries
                    .iter()
                    .position(|e| e.key == key && e.ptr == id)
                else {
                    return Ok(None);
                };
                let digest = node.entries[pos].x;
                node.entries.remove(pos);
                let empty = node.entries.is_empty();
                self.write_node(page_id, &node)?;
                Ok(Some((digest, empty)))
            }
            XbNodeKind::Internal => {
                let mut idx = node.child_index_for_lower_bound(key);
                loop {
                    let child_id = node.entries[idx].child();
                    if let Some((digest, child_empty)) = self.delete_rec(child_id, key, id)? {
                        if child_empty {
                            node.entries.remove(idx);
                            self.node_count -= 1;
                        } else {
                            let child = self.read_node(child_id)?;
                            node.entries[idx].x ^= digest;
                            node.entries[idx].key = child.min_key();
                        }
                        let empty = node.entries.is_empty();
                        self.write_node(page_id, &node)?;
                        return Ok(Some((digest, empty)));
                    }
                    if idx + 1 < node.entries.len() && node.entries[idx + 1].key <= key {
                        idx += 1;
                    } else {
                        return Ok(None);
                    }
                }
            }
        }
    }

    // ----------------------------------------------------------- invariants

    /// Checks structural and aggregate invariants; panics on violation.
    pub fn check_invariants(&self) -> StorageResult<()> {
        let mut entry_total = 0u64;
        let mut node_total = 0u64;
        let mut leaf_pages = Vec::new();
        self.check_node(
            self.root,
            1,
            &mut entry_total,
            &mut node_total,
            &mut leaf_pages,
        )?;
        assert_eq!(entry_total, self.len, "tuple count mismatch");
        assert_eq!(node_total, self.node_count, "node count mismatch");
        for w in leaf_pages.windows(2) {
            assert_eq!(self.read_node(w[0])?.next_leaf, w[1], "broken leaf chain");
        }
        if let Some(last) = leaf_pages.last() {
            assert!(self.read_node(*last)?.next_leaf.is_invalid());
        }
        Ok(())
    }

    /// Returns the subtree XOR, verified bottom-up.
    fn check_node(
        &self,
        page_id: PageId,
        depth: u32,
        entry_total: &mut u64,
        node_total: &mut u64,
        leaf_pages: &mut Vec<PageId>,
    ) -> StorageResult<Digest> {
        *node_total += 1;
        let node = self.read_node(page_id)?;
        assert!(
            node.entries.windows(2).all(|w| w[0].key <= w[1].key),
            "entries out of key order"
        );
        match node.kind {
            XbNodeKind::Leaf => {
                assert_eq!(depth, self.height, "leaf at wrong depth");
                *entry_total += node.entries.len() as u64;
                leaf_pages.push(page_id);
                Ok(node.node_xor())
            }
            XbNodeKind::Internal => {
                assert!(depth < self.height, "internal node at leaf depth");
                let mut acc = Digest::ZERO;
                for e in &node.entries {
                    let child_xor =
                        self.check_node(e.child(), depth + 1, entry_total, node_total, leaf_pages)?;
                    assert_eq!(e.x, child_xor, "stale X aggregate for {:?}", e.child());
                    let child = self.read_node(e.child())?;
                    assert!(child.min_key() >= e.key, "child min below separator");
                    acc ^= child_xor;
                }
                Ok(acc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sae_crypto::HashAlgorithm;
    use sae_storage::MemPager;
    use sae_workload::Record;

    const ALG: HashAlgorithm = HashAlgorithm::Sha1;

    fn tuples(n: u64, key_fn: impl Fn(u64) -> u32) -> Vec<TeTuple> {
        let mut out: Vec<TeTuple> = (0..n)
            .map(|i| Record::with_size(i, key_fn(i), 64).te_tuple(ALG))
            .collect();
        out.sort_by_key(|t| (t.key, t.id));
        out
    }

    fn oracle_vt(tuples: &[TeTuple], q: &RangeQuery) -> Digest {
        let mut vt = Digest::ZERO;
        for t in tuples {
            if q.contains(t.key) {
                vt ^= t.digest;
            }
        }
        vt
    }

    #[test]
    fn empty_tree_yields_zero_token() {
        let tree = XbTree::new(MemPager::new_shared()).unwrap();
        assert!(tree.is_empty());
        assert_eq!(
            tree.generate_vt(&RangeQuery::new(0, 100)).unwrap(),
            Digest::ZERO
        );
        tree.check_invariants().unwrap();
    }

    #[test]
    fn bulk_loaded_vt_matches_brute_force() {
        let ts = tuples(5_000, |i| (i * 13 % 20_000) as u32);
        let tree = XbTree::bulk_load(MemPager::new_shared(), &ts).unwrap();
        tree.check_invariants().unwrap();

        for (lo, hi) in [
            (0u32, 20_000u32),
            (0, 0),
            (500, 1_500),
            (19_000, 19_999),
            (7, 7),
        ] {
            let q = RangeQuery::new(lo, hi);
            assert_eq!(
                tree.generate_vt(&q).unwrap(),
                oracle_vt(&ts, &q),
                "query [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn paper_example_figure_3() {
        // The running example of §III: 14 tuples with keys
        // {1,3,3,6,6,12,13,15,18,18,20,23,23,25} and query [5, 17] whose VT is
        // t4.h ⊕ t5.h ⊕ t6.h ⊕ t7.h ⊕ t8.h (1-indexed tuples).
        let keys = [1u32, 3, 3, 6, 6, 12, 13, 15, 18, 18, 20, 23, 23, 25];
        let ts: Vec<TeTuple> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Record::with_size(i as u64 + 1, k, 64).te_tuple(ALG))
            .collect();
        let tree = XbTree::bulk_load(MemPager::new_shared(), &ts).unwrap();
        let vt = tree.generate_vt(&RangeQuery::new(5, 17)).unwrap();
        let expected = ts[3].digest ^ ts[4].digest ^ ts[5].digest ^ ts[6].digest ^ ts[7].digest;
        assert_eq!(vt, expected);
    }

    #[test]
    fn incremental_inserts_match_bulk_load() {
        let ts = tuples(2_000, |i| (i * 7 % 5_000) as u32);
        let bulk = XbTree::bulk_load(MemPager::new_shared(), &ts).unwrap();
        let mut incremental = XbTree::new(MemPager::new_shared()).unwrap();
        for t in &ts {
            incremental.insert(*t).unwrap();
        }
        incremental.check_invariants().unwrap();
        assert_eq!(incremental.len(), bulk.len());
        assert_eq!(incremental.total_xor().unwrap(), bulk.total_xor().unwrap());
        for (lo, hi) in [(0u32, 5_000u32), (100, 300), (4_900, 5_000)] {
            let q = RangeQuery::new(lo, hi);
            assert_eq!(
                incremental.generate_vt(&q).unwrap(),
                bulk.generate_vt(&q).unwrap()
            );
        }
    }

    #[test]
    fn open_from_meta_serves_identical_tokens_without_rebuilding() {
        let store = MemPager::new_shared();
        let ts = tuples(3_000, |i| (i * 11 % 9_000) as u32);
        let mut tree = XbTree::bulk_load(store.clone(), &ts).unwrap();
        tree.insert(Record::with_size(100_000, 4_444, 64).te_tuple(ALG))
            .unwrap();
        let meta = tree.meta();
        assert_eq!(meta.root, tree.root());
        let total = tree.total_xor().unwrap();
        drop(tree);

        let writes_before = store.stats().snapshot().node_writes;
        let reopened = XbTree::open(store.clone(), meta).unwrap();
        assert_eq!(store.stats().snapshot().node_writes, writes_before);
        assert_eq!(reopened.meta(), meta);
        assert_eq!(reopened.total_xor().unwrap(), total);
        reopened.check_invariants().unwrap();
        let q = RangeQuery::new(1_000, 5_000);
        let mut oracle = oracle_vt(&ts, &q);
        oracle ^= Record::with_size(100_000, 4_444, 64).te_tuple(ALG).digest;
        assert_eq!(reopened.generate_vt(&q).unwrap(), oracle);

        // Nonsense metadata is rejected with a typed error.
        assert!(XbTree::open(
            store.clone(),
            sae_storage::TreeMeta {
                root: PageId::INVALID,
                ..meta
            }
        )
        .is_err());
        assert!(XbTree::open(
            store,
            sae_storage::TreeMeta {
                node_count: 0,
                ..meta
            }
        )
        .is_err());
    }

    #[test]
    fn inserts_splits_keep_aggregates_consistent() {
        let mut tree = XbTree::new(MemPager::new_shared()).unwrap();
        let n = 3 * XB_LEAF_CAPACITY as u64 + 11;
        let ts = tuples(n, |i| (i % 997) as u32);
        for t in &ts {
            tree.insert(*t).unwrap();
        }
        assert!(tree.height() >= 2);
        tree.check_invariants().unwrap();
        let q = RangeQuery::new(100, 400);
        assert_eq!(tree.generate_vt(&q).unwrap(), oracle_vt(&ts, &q));
    }

    #[test]
    fn deletes_patch_aggregates() {
        let ts = tuples(1_000, |i| (i % 300) as u32);
        let mut tree = XbTree::bulk_load(MemPager::new_shared(), &ts).unwrap();

        let mut remaining = ts.clone();
        // Delete every third tuple.
        let victims: Vec<TeTuple> = ts.iter().step_by(3).copied().collect();
        for v in &victims {
            assert!(tree.delete(v.key, v.id).unwrap());
            assert!(!tree.delete(v.key, v.id).unwrap());
        }
        remaining.retain(|t| !victims.iter().any(|v| v.id == t.id));
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), remaining.len() as u64);

        for (lo, hi) in [(0u32, 300u32), (10, 20), (250, 299)] {
            let q = RangeQuery::new(lo, hi);
            assert_eq!(tree.generate_vt(&q).unwrap(), oracle_vt(&remaining, &q));
        }
    }

    #[test]
    fn delete_everything_then_reuse() {
        let ts = tuples(400, |i| i as u32);
        let mut tree = XbTree::bulk_load(MemPager::new_shared(), &ts).unwrap();
        for t in &ts {
            assert!(tree.delete(t.key, t.id).unwrap());
        }
        assert!(tree.is_empty());
        assert_eq!(tree.total_xor().unwrap(), Digest::ZERO);
        tree.check_invariants().unwrap();
        tree.insert(ts[0]).unwrap();
        assert_eq!(
            tree.generate_vt(&RangeQuery::new(0, 10)).unwrap(),
            ts[0].digest
        );
    }

    #[test]
    fn mixed_workload_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(1234);
        let mut tree = XbTree::new(MemPager::new_shared()).unwrap();
        let mut live: Vec<TeTuple> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..3_000 {
            if rng.gen_bool(0.7) || live.is_empty() {
                let t = Record::with_size(next_id, rng.gen_range(0..3_000u32), 64).te_tuple(ALG);
                tree.insert(t).unwrap();
                live.push(t);
                next_id += 1;
            } else {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                assert!(tree.delete(victim.key, victim.id).unwrap());
            }
        }
        tree.check_invariants().unwrap();
        for _ in 0..40 {
            let a = rng.gen_range(0..3_000u32);
            let b = rng.gen_range(0..3_000u32);
            let q = RangeQuery::new(a, b);
            assert_eq!(tree.generate_vt(&q).unwrap(), oracle_vt(&live, &q));
        }
    }

    #[test]
    fn vt_generation_touches_logarithmically_many_nodes() {
        let store = MemPager::new_shared();
        let ts = tuples(100_000, |i| (i % 1_000_000) as u32 * 7);
        let tree = XbTree::bulk_load(store.clone(), &ts).unwrap();

        // A wide query covering ~half of the tuples.
        let q = RangeQuery::new(0, 3_500_000);
        let before = store.stats().snapshot();
        let vt = tree.generate_vt(&q).unwrap();
        let delta = store.stats().snapshot().delta_since(&before);
        assert_eq!(vt, oracle_vt(&ts, &q));

        // Two boundary paths of height() nodes each is the paper's bound;
        // allow a little slack for the root being shared.
        assert!(
            delta.node_reads <= 2 * tree.height() as u64 + 2,
            "VT generation read {} nodes for a tree of height {}",
            delta.node_reads,
            tree.height()
        );
    }

    #[test]
    fn storage_is_a_small_fraction_of_the_dataset() {
        // 10k records of 500 bytes = ~5 MB of data; the TE keeps ~32 bytes per
        // record plus tree overhead, i.e. well under a sixth of the dataset.
        let ts = tuples(10_000, |i| (i % 100_000) as u32);
        let tree = XbTree::bulk_load(MemPager::new_shared(), &ts).unwrap();
        let dataset_bytes = 10_000u64 * 500;
        assert!(tree.storage_bytes() * 6 < dataset_bytes);
        let stats = tree.stats();
        assert_eq!(stats.entry_count, 10_000);
        assert_eq!(stats.storage_bytes, tree.storage_bytes());
    }
}
