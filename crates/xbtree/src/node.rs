//! On-page node layout for the XB-Tree.
//!
//! ```text
//! leaf:      [type:1][pad:1][count:2][next_leaf:8] [ (key:4, id:8,    digest:20) * count ]
//! internal:  [type:1][pad:1][count:2][pad:8]       [ (key:4, child:8, X:20)      * count ]
//! ```
//!
//! A leaf entry is one TE tuple `<id, key, h>`; an internal entry carries the
//! minimum key of its child subtree and the XOR (`X`) of every tuple digest
//! stored below that child — the partial aggregates `GenerateVT` combines.

use sae_crypto::{Digest, DIGEST_LEN};
use sae_storage::{Page, PageId, PAGE_SIZE};
use sae_workload::RecordKey;

const HEADER_LEN: usize = 12;
const ENTRY_LEN: usize = 4 + 8 + DIGEST_LEN;

/// Maximum entries per leaf node.
pub const XB_LEAF_CAPACITY: usize = (PAGE_SIZE - HEADER_LEN) / ENTRY_LEN;
/// Maximum entries per internal node.
pub const XB_INTERNAL_CAPACITY: usize = (PAGE_SIZE - HEADER_LEN) / ENTRY_LEN;

/// Node kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XbNodeKind {
    /// Leaf: entries are TE tuples `(key, record id, record digest)`.
    Leaf,
    /// Internal: entries are `(subtree min key, child page, subtree XOR)`.
    Internal,
}

/// One decoded XB-Tree entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XbEntry {
    /// Tuple key (leaf) or minimum key of the child subtree (internal).
    pub key: RecordKey,
    /// Record id (leaf) or child page id as a raw u64 (internal).
    pub ptr: u64,
    /// Record digest (leaf) or XOR of all digests in the subtree (internal).
    pub x: Digest,
}

impl XbEntry {
    /// The pointer interpreted as a child page id.
    pub fn child(&self) -> PageId {
        PageId(self.ptr)
    }
}

/// An in-memory, decoded XB-Tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XbNode {
    /// Leaf or internal.
    pub kind: XbNodeKind,
    /// Leaf only: next leaf in key order.
    pub next_leaf: PageId,
    /// Entries sorted by key.
    pub entries: Vec<XbEntry>,
}

impl XbNode {
    /// Creates an empty leaf.
    pub fn new_leaf() -> Self {
        XbNode {
            kind: XbNodeKind::Leaf,
            next_leaf: PageId::INVALID,
            entries: Vec::new(),
        }
    }

    /// Creates an empty internal node.
    pub fn new_internal() -> Self {
        XbNode {
            kind: XbNodeKind::Internal,
            next_leaf: PageId::INVALID,
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the node is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the node is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= XB_LEAF_CAPACITY
    }

    /// Minimum key stored in (or below) this node. Panics on empty nodes.
    pub fn min_key(&self) -> RecordKey {
        self.entries[0].key
    }

    /// XOR of all `x` values stored in this node — for a leaf that is the XOR
    /// of its tuple digests, for an internal node the XOR of its children's
    /// aggregates; in both cases it equals the XOR of every tuple digest in
    /// the subtree rooted at this node.
    pub fn node_xor(&self) -> Digest {
        let mut acc = Digest::ZERO;
        for e in &self.entries {
            acc ^= e.x;
        }
        acc
    }

    /// First child whose subtree may contain `key` (see the MB-Tree note on
    /// duplicates straddling splits).
    pub fn child_index_for_lower_bound(&self, key: RecordKey) -> usize {
        debug_assert_eq!(self.kind, XbNodeKind::Internal);
        self.entries
            .partition_point(|e| e.key < key)
            .saturating_sub(1)
    }

    /// Serializes the node into a page.
    pub fn to_page(&self) -> Page {
        let mut page = Page::new();
        page.write_u8(0, if self.kind == XbNodeKind::Leaf { 0 } else { 1 });
        page.write_u16(2, self.entries.len() as u16);
        page.write_page_id(4, self.next_leaf);
        let mut off = HEADER_LEN;
        for e in &self.entries {
            page.write_u32(off, e.key);
            page.write_u64(off + 4, e.ptr);
            page.write_bytes(off + 12, e.x.as_bytes());
            off += ENTRY_LEN;
        }
        page
    }

    /// Decodes a node from a page.
    pub fn from_page(page: &Page) -> Self {
        let kind = if page.read_u8(0) == 0 {
            XbNodeKind::Leaf
        } else {
            XbNodeKind::Internal
        };
        let count = page.read_u16(2) as usize;
        let next_leaf = page.read_page_id(4);
        let mut entries = Vec::with_capacity(count);
        let mut off = HEADER_LEN;
        for _ in 0..count {
            entries.push(XbEntry {
                key: page.read_u32(off),
                ptr: page.read_u64(off + 4),
                x: Digest::from_slice(page.read_bytes(off + 12, DIGEST_LEN))
                    // analyzer:allow(no-unwrap-in-lib, read_bytes returns exactly DIGEST_LEN bytes so from_slice cannot fail)
                    .expect("digest length is fixed"),
            });
            off += ENTRY_LEN;
        }
        XbNode {
            kind,
            next_leaf,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(tag: u8) -> Digest {
        Digest::new([tag; DIGEST_LEN])
    }

    #[test]
    fn capacities_match_entry_size() {
        assert_eq!(XB_LEAF_CAPACITY, 127);
        assert_eq!(XB_INTERNAL_CAPACITY, 127);
    }

    #[test]
    fn round_trips_for_both_kinds() {
        let mut leaf = XbNode::new_leaf();
        leaf.next_leaf = PageId(3);
        for i in 0..7u64 {
            leaf.entries.push(XbEntry {
                key: i as u32 * 2,
                ptr: i,
                x: d(i as u8),
            });
        }
        assert_eq!(XbNode::from_page(&leaf.to_page()), leaf);

        let mut internal = XbNode::new_internal();
        for i in 0..4u64 {
            internal.entries.push(XbEntry {
                key: i as u32 * 100,
                ptr: i + 10,
                x: d(0xF0 | i as u8),
            });
        }
        let decoded = XbNode::from_page(&internal.to_page());
        assert_eq!(decoded, internal);
        assert_eq!(decoded.entries[2].child(), PageId(12));
    }

    #[test]
    fn node_xor_is_xor_of_entry_aggregates() {
        let mut node = XbNode::new_leaf();
        node.entries.push(XbEntry {
            key: 1,
            ptr: 1,
            x: d(0b0011),
        });
        node.entries.push(XbEntry {
            key: 2,
            ptr: 2,
            x: d(0b0101),
        });
        node.entries.push(XbEntry {
            key: 3,
            ptr: 3,
            x: d(0b1001),
        });
        assert_eq!(node.node_xor(), d(0b0011 ^ 0b0101 ^ 0b1001));
        assert_eq!(XbNode::new_leaf().node_xor(), Digest::ZERO);
    }

    #[test]
    fn lower_bound_descent_handles_duplicate_minimums() {
        let mut node = XbNode::new_internal();
        for (i, key) in [10u32, 20, 20, 30].iter().enumerate() {
            node.entries.push(XbEntry {
                key: *key,
                ptr: i as u64,
                x: d(0),
            });
        }
        assert_eq!(node.child_index_for_lower_bound(5), 0);
        assert_eq!(node.child_index_for_lower_bound(20), 0);
        assert_eq!(node.child_index_for_lower_bound(21), 2);
        assert_eq!(node.child_index_for_lower_bound(30), 2);
        assert_eq!(node.child_index_for_lower_bound(31), 3);
    }

    #[test]
    fn full_node_round_trip() {
        let mut node = XbNode::new_leaf();
        for i in 0..XB_LEAF_CAPACITY as u64 {
            node.entries.push(XbEntry {
                key: i as u32,
                ptr: i,
                x: d((i % 255) as u8),
            });
        }
        assert!(node.is_full());
        assert_eq!(XbNode::from_page(&node.to_page()), node);
    }
}
