//! The sequential-scan baseline for VT generation (ablation E5).
//!
//! §III motivates the XB-Tree by noting that without an index "the TE could
//! perform a sequential scan of T and retrieve the digests of all records
//! qualifying q", which makes the TE's effort proportional to the dataset and
//! "can be expensive, contradicting the goal of SAE". [`TupleStore`] is that
//! baseline: the TE tuple set `T` packed into pages, with VT generation by a
//! full scan. The ablation benchmark compares its node accesses against the
//! XB-Tree's logarithmic traversal.

use sae_crypto::{Digest, DIGEST_LEN};
use sae_storage::{PageId, SharedPageStore, StorageResult, PAGE_SIZE};
use sae_workload::{RangeQuery, TeTuple};

/// Bytes per packed tuple: key (4) + id (8) + digest (20).
const TUPLE_LEN: usize = 4 + 8 + DIGEST_LEN;
/// Tuples per page (a 4-byte count header precedes the packed tuples).
const TUPLES_PER_PAGE: usize = (PAGE_SIZE - 4) / TUPLE_LEN;

/// The TE's tuple set `T` stored flat in pages, without any index.
pub struct TupleStore {
    store: SharedPageStore,
    pages: Vec<PageId>,
    len: u64,
}

impl TupleStore {
    /// Packs the given tuples into pages (any order is accepted).
    pub fn build(store: SharedPageStore, tuples: &[TeTuple]) -> StorageResult<Self> {
        let mut pages = Vec::new();
        for chunk in tuples.chunks(TUPLES_PER_PAGE) {
            let page_id = store.allocate()?;
            let mut page = sae_storage::Page::new();
            page.write_u16(0, chunk.len() as u16);
            let mut off = 4;
            for t in chunk {
                page.write_u32(off, t.key);
                page.write_u64(off + 4, t.id);
                page.write_bytes(off + 12, t.digest.as_bytes());
                off += TUPLE_LEN;
            }
            store.write(page_id, &page)?;
            pages.push(page_id);
        }
        Ok(TupleStore {
            store,
            pages,
            len: tuples.len() as u64,
        })
    }

    /// Number of tuples stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages occupied.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Bytes occupied by the packed tuple set.
    pub fn storage_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// Computes the verification token by scanning every page — the baseline
    /// whose cost the XB-Tree eliminates.
    pub fn generate_vt_scan(&self, q: &RangeQuery) -> StorageResult<Digest> {
        let mut vt = Digest::ZERO;
        for &page_id in &self.pages {
            let page = self.store.read(page_id)?;
            let count = page.read_u16(0) as usize;
            let mut off = 4;
            for _ in 0..count {
                let key = page.read_u32(off);
                if q.contains(key) {
                    let digest = Digest::from_slice(page.read_bytes(off + 12, DIGEST_LEN))
                        // analyzer:allow(no-unwrap-in-lib, read_bytes returns exactly DIGEST_LEN bytes so from_slice cannot fail)
                        .expect("digest length is fixed");
                    vt ^= digest;
                }
                off += TUPLE_LEN;
            }
        }
        Ok(vt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_crypto::HashAlgorithm;
    use sae_storage::MemPager;
    use sae_workload::Record;

    fn tuples(n: u64) -> Vec<TeTuple> {
        (0..n)
            .map(|i| {
                Record::with_size(i, (i * 11 % 5_000) as u32, 64).te_tuple(HashAlgorithm::Sha1)
            })
            .collect()
    }

    #[test]
    fn scan_vt_matches_brute_force_and_xbtree() {
        let ts = tuples(3_000);
        let mut sorted = ts.clone();
        sorted.sort_by_key(|t| (t.key, t.id));

        let scan = TupleStore::build(MemPager::new_shared(), &ts).unwrap();
        let tree = crate::XbTree::bulk_load(MemPager::new_shared(), &sorted).unwrap();

        for (lo, hi) in [(0u32, 5_000u32), (100, 900), (4_400, 4_401)] {
            let q = RangeQuery::new(lo, hi);
            let mut expected = Digest::ZERO;
            for t in &ts {
                if q.contains(t.key) {
                    expected ^= t.digest;
                }
            }
            assert_eq!(scan.generate_vt_scan(&q).unwrap(), expected);
            assert_eq!(tree.generate_vt(&q).unwrap(), expected);
        }
    }

    #[test]
    fn scan_touches_every_page_while_the_tree_does_not() {
        let ts = tuples(20_000);
        let mut sorted = ts.clone();
        sorted.sort_by_key(|t| (t.key, t.id));

        let scan_store = MemPager::new_shared();
        let scan = TupleStore::build(scan_store.clone(), &ts).unwrap();
        let tree_store = MemPager::new_shared();
        let tree = crate::XbTree::bulk_load(tree_store.clone(), &sorted).unwrap();

        let q = RangeQuery::new(1_000, 1_050);
        let before_scan = scan_store.stats().snapshot();
        scan.generate_vt_scan(&q).unwrap();
        let scan_reads = scan_store
            .stats()
            .snapshot()
            .delta_since(&before_scan)
            .node_reads;

        let before_tree = tree_store.stats().snapshot();
        tree.generate_vt(&q).unwrap();
        let tree_reads = tree_store
            .stats()
            .snapshot()
            .delta_since(&before_tree)
            .node_reads;

        assert_eq!(scan_reads, scan.page_count());
        assert!(tree_reads * 10 < scan_reads, "{tree_reads} vs {scan_reads}");
    }

    #[test]
    fn empty_store() {
        let scan = TupleStore::build(MemPager::new_shared(), &[]).unwrap();
        assert!(scan.is_empty());
        assert_eq!(scan.page_count(), 0);
        assert_eq!(
            scan.generate_vt_scan(&RangeQuery::new(0, 10)).unwrap(),
            Digest::ZERO
        );
    }

    #[test]
    fn packing_density_is_127_tuples_per_page() {
        assert_eq!(TUPLES_PER_PAGE, 127);
        let scan = TupleStore::build(MemPager::new_shared(), &tuples(1_000)).unwrap();
        assert_eq!(scan.page_count(), 8); // ceil(1000 / 127)
        assert_eq!(scan.len(), 1_000);
    }
}
