//! # sae-xbtree
//!
//! The **XB-Tree (XOR B-Tree)** — the index the SAE trusted entity uses to
//! compute verification tokens, i.e. the paper's core contribution (§III).
//!
//! The trusted entity stores, for every record `r` of the outsourced relation,
//! the reduced tuple `t = <id, key, h>` where `h` is the digest of `r`'s
//! binary representation. For a range query `q` it must return the
//! **verification token** `VT = ⊕ t.h` over all tuples qualifying `q`. A
//! sequential scan of the tuple set would make the TE's effort proportional to
//! the dataset; the XB-Tree instead organizes XOR aggregates inside a paged
//! search tree so that [`XbTree::generate_vt`] touches only `O(log n)` nodes —
//! two root-to-leaf traversals, independent of the result size — exactly the
//! cost profile reported in the paper's Figure 6.
//!
//! ## Relation to the paper's node layout
//!
//! The paper describes intermediate entries `<sk, L, X, c>` where `L` points
//! to a dedicated page holding the `(id, digest)` pairs of the tuples whose
//! key equals `sk`. This repository keeps the same *aggregation structure*
//! (every entry carries an `X` value equal to the XOR of all digests below
//! it; fully-covered entries contribute `X` directly, partially-covered ones
//! are descended into; updates patch `X` along one root-to-leaf path) but
//! stores the per-key tuples in the leaf level of the tree itself instead of
//! separate `L` pages. This is purely a storage-packing choice: with largely
//! unique keys a dedicated page per distinct key would waste two orders of
//! magnitude of space, while the packed layout preserves the algorithmic
//! costs (logarithmic VT generation and maintenance, tiny TE footprint) that
//! the evaluation measures. The substitution is documented in `DESIGN.md`.
//!
//! The crate also provides [`scan::TupleStore`], the "no index" baseline the
//! paper motivates the XB-Tree against (ablation E5).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod node;
pub mod scan;
pub mod tree;

pub use node::{XbEntry, XbNode, XbNodeKind, XB_INTERNAL_CAPACITY, XB_LEAF_CAPACITY};
pub use scan::TupleStore;
pub use tree::{VerificationToken, XbTree, XbTreeStats};
