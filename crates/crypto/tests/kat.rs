//! Known-answer tests for the cryptographic substrate.
//!
//! Vectors are taken from the published specifications:
//!
//! * SHA-1 — FIPS 180-1 appendix A/B examples plus the million-`a` vector;
//! * SHA-256 — FIPS 180-4 (via the NIST examples) one-block, two-block and
//!   million-`a` vectors;
//! * HMAC-SHA1 — RFC 2202 §3, all seven cases;
//! * HMAC-SHA256 — RFC 4231 §4, compared on the 20-byte prefix because the
//!   system truncates every tag to its uniform 20-byte digest size (the MAC
//!   itself is computed over the full-width hash, so the prefixes match the
//!   RFC exactly).
//!
//! Also includes deterministic regression tests for the XOR-aggregation
//! algebra the SAE verification token relies on (order independence and
//! self-inverse), complementing the randomized versions in `properties.rs`.

use sae_crypto::digest::{Digest, XorDigest};
use sae_crypto::hash::HashAlgorithm;
use sae_crypto::hmac::hmac;
use sae_crypto::sha1::Sha1;
use sae_crypto::sha256::Sha256;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

// --- SHA-1 (FIPS 180-1) ----------------------------------------------------

#[test]
fn sha1_fips_one_block() {
    assert_eq!(
        Sha1::digest(b"abc").to_hex(),
        "a9993e364706816aba3e25717850c26c9cd0d89d"
    );
}

#[test]
fn sha1_fips_two_block() {
    assert_eq!(
        Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    );
}

#[test]
fn sha1_empty_message() {
    assert_eq!(
        Sha1::digest(b"").to_hex(),
        "da39a3ee5e6b4b0d3255bfef95601890afd80709"
    );
}

#[test]
fn sha1_fips_million_a() {
    let mut h = Sha1::new();
    for _ in 0..1_000 {
        h.update(&[b'a'; 1_000]);
    }
    assert_eq!(
        h.finalize().to_hex(),
        "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    );
}

#[test]
fn sha1_exact_block_boundary_lengths() {
    // 55/56/64 bytes straddle the padding boundary of the 64-byte block.
    assert_eq!(
        Sha1::digest(&[0u8; 55]).to_hex(),
        "8e8832c642a6a38c74c17fc92ccedc266c108e6c"
    );
    assert_eq!(
        Sha1::digest(&[0u8; 56]).to_hex(),
        "9438e360f578e12c0e0e8ed28e2c125c1cefee16"
    );
    assert_eq!(
        Sha1::digest(&[0u8; 64]).to_hex(),
        "c8d7d0ef0eedfa82d2ea1aa592845b9a6d4b02b7"
    );
}

// --- SHA-256 (FIPS 180-4) --------------------------------------------------

#[test]
fn sha256_fips_one_block() {
    assert_eq!(
        hex(&Sha256::digest_full(b"abc")),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
}

#[test]
fn sha256_fips_two_block() {
    assert_eq!(
        hex(&Sha256::digest_full(
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        )),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    );
}

#[test]
fn sha256_empty_message() {
    assert_eq!(
        hex(&Sha256::digest_full(b"")),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
}

#[test]
fn sha256_fips_million_a() {
    let mut h = Sha256::new();
    for _ in 0..1_000 {
        h.update(&[b'a'; 1_000]);
    }
    assert_eq!(
        hex(&h.finalize_full()),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

#[test]
fn sha256_system_digest_is_truncated_prefix() {
    // The 20-byte system digest must be the prefix of the full hash.
    let full = Sha256::digest_full(b"abc");
    assert_eq!(Sha256::digest(b"abc").as_bytes()[..], full[..20]);
    assert_eq!(
        HashAlgorithm::Sha256.hash(b"abc").as_bytes()[..],
        full[..20]
    );
}

// --- HMAC-SHA1 (RFC 2202 §3) ----------------------------------------------

struct HmacVector {
    key: Vec<u8>,
    data: Vec<u8>,
    sha1: &'static str,
}

fn rfc2202_vectors() -> Vec<HmacVector> {
    vec![
        HmacVector {
            key: vec![0x0b; 20],
            data: b"Hi There".to_vec(),
            sha1: "b617318655057264e28bc0b6fb378c8ef146be00",
        },
        HmacVector {
            key: b"Jefe".to_vec(),
            data: b"what do ya want for nothing?".to_vec(),
            sha1: "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
        },
        HmacVector {
            key: vec![0xaa; 20],
            data: vec![0xdd; 50],
            sha1: "125d7342b9ac11cd91a39af48aa17b4f63f175d3",
        },
        HmacVector {
            key: (0x01..=0x19).collect(),
            data: vec![0xcd; 50],
            sha1: "4c9007f4026250c6bc8414f9bf50c86c2d7235da",
        },
        HmacVector {
            key: vec![0x0c; 20],
            data: b"Test With Truncation".to_vec(),
            sha1: "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04",
        },
        HmacVector {
            key: vec![0xaa; 80],
            data: b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            sha1: "aa4ae5e15272d00e95705637ce8a3b55ed402112",
        },
        HmacVector {
            key: vec![0xaa; 80],
            data: b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data"
                .to_vec(),
            sha1: "e8e99d0f45237d786d6bbaa7965c7808bbff1a91",
        },
    ]
}

#[test]
fn hmac_sha1_rfc2202_all_cases() {
    for (i, v) in rfc2202_vectors().iter().enumerate() {
        assert_eq!(
            hmac(HashAlgorithm::Sha1, &v.key, &v.data).to_hex(),
            v.sha1,
            "RFC 2202 case {}",
            i + 1
        );
    }
}

// --- HMAC-SHA256 (RFC 4231 §4), 20-byte prefix ------------------------------

#[test]
fn hmac_sha256_rfc4231_truncated_prefixes() {
    // (key, data, full 32-byte tag) from RFC 4231 test cases 1-4 and 6-7.
    // Case 5 tests 128-bit output truncation and is subsumed by the others.
    let cases: Vec<(Vec<u8>, Vec<u8>, &str)> = vec![
        (
            vec![0x0b; 20],
            b"Hi There".to_vec(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        ),
        (
            b"Jefe".to_vec(),
            b"what do ya want for nothing?".to_vec(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        ),
        (
            vec![0xaa; 20],
            vec![0xdd; 50],
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        ),
        (
            (0x01..=0x19).collect(),
            vec![0xcd; 50],
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
        ),
        (
            vec![0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        ),
        (
            vec![0xaa; 131],
            b"This is a test using a larger than block-size key and a larger than \
              block-size data. The key needs to be hashed before being used by the \
              HMAC algorithm."
                .to_vec(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
        ),
    ];
    for (i, (key, data, full)) in cases.iter().enumerate() {
        assert_eq!(
            hmac(HashAlgorithm::Sha256, key, data).to_hex(),
            full[..40],
            "RFC 4231 case {}",
            i + 1
        );
    }
}

// --- XOR aggregation regression ---------------------------------------------

#[test]
fn xor_aggregation_is_order_independent() {
    let digests: Vec<Digest> = (0u32..16)
        .map(|i| HashAlgorithm::Sha1.hash(&i.to_le_bytes()))
        .collect();
    let forward = XorDigest::of(digests.iter());
    let backward = XorDigest::of(digests.iter().rev().collect::<Vec<_>>());

    // Any permutation, not just reversal: rotate and interleave.
    let mut rotated = digests.clone();
    rotated.rotate_left(7);
    let (evens, odds): (Vec<_>, Vec<_>) = digests.iter().enumerate().partition(|(i, _)| i % 2 == 0);
    let interleaved: Vec<Digest> = evens.into_iter().chain(odds).map(|(_, d)| *d).collect();

    assert_eq!(forward, backward);
    assert_eq!(forward, XorDigest::of(rotated.iter()));
    assert_eq!(forward, XorDigest::of(interleaved.iter()));
}

#[test]
fn xor_aggregation_is_self_inverse() {
    let a = HashAlgorithm::Sha1.hash(b"a");
    let b = HashAlgorithm::Sha1.hash(b"b");

    // x ^ x == 0 and folding a digest twice removes it from the aggregate.
    assert_eq!(a ^ a, Digest::ZERO);
    assert_eq!(a ^ Digest::ZERO, a);
    let mut agg = XorDigest::new();
    agg.fold(&a);
    agg.fold(&b);
    agg.fold(&a);
    assert_eq!(agg.value(), b);
    assert!(XorDigest::of([a, b, a, b].iter()).is_zero());
}

#[test]
fn xor_aggregate_of_empty_set_is_identity() {
    assert_eq!(XorDigest::of([].iter()), Digest::ZERO);
    assert!(XorDigest::new().is_identity());
}
