//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;
use sae_crypto::bigint::BigUint;
use sae_crypto::digest::{Digest, XorDigest, DIGEST_LEN};
use sae_crypto::hash::HashAlgorithm;
use sae_crypto::hmac::hmac;
use sae_crypto::sha1::Sha1;
use sae_crypto::sha256::Sha256;

fn arb_digest() -> impl Strategy<Value = Digest> {
    prop::array::uniform20(any::<u8>()).prop_map(Digest::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- XOR digest algebra -------------------------------------------------

    #[test]
    fn xor_commutative(a in arb_digest(), b in arb_digest()) {
        prop_assert_eq!(a ^ b, b ^ a);
    }

    #[test]
    fn xor_associative(a in arb_digest(), b in arb_digest(), c in arb_digest()) {
        prop_assert_eq!((a ^ b) ^ c, a ^ (b ^ c));
    }

    #[test]
    fn xor_self_inverse(a in arb_digest()) {
        prop_assert_eq!(a ^ a, Digest::ZERO);
        prop_assert_eq!(a ^ Digest::ZERO, a);
    }

    #[test]
    fn xor_aggregate_order_independent(mut digests in prop::collection::vec(arb_digest(), 0..32)) {
        let forward = XorDigest::of(digests.iter());
        digests.reverse();
        let backward = XorDigest::of(digests.iter());
        prop_assert_eq!(forward, backward);
    }

    /// Removing a subset DS and inserting a disjoint, different subset IS
    /// changes the aggregate unless DS⊕ == IS⊕ (the paper's security
    /// condition). Here we check the algebraic identity the proof relies on:
    /// ((RS - DS) ∪ IS)⊕ == RS⊕ ⊕ DS⊕ ⊕ IS⊕ for DS ⊆ RS, IS ∩ RS = ∅.
    #[test]
    fn tamper_identity(rs in prop::collection::vec(arb_digest(), 1..24),
                       is in prop::collection::vec(arb_digest(), 0..8),
                       split in 0usize..24) {
        let split = split.min(rs.len());
        let (ds, keep) = rs.split_at(split);
        let tampered: Vec<Digest> = keep.iter().chain(is.iter()).copied().collect();

        let rs_x = XorDigest::of(rs.iter());
        let ds_x = XorDigest::of(ds.iter());
        let is_x = XorDigest::of(is.iter());
        let tampered_x = XorDigest::of(tampered.iter());

        prop_assert_eq!(tampered_x, rs_x ^ ds_x ^ is_x);
    }

    #[test]
    fn digest_hex_round_trip(a in arb_digest()) {
        prop_assert_eq!(Digest::from_hex(&a.to_hex()), Some(a));
    }

    // --- hash functions -----------------------------------------------------

    #[test]
    fn sha1_streaming_equals_one_shot(data in prop::collection::vec(any::<u8>(), 0..512),
                                      cut in 0usize..512) {
        let cut = cut.min(data.len());
        let mut h = Sha1::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    #[test]
    fn sha256_streaming_equals_one_shot(data in prop::collection::vec(any::<u8>(), 0..512),
                                        cut in 0usize..512) {
        let cut = cut.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize_full(), Sha256::digest_full(&data));
    }

    #[test]
    fn hash_output_is_digest_len(data in prop::collection::vec(any::<u8>(), 0..256)) {
        for alg in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            prop_assert_eq!(alg.hash(&data).as_bytes().len(), DIGEST_LEN);
        }
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(key in prop::collection::vec(any::<u8>(), 1..80),
                                               msg in prop::collection::vec(any::<u8>(), 0..128)) {
        let t1 = hmac(HashAlgorithm::Sha1, &key, &msg);
        let t2 = hmac(HashAlgorithm::Sha1, &key, &msg);
        prop_assert_eq!(t1, t2);
        let mut other_key = key.clone();
        other_key[0] ^= 1;
        prop_assert_ne!(t1, hmac(HashAlgorithm::Sha1, &other_key, &msg));
    }

    // --- big integer arithmetic --------------------------------------------

    #[test]
    fn bigint_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = BigUint::from_u64(a).add(&BigUint::from_u64(b));
        let expected = a as u128 + b as u128;
        prop_assert_eq!(sum.to_hex(), format!("{expected:x}"));
    }

    #[test]
    fn bigint_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        let expected = a as u128 * b as u128;
        if expected == 0 {
            prop_assert!(prod.is_zero());
        } else {
            prop_assert_eq!(prod.to_hex(), format!("{expected:x}"));
        }
    }

    #[test]
    fn bigint_div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let ab = BigUint::from_hex(&format!("{a:x}")).unwrap();
        let bb = BigUint::from_hex(&format!("{b:x}")).unwrap();
        let (q, r) = ab.div_rem(&bb);
        let (eq, er) = (a / b, a % b);
        if eq == 0 { prop_assert!(q.is_zero()); } else { prop_assert_eq!(q.to_hex(), format!("{eq:x}")); }
        if er == 0 { prop_assert!(r.is_zero()); } else { prop_assert_eq!(r.to_hex(), format!("{er:x}")); }
    }

    #[test]
    fn bigint_division_identity(a_bytes in prop::collection::vec(any::<u8>(), 1..48),
                                b_bytes in prop::collection::vec(any::<u8>(), 1..24)) {
        let a = BigUint::from_bytes_be(&a_bytes);
        let b = BigUint::from_bytes_be(&b_bytes);
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn bigint_sub_add_round_trip(a_bytes in prop::collection::vec(any::<u8>(), 1..40),
                                 b_bytes in prop::collection::vec(any::<u8>(), 1..40)) {
        let a = BigUint::from_bytes_be(&a_bytes);
        let b = BigUint::from_bytes_be(&b_bytes);
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(hi.sub(&lo).add(&lo), hi);
    }

    #[test]
    fn bigint_bytes_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let v = BigUint::from_bytes_be(&bytes);
        prop_assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
    }

    #[test]
    fn bigint_shift_round_trip(bytes in prop::collection::vec(any::<u8>(), 1..32), shift in 0usize..130) {
        let v = BigUint::from_bytes_be(&bytes);
        prop_assert_eq!(v.shl(shift).shr(shift), v);
    }

    #[test]
    fn mod_pow_agrees_with_u128_for_small_inputs(base in 1u64..1000, exp in 0u64..32, modulus in 2u64..100_000) {
        let expected = {
            let mut acc: u128 = 1;
            for _ in 0..exp {
                acc = acc * base as u128 % modulus as u128;
            }
            acc as u64
        };
        let got = BigUint::from_u64(base)
            .mod_pow(&BigUint::from_u64(exp), &BigUint::from_u64(modulus));
        prop_assert_eq!(got.to_u64(), Some(expected));
    }
}
