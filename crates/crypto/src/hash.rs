//! Hash-algorithm selection and the streaming [`Hasher`] abstraction.
//!
//! The SAE and TOM models are agnostic to the concrete hash function; they
//! only require a one-way, collision-resistant function that produces the
//! system's 20-byte [`Digest`]. [`HashAlgorithm`] selects between the two
//! implementations in this crate and is threaded through the higher layers
//! (record digests, MB-Tree node digests, XB-Tree tuple digests) so that the
//! whole system can be switched with one configuration value — this is the
//! "digest algorithm" ablation in DESIGN.md.

use crate::digest::Digest;
use crate::sha1::Sha1;
use crate::sha256::Sha256;

/// The hash functions available to the system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HashAlgorithm {
    /// SHA-1 (20-byte output) — what the paper's Crypto++ setup used.
    #[default]
    Sha1,
    /// SHA-256 truncated to 20 bytes — a modern alternative with the same
    /// digest size, used to show results are digest-size-bound.
    Sha256,
}

impl HashAlgorithm {
    /// Hashes `data` in one shot.
    pub fn hash(&self, data: &[u8]) -> Digest {
        match self {
            HashAlgorithm::Sha1 => Sha1::digest(data),
            HashAlgorithm::Sha256 => Sha256::digest(data),
        }
    }

    /// Creates a streaming hasher for this algorithm.
    pub fn hasher(&self) -> Hasher {
        match self {
            HashAlgorithm::Sha1 => Hasher::Sha1(Sha1::new()),
            HashAlgorithm::Sha256 => Hasher::Sha256(Sha256::new()),
        }
    }

    /// Hashes the concatenation of several byte slices without materializing
    /// the concatenation (used for MB-Tree node digests, which are computed
    /// over the concatenation of the child page's digests).
    pub fn hash_concat<'a, I: IntoIterator<Item = &'a [u8]>>(&self, parts: I) -> Digest {
        let mut h = self.hasher();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// A short stable name, used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            HashAlgorithm::Sha1 => "sha1",
            HashAlgorithm::Sha256 => "sha256-trunc20",
        }
    }
}

/// Streaming hasher over the selected algorithm.
#[derive(Clone)]
pub enum Hasher {
    /// SHA-1 state.
    Sha1(Sha1),
    /// SHA-256 state.
    Sha256(Sha256),
}

impl Hasher {
    /// Absorbs more data.
    pub fn update(&mut self, data: &[u8]) {
        match self {
            Hasher::Sha1(h) => h.update(data),
            Hasher::Sha256(h) => h.update(data),
        }
    }

    /// Finalizes and returns the 20-byte digest.
    pub fn finalize(self) -> Digest {
        match self {
            Hasher::Sha1(h) => h.finalize(),
            Hasher::Sha256(h) => h.finalize(),
        }
    }
}

/// Hashes `data` with the default algorithm (SHA-1, as in the paper).
pub fn hash_bytes(data: &[u8]) -> Digest {
    HashAlgorithm::default().hash(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sha1() {
        assert_eq!(HashAlgorithm::default(), HashAlgorithm::Sha1);
        assert_eq!(
            hash_bytes(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn algorithms_disagree_on_same_input() {
        let data = b"same input";
        assert_ne!(
            HashAlgorithm::Sha1.hash(data),
            HashAlgorithm::Sha256.hash(data)
        );
    }

    #[test]
    fn streaming_hasher_matches_one_shot() {
        for alg in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            let data = b"streaming hasher equivalence check";
            let mut h = alg.hasher();
            h.update(&data[..10]);
            h.update(&data[10..]);
            assert_eq!(h.finalize(), alg.hash(data), "{}", alg.name());
        }
    }

    #[test]
    fn hash_concat_equals_hash_of_concatenation() {
        for alg in [HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            let parts: Vec<&[u8]> = vec![b"alpha", b"beta", b"gamma"];
            let concatenated: Vec<u8> = parts.concat();
            assert_eq!(
                alg.hash_concat(parts.iter().copied()),
                alg.hash(&concatenated)
            );
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(HashAlgorithm::Sha1.name(), "sha1");
        assert_eq!(HashAlgorithm::Sha256.name(), "sha256-trunc20");
    }
}
