//! Arbitrary-precision unsigned integers.
//!
//! The TOM baseline needs a public-key signature on the MB-Tree root digest.
//! The paper used Crypto++'s RSA; since no big-integer crate is available in
//! the offline dependency set, this module implements the small amount of
//! multi-precision arithmetic required for textbook RSA: addition,
//! subtraction, schoolbook multiplication, Knuth Algorithm-D division, modular
//! exponentiation, modular inverse and Miller–Rabin primality testing.
//!
//! The representation is a little-endian vector of 32-bit limbs with no
//! trailing zero limbs (`0` is the empty vector). The implementation favours
//! clarity and testability over raw speed; RSA signing happens once per
//! verification object, so it is far from the critical path of the
//! experiments.

use rand::Rng;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian 32-bit limbs).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut out = BigUint {
            limbs: vec![(v & 0xFFFF_FFFF) as u32, (v >> 32) as u32],
        };
        out.normalize();
        out
    }

    /// Constructs from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut chunk_start = bytes.len();
        while chunk_start > 0 {
            let take = chunk_start.min(4);
            let lo = chunk_start - take;
            let mut limb = 0u32;
            for &b in &bytes[lo..chunk_start] {
                limb = (limb << 8) | b as u32;
            }
            limbs.push(limb);
            chunk_start = lo;
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serializes to big-endian bytes with no leading zeros (zero -> empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most significant limb.
                let mut skip = 0;
                while skip < 3 && bytes[skip] == 0 {
                    skip += 1;
                }
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to big-endian bytes left-padded with zeros to `len` bytes.
    ///
    /// Returns `None` if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Parses a hexadecimal string (no prefix).
    pub fn from_hex(hex: &str) -> Option<Self> {
        let hex = hex.trim();
        if hex.is_empty() {
            return None;
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2 + 1);
        let chars: Vec<u8> = hex.bytes().collect();
        let mut idx = 0;
        if chars.len() % 2 == 1 {
            let hi = (chars[0] as char).to_digit(16)?;
            bytes.push(hi as u8);
            idx = 1;
        }
        while idx < chars.len() {
            let hi = (chars[idx] as char).to_digit(16)?;
            let lo = (chars[idx + 1] as char).to_digit(16)?;
            bytes.push(((hi << 4) | lo) as u8);
            idx += 2;
        }
        Some(BigUint::from_bytes_be(&bytes))
    }

    /// Lowercase hexadecimal representation (no prefix, `"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:08x}"));
            }
        }
        s
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().map(|l| l % 2 == 0).unwrap_or(true)
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (LSB is bit 0).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let off = i % 32;
        self.limbs
            .get(limb)
            .map(|l| (l >> off) & 1 == 1)
            .unwrap_or(false)
    }

    /// Converts to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = *self.limbs.get(i).unwrap_or(&0) as u64;
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let sum = a + b + carry;
            out.push((sum & 0xFFFF_FFFF) as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Subtraction; panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "BigUint::sub would underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1i64 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Comparison.
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + (a as u64) * (b as u64) + carry;
                out[i + j] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u64 + carry;
                out[k] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by `bits` bits.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `bits` bits.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            for i in limb_shift..self.limbs.len() {
                let lo = self.limbs[i] >> bit_shift;
                let hi = if i + 1 < self.limbs.len() {
                    self.limbs[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Division with remainder: returns `(quotient, remainder)`.
    ///
    /// Panics if `divisor` is zero. Uses a single-limb fast path and Knuth
    /// Algorithm D for multi-limb divisors.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_big(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut q = vec![0u32; self.limbs.len()];
            let mut rem = 0u64;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut quotient = BigUint { limbs: q };
            quotient.normalize();
            return (quotient, BigUint::from_u64(rem));
        }
        self.div_rem_knuth(divisor)
    }

    /// Knuth TAOCP vol. 2, Algorithm 4.3.1 D.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        const BASE: u64 = 1 << 32;
        // Normalize so the top limb of the divisor has its high bit set.
        // analyzer:allow(no-unwrap-in-lib, div_rem asserts the divisor is non-zero before dispatching here, so a top limb exists)
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl(shift);
        let mut u = self.shl(shift).limbs;
        let n = v.limbs.len();
        let m = u.len() - n;
        u.push(0); // extra limb for the algorithm

        let mut q = vec![0u32; m + 1];
        let v_hi = v.limbs[n - 1] as u64;
        let v_next = v.limbs[n - 2] as u64;

        for j in (0..=m).rev() {
            let u_top = (u[j + n] as u64) * BASE + u[j + n - 1] as u64;
            let mut qhat = u_top / v_hi;
            let mut rhat = u_top % v_hi;

            // Correct qhat (at most twice).
            while qhat >= BASE || qhat * v_next > rhat * BASE + u[j + n - 2] as u64 {
                qhat -= 1;
                rhat += v_hi;
                if rhat >= BASE {
                    break;
                }
            }

            // Multiply and subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * v.limbs[i] as u64 + carry;
                carry = p >> 32;
                let sub = (p & 0xFFFF_FFFF) as i64;
                let mut diff = u[j + i] as i64 - sub - borrow;
                if diff < 0 {
                    diff += BASE as i64;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                u[j + i] = diff as u32;
            }
            let mut diff = u[j + n] as i64 - carry as i64 - borrow;
            if diff < 0 {
                diff += BASE as i64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            u[j + n] = diff as u32;

            if borrow != 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let sum = u[j + i] as u64 + v.limbs[i] as u64 + carry;
                    u[j + i] = (sum & 0xFFFF_FFFF) as u32;
                    carry = sum >> 32;
                }
                u[j + n] = (u[j + n] as u64 + carry) as u32;
            }
            q[j] = qhat as u32;
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint {
            limbs: u[..n].to_vec(),
        };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular addition.
    pub fn add_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.add(other).rem(modulus)
    }

    /// Modular multiplication.
    pub fn mul_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation via square-and-multiply.
    pub fn mod_pow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "mod_pow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem(modulus);
        let bits = exponent.bits();
        for i in 0..bits {
            if exponent.bit(i) {
                result = result.mul_mod(&base, modulus);
            }
            if i + 1 < bits {
                base = base.mul_mod(&base, modulus);
            }
        }
        result
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse of `self` modulo `modulus`, if it exists.
    ///
    /// Uses the extended Euclidean algorithm with explicit sign tracking.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || self.is_zero() {
            return None;
        }
        // (old_r, r), (old_s, s) where s coefficients carry a sign flag.
        let mut old_r = self.rem(modulus);
        let mut r = modulus.clone();
        let mut old_s = (BigUint::one(), false); // (magnitude, negative?)
        let mut s = (BigUint::zero(), false);

        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);

            // new_s = old_s - q * s  (signed)
            let qs = q.mul(&s.0);
            let new_s = signed_sub(&old_s, &(qs, s.1));
            old_s = std::mem::replace(&mut s, new_s);
        }

        if !old_r.is_one() {
            return None; // not coprime
        }
        // Reduce old_s into [0, modulus).
        let (mag, neg) = old_s;
        let mag = mag.rem(modulus);
        if neg && !mag.is_zero() {
            Some(modulus.sub(&mag))
        } else {
            Some(mag)
        }
    }

    /// Generates a uniformly random value in `[0, bound)` (`bound > 0`).
    pub fn random_below<R: Rng + ?Sized>(bound: &BigUint, rng: &mut R) -> BigUint {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bits();
        loop {
            let candidate = BigUint::random_bits(bits, rng);
            if candidate.cmp_big(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Generates a random value with at most `bits` bits.
    pub fn random_bits<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
        let limbs_needed = bits.div_ceil(32);
        let mut limbs = Vec::with_capacity(limbs_needed);
        for _ in 0..limbs_needed {
            limbs.push(rng.gen::<u32>());
        }
        // Mask off excess bits in the top limb.
        let excess = limbs_needed * 32 - bits;
        if excess > 0 {
            if let Some(top) = limbs.last_mut() {
                *top &= u32::MAX >> excess;
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Generates a random odd value with exactly `bits` bits (top bit set).
    pub fn random_odd_with_bits<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
        assert!(bits >= 2);
        let v = BigUint::random_bits(bits, rng);
        // Force the top bit (exact width) and the bottom bit (odd).
        let mut limbs = v.limbs;
        let limb_idx = (bits - 1) / 32;
        while limbs.len() <= limb_idx {
            limbs.push(0);
        }
        limbs[limb_idx] |= 1 << ((bits - 1) % 32);
        limbs[0] |= 1;
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rounds: usize, rng: &mut R) -> bool {
        const SMALL_PRIMES: [u64; 15] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];
        if self.is_zero() || self.is_one() {
            return false;
        }
        for &p in &SMALL_PRIMES {
            let pb = BigUint::from_u64(p);
            match self.cmp_big(&pb) {
                Ordering::Equal => return true,
                Ordering::Less => return false,
                Ordering::Greater => {
                    if self.rem(&pb).is_zero() {
                        return false;
                    }
                }
            }
        }
        // Write self - 1 = d * 2^s with d odd.
        let one = BigUint::one();
        let two = BigUint::from_u64(2);
        let n_minus_1 = self.sub(&one);
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }

        'witness: for _ in 0..rounds {
            // Random base in [2, n-2].
            let range = self.sub(&BigUint::from_u64(3));
            let a = BigUint::random_below(&range, rng).add(&two);
            let mut x = a.mod_pow(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mul_mod(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generates a random probable prime with exactly `bits` bits.
    pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
        loop {
            let candidate = BigUint::random_odd_with_bits(bits, rng);
            if candidate.is_probable_prime(20, rng) {
                return candidate;
            }
        }
    }
}

/// Signed subtraction helper for the extended Euclidean algorithm:
/// computes `a - b` where both operands are `(magnitude, negative?)` pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => {
            if a.0.cmp_big(&b.0) != Ordering::Less {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.0.cmp_big(&a.0) != Ordering::Less {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(big(0x8000_0000).bits(), 32);
        assert_eq!(big(0x1_0000_0000).bits(), 33);
    }

    #[test]
    fn add_sub_round_trip_u64() {
        let a = big(0xFFFF_FFFF_FFFF_0001);
        let b = big(0x0000_0000_FFFF_FFFF);
        let sum = a.add(&b);
        assert_eq!(sum.sub(&b), a);
        assert_eq!(sum.sub(&a), b);
    }

    #[test]
    fn addition_carries_across_limbs() {
        let a = big(u64::MAX);
        let one = BigUint::one();
        let sum = a.add(&one);
        assert_eq!(sum.to_hex(), "10000000000000000");
        assert_eq!(sum.bits(), 65);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = big(1).sub(&big(2));
    }

    #[test]
    fn multiplication_matches_u128() {
        let cases = [
            (0u64, 0u64),
            (1, u64::MAX),
            (u64::MAX, u64::MAX),
            (0xDEAD_BEEF, 0xFEED_FACE_CAFE_F00D),
            (12345678901234567, 987654321),
        ];
        for (x, y) in cases {
            let expected = (x as u128) * (y as u128);
            let got = big(x).mul(&big(y));
            assert_eq!(got.to_hex(), format!("{expected:x}"), "{x} * {y}");
        }
    }

    #[test]
    fn division_single_limb() {
        let (q, r) = big(1_000_000_007).div_rem(&big(97));
        assert_eq!(q.to_u64(), Some(1_000_000_007 / 97));
        assert_eq!(r.to_u64(), Some(1_000_000_007 % 97));
    }

    #[test]
    fn division_matches_u128() {
        let cases: [(u128, u128); 6] = [
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128),
            (0xFFFF_FFFF_FFFF_FFFF_FFFF_FFFF, 0x1_0000_0001),
            (98765432109876543210987654321, 12345678901234567),
            (1 << 100, (1 << 50) + 1),
            (
                340282366920938463463374607431768211455,
                18446744073709551616,
            ),
        ];
        for (x, y) in cases {
            let xb = BigUint::from_hex(&format!("{x:x}")).unwrap();
            let yb = BigUint::from_hex(&format!("{y:x}")).unwrap();
            let (q, r) = xb.div_rem(&yb);
            assert_eq!(q.to_hex(), format!("{:x}", x / y), "{x} / {y}");
            assert_eq!(r.to_hex(), format!("{:x}", x % y), "{x} % {y}");
        }
    }

    #[test]
    fn division_identity_holds_for_random_values() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let a = BigUint::random_bits(256, &mut rng);
            let mut b = BigUint::random_bits(128, &mut rng);
            if b.is_zero() {
                b = BigUint::one();
            }
            let (q, r) = a.div_rem(&b);
            assert!(r.cmp_big(&b) == Ordering::Less);
            assert_eq!(q.mul(&b).add(&r), a);
        }
    }

    #[test]
    fn shifts_are_inverse() {
        let v = BigUint::from_hex("deadbeefcafebabe1234567890abcdef").unwrap();
        for bits in [1usize, 7, 31, 32, 33, 64, 100] {
            assert_eq!(v.shl(bits).shr(bits), v, "shift {bits}");
        }
        assert_eq!(v.shr(200), BigUint::zero());
    }

    #[test]
    fn bytes_round_trip() {
        let v = BigUint::from_hex("0123456789abcdef00ff").unwrap();
        let bytes = v.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        let padded = v.to_bytes_be_padded(16).unwrap();
        assert_eq!(padded.len(), 16);
        assert_eq!(BigUint::from_bytes_be(&padded), v);
        assert!(v.to_bytes_be_padded(2).is_none());
    }

    #[test]
    fn hex_round_trip() {
        for hex in ["1", "ff", "deadbeef", "123456789abcdef0123456789abcdef"] {
            let v = BigUint::from_hex(hex).unwrap();
            assert_eq!(v.to_hex(), hex);
        }
        assert!(BigUint::from_hex("xyz").is_none());
        assert!(BigUint::from_hex("").is_none());
    }

    #[test]
    fn mod_pow_small_cases() {
        // 4^13 mod 497 = 445
        assert_eq!(big(4).mod_pow(&big(13), &big(497)).to_u64(), Some(445));
        // Fermat: a^(p-1) = 1 mod p
        let p = big(1_000_000_007);
        assert_eq!(
            big(123456).mod_pow(&p.sub(&BigUint::one()), &p).to_u64(),
            Some(1)
        );
        assert_eq!(big(5).mod_pow(&BigUint::zero(), &big(7)).to_u64(), Some(1));
        assert_eq!(big(5).mod_pow(&big(100), &BigUint::one()).to_u64(), Some(0));
    }

    #[test]
    fn mod_inverse_small_cases() {
        let inv = big(3).mod_inverse(&big(11)).unwrap();
        assert_eq!(inv.to_u64(), Some(4)); // 3*4 = 12 = 1 mod 11
        let inv = big(17).mod_inverse(&big(3120)).unwrap();
        assert_eq!(inv.to_u64(), Some(2753)); // classic RSA example
        assert!(big(6).mod_inverse(&big(9)).is_none()); // gcd != 1
    }

    #[test]
    fn mod_inverse_random_values_verify() {
        let mut rng = StdRng::seed_from_u64(7);
        let modulus = BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap(); // prime-ish
        for _ in 0..50 {
            let a = BigUint::random_below(&modulus, &mut rng);
            if a.is_zero() || !a.gcd(&modulus).is_one() {
                continue;
            }
            let inv = a.mod_inverse(&modulus).unwrap();
            assert!(a.mul_mod(&inv, &modulus).is_one());
        }
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(big(48).gcd(&big(36)).to_u64(), Some(12));
        assert_eq!(big(17).gcd(&big(31)).to_u64(), Some(1));
        assert_eq!(big(0).gcd(&big(5)).to_u64(), Some(5));
    }

    #[test]
    fn miller_rabin_classifies_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let primes = [2u64, 3, 5, 97, 7919, 1_000_000_007, 2_147_483_647];
        for p in primes {
            assert!(
                big(p).is_probable_prime(20, &mut rng),
                "{p} should be prime"
            );
        }
        let composites = [1u64, 4, 100, 561, 1105, 1729, 1_000_000_009u64 * 3];
        for c in composites {
            assert!(
                !big(c).is_probable_prime(20, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn gen_prime_produces_primes_of_requested_size() {
        let mut rng = StdRng::seed_from_u64(99);
        let p = BigUint::gen_prime(64, &mut rng);
        assert_eq!(p.bits(), 64);
        assert!(p.is_probable_prime(20, &mut rng));
        assert!(!p.is_even());
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = big(1000);
        for _ in 0..100 {
            let v = BigUint::random_below(&bound, &mut rng);
            assert!(v.cmp_big(&bound) == Ordering::Less);
        }
    }

    #[test]
    fn ordering_implementation_matches_cmp_big() {
        let a = big(5);
        let b = big(7);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
