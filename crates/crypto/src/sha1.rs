//! SHA-1 implemented from FIPS 180-4.
//!
//! SHA-1 produces exactly the 20-byte digests the paper's experiments assume
//! ("A digest consumes 20 bytes for both SAE and TOM"). The implementation is
//! a straightforward streaming Merkle–Damgård construction; it is *not*
//! intended to resist modern collision attacks, but it plays the same
//! structural role (one-way, collision-resistant in the paper's threat model)
//! and its cost profile matches what the original evaluation measured.

use crate::digest::{Digest, DIGEST_LEN};

const BLOCK_LEN: usize = 64;
const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: H0,
            buffer: [0u8; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        if self.buffer_len > 0 {
            let want = BLOCK_LEN - self.buffer_len;
            let take = want.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        let mut chunks = input.chunks_exact(BLOCK_LEN);
        for block in &mut chunks {
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    /// Finalizes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero padding, then the 64-bit big-endian length.
        self.update_padding(0x80);
        while self.buffer_len != 56 {
            self.update_padding(0x00);
        }
        let len_bytes = bit_len.to_be_bytes();
        for b in len_bytes {
            self.update_padding(b);
        }
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::new(out)
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    fn update_padding(&mut self, byte: u8) {
        self.buffer[self.buffer_len] = byte;
        self.buffer_len += 1;
        if self.buffer_len == BLOCK_LEN {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        Sha1::digest(data).to_hex()
    }

    #[test]
    fn empty_string() {
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc() {
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex(b"The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let one_shot = Sha1::digest(&data);
        for chunk_size in [1usize, 3, 17, 63, 64, 65, 200] {
            let mut h = Sha1::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), one_shot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths_are_consistent() {
        // Exercise all padding branches: lengths around the 56/64-byte
        // boundaries must produce distinct, deterministic digests.
        let mut seen = std::collections::HashSet::new();
        for len in 50..=70usize {
            let data = vec![0x42u8; len];
            let d1 = Sha1::digest(&data);
            let d2 = Sha1::digest(&data);
            assert_eq!(d1, d2);
            assert!(seen.insert(d1), "collision for length {len}");
        }
    }

    #[test]
    fn different_inputs_give_different_digests() {
        assert_ne!(Sha1::digest(b"record-1"), Sha1::digest(b"record-2"));
    }
}
