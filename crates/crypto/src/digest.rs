//! The 20-byte digest type and the XOR-aggregation algebra used by SAE.
//!
//! The paper fixes the digest size at 20 bytes (the output length of SHA-1,
//! the hash provided by Crypto++ at the time). The SAE verification token is
//! the XOR of the digests of every record in the query result:
//!
//! ```text
//! VT = TS⊕ = t_i.h ⊕ t_{i+1}.h ⊕ … ⊕ t_j.h
//! ```
//!
//! [`Digest`] implements that algebra directly (`^`, `^=`), and [`XorDigest`]
//! is a tiny accumulator with the semantics of a set-XOR: folding the same
//! digest in twice cancels it out, and the identity element is the all-zero
//! digest.

use std::fmt;
use std::ops::{BitXor, BitXorAssign};

/// Length of every digest in the system, in bytes (the paper uses 20-byte
/// digests for both SAE and TOM).
pub const DIGEST_LEN: usize = 20;

/// A fixed-size 20-byte message digest.
///
/// `Digest` is the unit of authentication information everywhere in the
/// repository: record digests stored by the trusted entity, per-entry digests
/// inside the MB-Tree, XOR aggregates inside the XB-Tree and the verification
/// token itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest — the identity element of the XOR algebra.
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Creates a digest from a raw 20-byte array.
    pub const fn new(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// Creates a digest from a byte slice.
    ///
    /// Returns `None` if the slice is not exactly [`DIGEST_LEN`] bytes long.
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != DIGEST_LEN {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        out.copy_from_slice(bytes);
        Some(Digest(out))
    }

    /// Returns the raw bytes of the digest.
    pub const fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Returns `true` if this is the all-zero digest.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// XORs `other` into `self` in place.
    pub fn xor_in_place(&mut self, other: &Digest) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a ^= *b;
        }
    }

    /// Returns the lowercase hexadecimal representation of the digest.
    pub fn to_hex(&self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in &self.0 {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0xf) as usize] as char);
        }
        s
    }

    /// Parses a digest from a 40-character hexadecimal string.
    pub fn from_hex(hex: &str) -> Option<Self> {
        let hex = hex.trim();
        if hex.len() != DIGEST_LEN * 2 {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        let bytes = hex.as_bytes();
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::ZERO
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl BitXor for Digest {
    type Output = Digest;

    fn bitxor(self, rhs: Digest) -> Digest {
        let mut out = self;
        out.xor_in_place(&rhs);
        out
    }
}

impl BitXorAssign for Digest {
    fn bitxor_assign(&mut self, rhs: Digest) {
        self.xor_in_place(&rhs);
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

/// Accumulator computing the XOR of a stream of digests (`S⊕` in the paper).
///
/// The accumulator starts at [`Digest::ZERO`]; folding the digests of a set of
/// records in any order — or folding two accumulators together — yields the
/// set-XOR of the digests. Folding the same digest twice cancels it, mirroring
/// the algebra the paper relies on for its security argument
/// (`DS⊕ = IS⊕` must be computationally infeasible to engineer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XorDigest {
    acc: Digest,
}

impl XorDigest {
    /// Creates an empty accumulator (identity element).
    pub fn new() -> Self {
        XorDigest { acc: Digest::ZERO }
    }

    /// Creates an accumulator seeded with a single digest.
    pub fn from_digest(d: Digest) -> Self {
        XorDigest { acc: d }
    }

    /// Folds one digest into the accumulator.
    pub fn fold(&mut self, d: &Digest) {
        self.acc.xor_in_place(d);
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &XorDigest) {
        self.acc.xor_in_place(&other.acc);
    }

    /// Returns the accumulated XOR value.
    pub fn value(&self) -> Digest {
        self.acc
    }

    /// Returns `true` if the accumulator is the identity (all zero).
    pub fn is_identity(&self) -> bool {
        self.acc.is_zero()
    }

    /// Computes the XOR of an iterator of digests.
    pub fn of<'a, I: IntoIterator<Item = &'a Digest>>(iter: I) -> Digest {
        let mut acc = XorDigest::new();
        for d in iter {
            acc.fold(d);
        }
        acc.value()
    }
}

impl FromIterator<Digest> for XorDigest {
    fn from_iter<T: IntoIterator<Item = Digest>>(iter: T) -> Self {
        let mut acc = XorDigest::new();
        for d in iter {
            acc.fold(&d);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(byte: u8) -> Digest {
        Digest([byte; DIGEST_LEN])
    }

    #[test]
    fn zero_is_identity() {
        let a = d(0xAB);
        assert_eq!(a ^ Digest::ZERO, a);
        assert_eq!(Digest::ZERO ^ a, a);
        assert!(Digest::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = d(0x5C);
        assert_eq!(a ^ a, Digest::ZERO);
    }

    #[test]
    fn xor_is_commutative_and_associative() {
        let a = d(0x11);
        let b = d(0x22);
        let c = d(0x44);
        assert_eq!(a ^ b, b ^ a);
        assert_eq!((a ^ b) ^ c, a ^ (b ^ c));
    }

    #[test]
    fn xor_assign_matches_xor() {
        let a = d(0x0F);
        let b = d(0xF0);
        let mut c = a;
        c ^= b;
        assert_eq!(c, a ^ b);
        assert_eq!(c, d(0xFF));
    }

    #[test]
    fn hex_round_trip() {
        let mut bytes = [0u8; DIGEST_LEN];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(13).wrapping_add(7);
        }
        let digest = Digest(bytes);
        let hex = digest.to_hex();
        assert_eq!(hex.len(), 40);
        assert_eq!(Digest::from_hex(&hex), Some(digest));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Digest::from_hex("abcd"), None);
        assert_eq!(Digest::from_hex(&"zz".repeat(DIGEST_LEN)), None);
    }

    #[test]
    fn from_slice_checks_length() {
        assert!(Digest::from_slice(&[0u8; DIGEST_LEN]).is_some());
        assert!(Digest::from_slice(&[0u8; DIGEST_LEN - 1]).is_none());
        assert!(Digest::from_slice(&[0u8; DIGEST_LEN + 1]).is_none());
    }

    #[test]
    fn accumulator_matches_manual_fold() {
        let digests = [d(1), d(2), d(4), d(8)];
        let acc: XorDigest = digests.iter().copied().collect();
        assert_eq!(acc.value(), d(1 ^ 2 ^ 4 ^ 8));
        assert_eq!(XorDigest::of(digests.iter()), d(15));
    }

    #[test]
    fn accumulator_double_fold_cancels() {
        let mut acc = XorDigest::new();
        acc.fold(&d(0x77));
        acc.fold(&d(0x77));
        assert!(acc.is_identity());
    }

    #[test]
    fn accumulator_merge_equals_union_fold() {
        let left: XorDigest = [d(1), d(2)].into_iter().collect();
        let right: XorDigest = [d(3), d(9)].into_iter().collect();
        let mut merged = left;
        merged.merge(&right);
        let all: XorDigest = [d(1), d(2), d(3), d(9)].into_iter().collect();
        assert_eq!(merged, all);
    }

    #[test]
    fn display_and_debug_show_hex() {
        let digest = d(0xAB);
        assert_eq!(format!("{digest}"), "ab".repeat(DIGEST_LEN));
        assert!(format!("{digest:?}").contains(&"ab".repeat(DIGEST_LEN)));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut lo = [0u8; DIGEST_LEN];
        let mut hi = [0u8; DIGEST_LEN];
        lo[0] = 1;
        hi[0] = 2;
        assert!(Digest(lo) < Digest(hi));
    }
}
