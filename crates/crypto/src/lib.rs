//! # sae-crypto
//!
//! Cryptographic substrate for the SAE reproduction ("Separating Authentication
//! from Query Execution in Outsourced Databases", ICDE 2009).
//!
//! The paper implements all cryptographic components with the Crypto++ library
//! and uses 20-byte digests. This crate provides from-scratch replacements:
//!
//! * [`Digest`] — the fixed 20-byte digest type used throughout the system,
//!   together with the XOR-aggregation algebra that underpins the SAE
//!   verification token (`VT = t_i.h ⊕ … ⊕ t_j.h`).
//! * [`sha1`] / [`sha256`] — one-way, collision-resistant hash functions
//!   implemented from the FIPS specifications (SHA-256 output is truncated to
//!   20 bytes when used through [`HashAlgorithm::Sha256`]).
//! * [`hmac`] — keyed MACs over either hash, used by the fast
//!   [`signer::MacSigner`] and in tests.
//! * [`bigint`] / [`rsa`] — an unsigned big-integer implementation and a
//!   textbook RSA signature scheme, standing in for the public-key signature
//!   the data owner places on the MB-Tree root in the TOM baseline.
//! * [`signer`] — the [`signer::Signer`] / [`signer::Verifier`] abstraction the
//!   outsourcing models program against, with RSA and MAC implementations.
//!
//! Everything in this crate is deterministic and dependency-free apart from
//! `rand` (key generation), which makes it suitable for the simulation-style
//! benchmarks in `sae-bench`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bigint;
pub mod digest;
pub mod hash;
pub mod hmac;
pub mod rsa;
pub mod sha1;
pub mod sha256;
pub mod signer;

pub use digest::{Digest, XorDigest, DIGEST_LEN};
pub use hash::{hash_bytes, HashAlgorithm, Hasher};
pub use rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey, RsaSignature};
pub use signer::{MacSigner, RsaSigner, SignatureBytes, Signer, Verifier};
