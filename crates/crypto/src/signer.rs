//! The signature abstraction used by the outsourcing models.
//!
//! In TOM the data owner signs the MB-Tree root digest; the service provider
//! forwards the signature inside every verification object and clients verify
//! it against the owner's public key. The outsourcing code programs against
//! [`Signer`] / [`Verifier`] so the concrete scheme can be swapped:
//!
//! * [`RsaSigner`] — the textbook RSA implementation from [`crate::rsa`],
//!   mirroring the paper's Crypto++ RSA setup (signature size = modulus size).
//! * [`MacSigner`] — an HMAC-based symmetric stand-in for unit tests where
//!   millisecond-level key generation matters more than the public-key trust
//!   model (tag size = 20 bytes).

use crate::digest::Digest;
use crate::hash::HashAlgorithm;
use crate::hmac::HmacKey;
use crate::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
use rand::Rng;

/// An opaque signature as transmitted inside a verification object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignatureBytes(pub Vec<u8>);

impl SignatureBytes {
    /// Signature size in bytes (contributes to the VO communication cost).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the signature is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Something that can sign a 20-byte digest (the data owner's role).
pub trait Signer {
    /// Signs a digest.
    fn sign(&self, digest: &Digest) -> SignatureBytes;
}

/// Something that can verify a signature over a digest (the client's role).
pub trait Verifier {
    /// Verifies `signature` over `digest`.
    fn verify(&self, digest: &Digest, signature: &SignatureBytes) -> bool;
}

/// RSA-backed signer/verifier pair.
#[derive(Clone, Debug)]
pub struct RsaSigner {
    key_pair: RsaKeyPair,
}

impl RsaSigner {
    /// Creates a signer from an existing key pair.
    pub fn new(key_pair: RsaKeyPair) -> Self {
        RsaSigner { key_pair }
    }

    /// Generates a fresh key pair of `bits` bits.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        RsaSigner {
            key_pair: RsaKeyPair::generate(bits, rng),
        }
    }

    /// Fast deterministic signer for tests (512-bit key).
    pub fn insecure_test_signer() -> Self {
        RsaSigner {
            key_pair: RsaKeyPair::insecure_test_key(),
        }
    }

    /// The public key clients use for verification.
    pub fn public_key(&self) -> RsaPublicKey {
        self.key_pair.public.clone()
    }

    /// The verifier half (what the data owner publishes).
    pub fn verifier(&self) -> RsaVerifier {
        RsaVerifier {
            public: self.key_pair.public.clone(),
        }
    }

    /// Signature size in bytes.
    pub fn signature_len(&self) -> usize {
        self.key_pair.modulus_len()
    }
}

impl Signer for RsaSigner {
    fn sign(&self, digest: &Digest) -> SignatureBytes {
        SignatureBytes(self.key_pair.private.sign(digest).as_bytes().to_vec())
    }
}

/// RSA verifier holding only the public key.
#[derive(Clone, Debug)]
pub struct RsaVerifier {
    public: RsaPublicKey,
}

impl Verifier for RsaVerifier {
    fn verify(&self, digest: &Digest, signature: &SignatureBytes) -> bool {
        self.public
            .verify(digest, &RsaSignature::from_bytes(signature.0.clone()))
    }
}

impl Verifier for RsaSigner {
    fn verify(&self, digest: &Digest, signature: &SignatureBytes) -> bool {
        self.verifier().verify(digest, signature)
    }
}

/// HMAC-backed symmetric signer (verification requires the same key).
#[derive(Clone, Debug)]
pub struct MacSigner {
    key: HmacKey,
}

impl MacSigner {
    /// Creates a MAC signer from key material.
    pub fn new(key: impl Into<Vec<u8>>) -> Self {
        MacSigner {
            key: HmacKey::new(HashAlgorithm::Sha1, key),
        }
    }

    /// Tag size in bytes.
    pub fn signature_len(&self) -> usize {
        crate::digest::DIGEST_LEN
    }
}

impl Signer for MacSigner {
    fn sign(&self, digest: &Digest) -> SignatureBytes {
        SignatureBytes(self.key.tag(digest.as_bytes()).as_bytes().to_vec())
    }
}

impl Verifier for MacSigner {
    fn verify(&self, digest: &Digest, signature: &SignatureBytes) -> bool {
        let Some(tag) = Digest::from_slice(&signature.0) else {
            return false;
        };
        self.key.verify(digest.as_bytes(), &tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_bytes;

    #[test]
    fn rsa_signer_round_trip_through_trait_objects() {
        let signer = RsaSigner::insecure_test_signer();
        let verifier = signer.verifier();
        let digest = hash_bytes(b"root digest");
        let signer_dyn: &dyn Signer = &signer;
        let verifier_dyn: &dyn Verifier = &verifier;
        let sig = signer_dyn.sign(&digest);
        assert!(verifier_dyn.verify(&digest, &sig));
        assert!(!verifier_dyn.verify(&hash_bytes(b"other"), &sig));
    }

    #[test]
    fn rsa_signature_len_matches_modulus() {
        let signer = RsaSigner::insecure_test_signer();
        let sig = signer.sign(&hash_bytes(b"x"));
        assert_eq!(sig.len(), signer.signature_len());
        assert_eq!(sig.len(), 64); // 512-bit test key
    }

    #[test]
    fn mac_signer_round_trip() {
        let signer = MacSigner::new(b"do-te shared secret".to_vec());
        let digest = hash_bytes(b"root");
        let sig = signer.sign(&digest);
        assert_eq!(sig.len(), 20);
        assert!(signer.verify(&digest, &sig));
        assert!(!signer.verify(&hash_bytes(b"not root"), &sig));
    }

    #[test]
    fn mac_signer_rejects_garbage_signature() {
        let signer = MacSigner::new(b"key".to_vec());
        let digest = hash_bytes(b"root");
        assert!(!signer.verify(&digest, &SignatureBytes(vec![1, 2, 3])));
        assert!(!signer.verify(&digest, &SignatureBytes(vec![0u8; 20])));
    }

    #[test]
    fn different_mac_keys_do_not_cross_verify() {
        let a = MacSigner::new(b"key-a".to_vec());
        let b = MacSigner::new(b"key-b".to_vec());
        let digest = hash_bytes(b"root");
        let sig = a.sign(&digest);
        assert!(!b.verify(&digest, &sig));
    }
}
