//! Textbook RSA signatures over the crate's [`BigUint`].
//!
//! In TOM the data owner signs the MB-Tree root digest with a public-key
//! signature (the paper used RSA via Crypto++). This module provides a
//! self-contained replacement: key generation from two random probable primes,
//! deterministic PKCS#1-v1.5-style padding of the 20-byte digest, and
//! signing/verification by modular exponentiation.
//!
//! **Scope note** — this is a faithful *functional and cost* stand-in for the
//! evaluation, not a hardened cryptographic implementation: there is no
//! blinding, no constant-time guarantee, and the padding is a simplified
//! PKCS#1 v1.5 layout without an ASN.1 `DigestInfo` prefix. The outsourcing
//! protocol treats signatures as an abstract primitive through the
//! [`crate::signer::Signer`] trait, so a production deployment would swap in a
//! vetted implementation.

use crate::bigint::BigUint;
use crate::digest::Digest;
use rand::Rng;

/// Default modulus size for generated keys, in bits.
pub const DEFAULT_KEY_BITS: usize = 1024;

/// The public half of an RSA key pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus `n = p * q`.
    pub n: BigUint,
    /// Public exponent `e` (65537).
    pub e: BigUint,
}

/// The private half of an RSA key pair.
#[derive(Clone, Debug)]
pub struct RsaPrivateKey {
    /// Modulus `n = p * q`.
    pub n: BigUint,
    /// Private exponent `d = e^{-1} mod λ(n)`.
    pub d: BigUint,
}

/// An RSA key pair.
#[derive(Clone, Debug)]
pub struct RsaKeyPair {
    /// Public key (distributed to clients).
    pub public: RsaPublicKey,
    /// Private key (held by the data owner).
    pub private: RsaPrivateKey,
}

/// An RSA signature: the padded digest raised to the private exponent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaSignature {
    bytes: Vec<u8>,
}

impl RsaSignature {
    /// The signature as raw big-endian bytes (fixed at the modulus length).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Constructs a signature from raw bytes (e.g. received over the wire).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        RsaSignature { bytes }
    }

    /// Signature length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the signature is empty (never true for real signatures).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of `bits` bits.
    ///
    /// `bits` must be at least 256 (so the padded digest fits comfortably).
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 256, "RSA modulus must be at least 256 bits");
        let e = BigUint::from_u64(65537);
        loop {
            let p = BigUint::gen_prime(bits / 2, rng);
            let q = BigUint::gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bits() != bits {
                continue;
            }
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            let Some(d) = e.mod_inverse(&phi) else {
                continue;
            };
            return RsaKeyPair {
                public: RsaPublicKey { n: n.clone(), e },
                private: RsaPrivateKey { n, d },
            };
        }
    }

    /// A fixed, small (512-bit) key pair for fast deterministic tests.
    ///
    /// **Never** use this outside tests/benches: the key is public knowledge.
    pub fn insecure_test_key() -> Self {
        // Derive the key pair deterministically from a seeded RNG: the RSA
        // identity needs real primes, and the seed keeps repeated test runs
        // on one fixed 512-bit key without shipping frozen constants.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5AE_2009);
        RsaKeyPair::generate(512, &mut rng)
    }

    /// Modulus length in bytes (also the signature length).
    pub fn modulus_len(&self) -> usize {
        self.public.n.bits().div_ceil(8)
    }
}

/// Deterministically pads a 20-byte digest to the modulus length:
/// `0x00 0x01 0xFF … 0xFF 0x00 || digest` (simplified PKCS#1 v1.5).
fn pad_digest(digest: &Digest, modulus_len: usize) -> Vec<u8> {
    assert!(
        modulus_len >= digest.as_bytes().len() + 11,
        "modulus too small for padded digest"
    );
    let mut out = Vec::with_capacity(modulus_len);
    out.push(0x00);
    out.push(0x01);
    let ff_len = modulus_len - digest.as_bytes().len() - 3;
    out.extend(std::iter::repeat_n(0xFF, ff_len));
    out.push(0x00);
    out.extend_from_slice(digest.as_bytes());
    out
}

impl RsaPrivateKey {
    /// Signs a 20-byte digest.
    pub fn sign(&self, digest: &Digest) -> RsaSignature {
        let modulus_len = self.n.bits().div_ceil(8);
        let padded = pad_digest(digest, modulus_len);
        let m = BigUint::from_bytes_be(&padded);
        let s = m.mod_pow(&self.d, &self.n);
        let bytes = s
            .to_bytes_be_padded(modulus_len)
            // analyzer:allow(no-unwrap-in-lib, mod_pow reduces by n so the signature always fits the modulus length)
            .expect("signature fits modulus length");
        RsaSignature { bytes }
    }
}

impl RsaPublicKey {
    /// Verifies a signature over a 20-byte digest.
    pub fn verify(&self, digest: &Digest, signature: &RsaSignature) -> bool {
        let modulus_len = self.n.bits().div_ceil(8);
        if signature.bytes.len() != modulus_len {
            return false;
        }
        let s = BigUint::from_bytes_be(&signature.bytes);
        if s.cmp_big(&self.n) != std::cmp::Ordering::Less {
            return false;
        }
        let m = s.mod_pow(&self.e, &self.n);
        let Some(recovered) = m.to_bytes_be_padded(modulus_len) else {
            return false;
        };
        recovered == pad_digest(digest, modulus_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_bytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_key() -> RsaKeyPair {
        RsaKeyPair::insecure_test_key()
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = test_key();
        let digest = hash_bytes(b"the MB-tree root digest");
        let sig = kp.private.sign(&digest);
        assert!(kp.public.verify(&digest, &sig));
    }

    #[test]
    fn verification_rejects_wrong_digest() {
        let kp = test_key();
        let sig = kp.private.sign(&hash_bytes(b"root A"));
        assert!(!kp.public.verify(&hash_bytes(b"root B"), &sig));
    }

    #[test]
    fn verification_rejects_tampered_signature() {
        let kp = test_key();
        let digest = hash_bytes(b"root");
        let sig = kp.private.sign(&digest);
        let mut bytes = sig.as_bytes().to_vec();
        bytes[5] ^= 0x40;
        assert!(!kp.public.verify(&digest, &RsaSignature::from_bytes(bytes)));
    }

    #[test]
    fn verification_rejects_wrong_length_signature() {
        let kp = test_key();
        let digest = hash_bytes(b"root");
        let sig = kp.private.sign(&digest);
        let short = RsaSignature::from_bytes(sig.as_bytes()[1..].to_vec());
        assert!(!kp.public.verify(&digest, &short));
    }

    #[test]
    fn signature_length_equals_modulus_length() {
        let kp = test_key();
        let sig = kp.private.sign(&hash_bytes(b"x"));
        assert_eq!(sig.len(), kp.modulus_len());
        assert!(!sig.is_empty());
    }

    #[test]
    fn signing_is_deterministic() {
        let kp = test_key();
        let digest = hash_bytes(b"deterministic");
        assert_eq!(kp.private.sign(&digest), kp.private.sign(&digest));
    }

    #[test]
    fn different_keys_reject_each_other() {
        let kp1 = test_key();
        let mut rng = StdRng::seed_from_u64(123);
        let kp2 = RsaKeyPair::generate(512, &mut rng);
        let digest = hash_bytes(b"cross key");
        let sig = kp1.private.sign(&digest);
        assert!(!kp2.public.verify(&digest, &sig));
    }

    #[test]
    fn generate_produces_requested_modulus_size() {
        let mut rng = StdRng::seed_from_u64(2024);
        let kp = RsaKeyPair::generate(512, &mut rng);
        assert_eq!(kp.public.n.bits(), 512);
        assert_eq!(kp.modulus_len(), 64);
        let digest = hash_bytes(b"freshly generated");
        let sig = kp.private.sign(&digest);
        assert!(kp.public.verify(&digest, &sig));
    }

    #[test]
    fn padding_layout_is_as_specified() {
        let digest = hash_bytes(b"pad me");
        let padded = pad_digest(&digest, 64);
        assert_eq!(padded.len(), 64);
        assert_eq!(padded[0], 0x00);
        assert_eq!(padded[1], 0x01);
        assert!(padded[2..64 - 21].iter().all(|&b| b == 0xFF));
        assert_eq!(padded[64 - 21], 0x00);
        assert_eq!(&padded[64 - 20..], digest.as_bytes());
    }
}
