//! HMAC (RFC 2104) over the crate's hash functions.
//!
//! HMAC is used by [`crate::signer::MacSigner`], the fast symmetric stand-in
//! for the public-key signature the data owner places on the MB-Tree root in
//! TOM. It is also generally useful for keyed integrity checks in tests.

use crate::digest::Digest;
use crate::hash::HashAlgorithm;

const BLOCK_LEN: usize = 64;

/// Computes `HMAC(key, message)` with the given hash algorithm, returning the
/// system's 20-byte digest.
///
/// The MAC is the standard RFC 2104 construction over the *full-width* hash
/// (20 bytes for SHA-1, 32 bytes for SHA-256); only the final tag is truncated
/// to the system digest size, so the SHA-256 variant agrees with the RFC 4231
/// test vectors on its 20-byte prefix.
pub fn hmac(alg: HashAlgorithm, key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK_LEN];
    match alg {
        HashAlgorithm::Sha1 => {
            if key.len() > BLOCK_LEN {
                let hashed = crate::sha1::Sha1::digest(key);
                key_block[..hashed.as_bytes().len()].copy_from_slice(hashed.as_bytes());
            } else {
                key_block[..key.len()].copy_from_slice(key);
            }
        }
        HashAlgorithm::Sha256 => {
            if key.len() > BLOCK_LEN {
                let hashed = crate::sha256::Sha256::digest_full(key);
                key_block[..hashed.len()].copy_from_slice(&hashed);
            } else {
                key_block[..key.len()].copy_from_slice(key);
            }
        }
    }

    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    match alg {
        HashAlgorithm::Sha1 => {
            let mut inner = crate::sha1::Sha1::new();
            inner.update(&ipad);
            inner.update(message);
            let inner_digest = inner.finalize();

            let mut outer = crate::sha1::Sha1::new();
            outer.update(&opad);
            outer.update(inner_digest.as_bytes());
            outer.finalize()
        }
        HashAlgorithm::Sha256 => {
            let mut inner = crate::sha256::Sha256::new();
            inner.update(&ipad);
            inner.update(message);
            let inner_full = inner.finalize_full();

            let mut outer = crate::sha256::Sha256::new();
            outer.update(&opad);
            outer.update(&inner_full);
            outer.finalize()
        }
    }
}

/// Convenience wrapper binding a key and algorithm together.
#[derive(Clone, Debug)]
pub struct HmacKey {
    alg: HashAlgorithm,
    key: Vec<u8>,
}

impl HmacKey {
    /// Creates a new HMAC key for the given algorithm.
    pub fn new(alg: HashAlgorithm, key: impl Into<Vec<u8>>) -> Self {
        HmacKey {
            alg,
            key: key.into(),
        }
    }

    /// Computes the tag for `message`.
    pub fn tag(&self, message: &[u8]) -> Digest {
        hmac(self.alg, &self.key, message)
    }

    /// Verifies a tag in constant-ish time.
    pub fn verify(&self, message: &[u8], tag: &Digest) -> bool {
        let expected = self.tag(message);
        // XOR-accumulate to avoid early exit on the first differing byte.
        let mut diff = 0u8;
        for (a, b) in expected.as_bytes().iter().zip(tag.as_bytes()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 2202 (HMAC-SHA1) and RFC 4231 (HMAC-SHA256) test vectors. The
    // SHA-256 vectors are compared on the truncated 20-byte prefix, which is
    // what this system uses as its tag.

    #[test]
    fn rfc2202_case1_sha1() {
        let key = [0x0bu8; 20];
        let tag = hmac(HashAlgorithm::Sha1, &key, b"Hi There");
        assert_eq!(tag.to_hex(), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_case2_sha1() {
        let tag = hmac(
            HashAlgorithm::Sha1,
            b"Jefe",
            b"what do ya want for nothing?",
        );
        assert_eq!(tag.to_hex(), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn rfc2202_case3_sha1() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac(HashAlgorithm::Sha1, &key, &data);
        assert_eq!(tag.to_hex(), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
    }

    #[test]
    fn rfc4231_case1_sha256_truncated() {
        let key = [0x0bu8; 20];
        let tag = hmac(HashAlgorithm::Sha256, &key, b"Hi There");
        let full = "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
        assert_eq!(tag.to_hex(), full[..40]);
    }

    #[test]
    fn rfc4231_case2_sha256_truncated() {
        let tag = hmac(
            HashAlgorithm::Sha256,
            b"Jefe",
            b"what do ya want for nothing?",
        );
        let full = "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
        assert_eq!(tag.to_hex(), full[..40]);
    }

    #[test]
    fn long_key_is_hashed_first() {
        // Keys longer than the block size must be hashed; just check the two
        // paths disagree and are deterministic.
        let long_key = vec![0x61u8; 100];
        let t1 = hmac(HashAlgorithm::Sha1, &long_key, b"msg");
        let t2 = hmac(HashAlgorithm::Sha1, &long_key, b"msg");
        let t3 = hmac(HashAlgorithm::Sha1, &long_key[..64], b"msg");
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn hmac_key_verify_round_trip() {
        let key = HmacKey::new(HashAlgorithm::Sha1, b"root-signing-key".to_vec());
        let tag = key.tag(b"root digest bytes");
        assert!(key.verify(b"root digest bytes", &tag));
        assert!(!key.verify(b"root digest bytez", &tag));
        let mut wrong = tag;
        wrong.0[0] ^= 1;
        assert!(!key.verify(b"root digest bytes", &wrong));
    }

    #[test]
    fn different_keys_give_different_tags() {
        let a = HmacKey::new(HashAlgorithm::Sha256, b"key-a".to_vec());
        let b = HmacKey::new(HashAlgorithm::Sha256, b"key-b".to_vec());
        assert_ne!(a.tag(b"m"), b.tag(b"m"));
    }
}
