//! The verifying scatter-gather client.
//!
//! [`NetClient`] is the networked twin of the in-process
//! [`sae_core::ShardedSaeEngine::query`] path. Given a published
//! [`ShardLayout`] and one endpoint per shard, it derives the responder set
//! *from the layout* (never from who happened to answer), fetches one slice
//! per overlapping shard over the wire, and hands the gathered slices to
//! [`sae_core::verify_slices`] — the *same* function the in-process engine
//! runs. There is no separate, weaker "network verification": an endpoint
//! that fails, stalls, returns an error, or simply goes missing yields a
//! [`ShardedVerifyError::MissingShardSlice`] verdict for its shard, and a
//! byzantine endpoint that doctors records or tokens is caught by the
//! per-slice token check.

use crate::frame::{read_frame, write_frame, Message, NetError, NetResult};
use sae_core::ShardedVerifyError;
use sae_core::{verify_slices, SaeClient, ShardLayout, ShardSlice, ShardedSaeEngine};
use sae_workload::RangeQuery;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Timeouts applied to every endpoint connection a [`NetClient`] opens.
#[derive(Clone, Copy, Debug)]
pub struct NetClientConfig {
    /// Bound on establishing a TCP connection to an endpoint.
    pub connect_timeout: Duration,
    /// Bound on waiting for a response frame.
    pub read_timeout: Duration,
    /// Bound on writing a request frame.
    pub write_timeout: Duration,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// The networked, verifying range-query client: scatter over per-shard
/// endpoints, gather the slices, verify exactly as in-process.
///
/// The client owns one lazily-opened, persistent connection per endpoint
/// (`&mut self` methods — use one `NetClient` per driver thread). A
/// connection that errors is discarded and re-dialled once before its shard
/// is declared missing.
pub struct NetClient {
    layout: ShardLayout,
    client: SaeClient,
    endpoints: Vec<String>,
    sockets: Vec<Option<TcpStream>>,
    cfg: NetClientConfig,
}

/// Everything one networked range query produced. The query itself is
/// infallible at the transport level by design: endpoint failures are not
/// "errors", they are *evidence*, folded into the [`verdict`] exactly like
/// a shard that refused to answer in-process.
///
/// [`verdict`]: NetQueryOutcome::verdict
#[derive(Debug)]
pub struct NetQueryOutcome {
    /// The slices that were actually received, in the order gathered.
    pub slices: Vec<ShardSlice>,
    /// The client-side verification verdict over the published layout —
    /// produced by [`sae_core::verify_slices`], the same function the
    /// in-process engine uses.
    pub verdict: Result<(), ShardedVerifyError>,
    /// Transport- or protocol-level failures, one per affected shard. Each
    /// of these also surfaces in [`verdict`] as a missing slice.
    ///
    /// [`verdict`]: NetQueryOutcome::verdict
    pub endpoint_errors: Vec<(usize, NetError)>,
    /// Request bytes written across all endpoints.
    pub bytes_sent: u64,
    /// Response bytes read across all endpoints.
    pub bytes_received: u64,
    /// Wall-clock time for the whole scatter-gather-verify round.
    pub elapsed_ms: f64,
}

impl NetQueryOutcome {
    /// Total records across all gathered slices.
    pub fn record_count(&self) -> usize {
        self.slices.iter().map(|s| s.records.len()).sum()
    }
}

impl NetClient {
    /// A client for a published `layout`, verifying with `client`, talking
    /// to `endpoints[i]` for shard `i`. Fails if the endpoint list does not
    /// cover the layout one-to-one.
    pub fn new(
        layout: ShardLayout,
        client: SaeClient,
        endpoints: Vec<String>,
        cfg: NetClientConfig,
    ) -> NetResult<NetClient> {
        if endpoints.len() != layout.shard_count() {
            return Err(NetError::Malformed(
                "endpoint list must name exactly one endpoint per layout shard",
            ));
        }
        let sockets = endpoints.iter().map(|_| None).collect();
        Ok(NetClient {
            layout,
            client,
            endpoints,
            sockets,
            cfg,
        })
    }

    /// Convenience constructor taking the layout and verification
    /// parameters from an engine — the common shape in tests and benches
    /// where the engine that built the shards also published the layout.
    pub fn for_engine(engine: &ShardedSaeEngine, endpoints: Vec<String>) -> NetResult<NetClient> {
        let template = engine.client();
        let client = match template.record_len() {
            Some(len) => SaeClient::with_record_len(template.algorithm(), len),
            None => SaeClient::new(template.algorithm()),
        };
        NetClient::new(
            engine.layout().clone(),
            client,
            endpoints,
            NetClientConfig::default(),
        )
    }

    /// The published layout this client scatters over.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Health-checks one endpoint with a `Ping`/`Pong` round trip.
    pub fn ping(&mut self, shard: usize) -> NetResult<()> {
        let (response, _, _) = self.exchange(shard, &Message::Ping)?;
        match response {
            Message::Pong => Ok(()),
            other => Err(NetError::UnexpectedMessage { got: other.tag() }),
        }
    }

    /// One verified scatter-gather range query. Every shard overlapping `q`
    /// under the published layout **must** produce a verifying slice for the
    /// verdict to be `Ok` — an endpoint that is down, times out, answers
    /// with an error, or doctors its slice shows up in the verdict, never as
    /// silently-accepted partial results.
    pub fn query(&mut self, q: &RangeQuery) -> NetQueryOutcome {
        let started = Instant::now();
        let mut slices = Vec::new();
        let mut endpoint_errors = Vec::new();
        let mut bytes_sent = 0u64;
        let mut bytes_received = 0u64;
        for (shard, sub) in self.layout.overlapping_clamped(q) {
            let request = Message::Query {
                shard: shard as u32,
                range: sub,
            };
            match self.exchange(shard, &request) {
                Ok((
                    Message::Slice {
                        shard: claimed,
                        records,
                        vt,
                        ..
                    },
                    sent,
                    received,
                )) => {
                    bytes_sent += sent;
                    bytes_received += received;
                    // Keep the *claimed* shard id: misattribution is for
                    // verification to catch, not for the client to repair.
                    slices.push(ShardSlice {
                        shard: claimed as usize,
                        records,
                        vt,
                    });
                }
                Ok((
                    Message::Error {
                        code,
                        version,
                        detail,
                    },
                    sent,
                    received,
                )) => {
                    bytes_sent += sent;
                    bytes_received += received;
                    endpoint_errors.push((
                        shard,
                        NetError::Remote {
                            code,
                            version,
                            detail,
                        },
                    ));
                }
                Ok((other, sent, received)) => {
                    bytes_sent += sent;
                    bytes_received += received;
                    endpoint_errors.push((shard, NetError::UnexpectedMessage { got: other.tag() }));
                }
                Err(e) => endpoint_errors.push((shard, e)),
            }
        }
        let verdict = verify_slices(&self.layout, &self.client, q, &slices);
        NetQueryOutcome {
            slices,
            verdict,
            endpoint_errors,
            bytes_sent,
            bytes_received,
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Sends `request` to `shard`'s endpoint and reads one response frame,
    /// returning `(response, bytes_sent, bytes_received)`. A failure on a
    /// pooled connection discards it and re-dials once — a server restart
    /// must not masquerade as a missing shard.
    fn exchange(&mut self, shard: usize, request: &Message) -> NetResult<(Message, u64, u64)> {
        let pooled = self
            .sockets
            .get(shard)
            .is_some_and(std::option::Option::is_some);
        match self.exchange_once(shard, request) {
            Ok(ok) => Ok(ok),
            Err(e) if pooled && matches!(e, NetError::Io(_) | NetError::Disconnected) => {
                self.sockets[shard] = None;
                self.exchange_once(shard, request)
            }
            Err(e) => Err(e),
        }
    }

    fn exchange_once(&mut self, shard: usize, request: &Message) -> NetResult<(Message, u64, u64)> {
        self.ensure_connected(shard)?;
        let Some(Some(stream)) = self.sockets.get_mut(shard) else {
            return Err(NetError::Malformed("shard id outside the endpoint list"));
        };
        let result = write_frame(stream, request).and_then(|sent| {
            read_frame(stream).map(|(msg, received)| (msg, sent as u64, received as u64))
        });
        if result.is_err() {
            // Poison the pooled connection: request/response pairing on it
            // can no longer be trusted.
            self.sockets[shard] = None;
        }
        result
    }

    fn ensure_connected(&mut self, shard: usize) -> NetResult<()> {
        let Some(slot) = self.sockets.get_mut(shard) else {
            return Err(NetError::Malformed("shard id outside the endpoint list"));
        };
        if slot.is_some() {
            return Ok(());
        }
        let Some(endpoint) = self.endpoints.get(shard) else {
            return Err(NetError::Malformed("shard id outside the endpoint list"));
        };
        let addr = endpoint
            .to_socket_addrs()?
            .next()
            .ok_or(NetError::Malformed("endpoint resolved to no address"))?;
        let stream = TcpStream::connect_timeout(&addr, self.cfg.connect_timeout)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        stream.set_write_timeout(Some(self.cfg.write_timeout))?;
        *slot = Some(stream);
        Ok(())
    }
}
