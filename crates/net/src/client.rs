//! The verifying scatter-gather client with replica failover.
//!
//! [`NetClient`] is the networked twin of the in-process
//! [`sae_core::ShardedSaeEngine::query`] path. Given a published
//! [`ShardLayout`] and a [`Topology`] naming every replica endpoint per
//! shard, it derives the responder set *from the layout* (never from who
//! happened to answer), fetches one slice per overlapping shard over the
//! wire, and hands the gathered slices to [`sae_core::verify_slices`] — the
//! *same* function the in-process engine runs. There is no separate, weaker
//! "network verification".
//!
//! Replicas change *availability*, never *trust*: every endpoint is equally
//! untrusted, so failover needs no handshake — a replica that is down,
//! slow (hedged reads), returns an error, advertises an epoch below the
//! client's verified high-water mark, or doctors its slice is **demoted**
//! and the sub-query re-issued to a sibling, whose slice faces the exact
//! same token verification. Demoted endpoints are retried by
//! [`NetClient::probe_health`] (optionally auto-run every
//! [`NetClientConfig::probe_every`] queries) so a restarted replica
//! re-admits itself.
//!
//! Freshness is a *heuristic*, not a proof: the advertised epoch is not
//! covered by the token (an old slice verifies against old state), so the
//! high-water check can only detect staleness relative to what this client
//! has already verified — see `docs/replication.md` for the exact
//! guarantee.

use crate::frame::{read_frame, write_frame, Message, NetError, NetResult};
use crate::topology::Topology;
use sae_core::ShardedVerifyError;
use sae_core::{verify_slices, SaeClient, ShardLayout, ShardSlice, ShardedSaeEngine};
use sae_workload::RangeQuery;
use std::collections::{HashMap, HashSet};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Timeouts and failover knobs for every connection a [`NetClient`] opens.
#[derive(Clone, Copy, Debug)]
pub struct NetClientConfig {
    /// Bound on establishing a TCP connection to an endpoint.
    pub connect_timeout: Duration,
    /// Bound on waiting for a response frame.
    pub read_timeout: Duration,
    /// Bound on writing a request frame.
    pub write_timeout: Duration,
    /// Hedged reads: when a shard has sibling replicas, its *first* fetch
    /// attempt waits only this long before the slow replica is demoted and
    /// the sub-query re-issued to a sibling. `None` (default) disables
    /// hedging; retry attempts always get the full [`read_timeout`].
    ///
    /// [`read_timeout`]: NetClientConfig::read_timeout
    pub hedge_timeout: Option<Duration>,
    /// Run [`NetClient::probe_health`] automatically every this many
    /// queries, re-admitting demoted replicas that answer a `Ping` again.
    /// 0 (the default) disables auto-probing.
    pub probe_every: usize,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            hedge_timeout: None,
            probe_every: 0,
        }
    }
}

/// The networked, verifying range-query client: scatter over per-shard
/// replica groups, gather one slice per overlapping shard, verify exactly
/// as in-process, failing over between siblings as needed.
///
/// The client owns one lazily-opened, persistent connection per endpoint
/// (`&mut self` methods — use one `NetClient` per driver thread). A
/// connection that errors is discarded; for transport errors on a pooled
/// connection the same endpoint is re-dialled once before its replica is
/// demoted and a sibling tried.
pub struct NetClient {
    layout: ShardLayout,
    client: SaeClient,
    topology: Topology,
    pool: HashMap<String, TcpStream>,
    demoted: HashSet<String>,
    /// Per-shard round-robin cursor into the replica group.
    cursor: Vec<usize>,
    /// Per-shard verified-epoch high-water mark: the freshness floor below
    /// which an advertised epoch demotes its replica. Raised only by
    /// slices that passed verification.
    hwm: Vec<u64>,
    cfg: NetClientConfig,
    since_probe: usize,
}

/// What one [`NetClient::probe_health`] sweep found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeReport {
    /// Pooled connections that answered the probe.
    pub pooled_alive: u64,
    /// Pooled connections that failed and were discarded.
    pub pooled_dropped: u64,
    /// Demoted endpoints that answered a fresh-dial probe and were
    /// re-admitted.
    pub revived: u64,
    /// Demoted endpoints still not answering.
    pub still_down: u64,
}

/// Everything one networked range query produced. The query itself is
/// infallible at the transport level by design: endpoint failures are not
/// "errors", they are *evidence*, folded into the [`verdict`] exactly like
/// a shard that refused to answer in-process.
///
/// [`verdict`]: NetQueryOutcome::verdict
#[derive(Debug)]
pub struct NetQueryOutcome {
    /// The slices that were actually received and kept, ascending by shard.
    pub slices: Vec<ShardSlice>,
    /// The client-side verification verdict over the published layout —
    /// produced by [`sae_core::verify_slices`], the same function the
    /// in-process engine uses.
    pub verdict: Result<(), ShardedVerifyError>,
    /// Transport- or protocol-level failures, one per affected attempt.
    /// A shard with no surviving slice also surfaces in [`verdict`] as a
    /// missing slice.
    ///
    /// [`verdict`]: NetQueryOutcome::verdict
    pub endpoint_errors: Vec<(usize, NetError)>,
    /// Failover legs: demote-and-retry hops to a sibling replica (slow,
    /// dead, erroring, stale or byzantine sources all count).
    pub failovers: u64,
    /// Slices refused by the freshness check (advertised epoch below the
    /// verified high-water mark) before any sibling was consulted.
    pub stale_refused: u64,
    /// Request bytes written across all endpoints.
    pub bytes_sent: u64,
    /// Response bytes read across all endpoints.
    pub bytes_received: u64,
    /// Wall-clock time for the whole scatter-gather-verify round.
    pub elapsed_ms: f64,
}

impl NetQueryOutcome {
    /// Total records across all gathered slices.
    pub fn record_count(&self) -> usize {
        self.slices.iter().map(|s| s.records.len()).sum()
    }
}

/// One shard's fetch state across the gather, freshness and verify passes.
struct ShardFetch {
    shard: usize,
    sub: RangeQuery,
    /// Endpoints already consulted for this shard in this query — bounds
    /// every refetch loop by the replica group size.
    tried: HashSet<String>,
    /// The endpoint whose slice is currently held for this shard.
    source: Option<String>,
    epoch: u64,
}

/// Mutable counters threaded through the passes.
#[derive(Default)]
struct QueryCounters {
    bytes_sent: u64,
    bytes_received: u64,
    failovers: u64,
    stale_refused: u64,
    errors: Vec<(usize, NetError)>,
}

impl NetClient {
    /// A client for a published `layout`, verifying with `client`, scattering
    /// over `topology`. Fails if the topology does not cover the layout
    /// one group per shard.
    pub fn new(
        layout: ShardLayout,
        client: SaeClient,
        topology: Topology,
        cfg: NetClientConfig,
    ) -> NetResult<NetClient> {
        if topology.shard_count() != layout.shard_count() {
            return Err(NetError::Malformed(
                "topology must name exactly one replica group per layout shard",
            ));
        }
        let shards = layout.shard_count();
        Ok(NetClient {
            layout,
            client,
            topology,
            pool: HashMap::new(),
            demoted: HashSet::new(),
            cursor: vec![0; shards],
            hwm: vec![0; shards],
            cfg,
            since_probe: 0,
        })
    }

    /// Convenience constructor taking the layout and verification
    /// parameters from an engine, with one endpoint per shard — the PR 8
    /// shape, still the common one in tests.
    pub fn for_engine(engine: &ShardedSaeEngine, endpoints: Vec<String>) -> NetResult<NetClient> {
        Self::for_engine_topology(
            engine,
            Topology::single(endpoints),
            NetClientConfig::default(),
        )
    }

    /// Convenience constructor for a replicated deployment: layout and
    /// verification parameters from the engine, endpoints from `topology`.
    pub fn for_engine_topology(
        engine: &ShardedSaeEngine,
        topology: Topology,
        cfg: NetClientConfig,
    ) -> NetResult<NetClient> {
        let template = engine.client();
        let client = match template.record_len() {
            Some(len) => SaeClient::with_record_len(template.algorithm(), len),
            None => SaeClient::new(template.algorithm()),
        };
        NetClient::new(engine.layout().clone(), client, topology, cfg)
    }

    /// The published layout this client scatters over.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// The topology this client fails over across.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Endpoints currently demoted (answered badly and not yet re-admitted).
    pub fn demoted(&self) -> Vec<String> {
        let mut list: Vec<String> = self.demoted.iter().cloned().collect();
        list.sort();
        list
    }

    /// The verified-epoch high-water mark for `shard` (0 until a slice at a
    /// positive epoch verifies).
    pub fn high_water_mark(&self, shard: usize) -> u64 {
        self.hwm.get(shard).copied().unwrap_or(0)
    }

    /// Health-checks shard `shard`'s preferred replica with a `Ping`/`Pong`
    /// round trip.
    pub fn ping(&mut self, shard: usize) -> NetResult<()> {
        let candidates = self.candidates(shard);
        let Some(endpoint) = candidates.first() else {
            return Err(NetError::Malformed("shard id outside the topology"));
        };
        self.ping_endpoint(&endpoint.clone())
    }

    /// `Ping`s one endpoint by name, pooling the connection on success.
    fn ping_endpoint(&mut self, endpoint: &str) -> NetResult<()> {
        let (response, _, _) = self.exchange(endpoint, &Message::Ping, self.cfg.read_timeout)?;
        match response {
            Message::Pong => Ok(()),
            other => Err(NetError::UnexpectedMessage { got: other.tag() }),
        }
    }

    /// One health sweep (the S1 probe): `Ping` every pooled connection
    /// (discarding dead ones) and fresh-dial every demoted endpoint,
    /// re-admitting those that answer `Pong` again. Run it manually after a
    /// deployment change, or let [`NetClientConfig::probe_every`] schedule
    /// it.
    pub fn probe_health(&mut self) -> ProbeReport {
        let mut report = ProbeReport::default();
        let pooled: Vec<String> = self
            .pool
            .keys()
            .filter(|e| !self.demoted.contains(*e))
            .cloned()
            .collect();
        for endpoint in pooled {
            if self.ping_endpoint(&endpoint).is_ok() {
                report.pooled_alive += 1;
            } else {
                // The failed exchange already evicted the socket.
                report.pooled_dropped += 1;
            }
        }
        let down: Vec<String> = self.demoted.iter().cloned().collect();
        for endpoint in down {
            // A demoted endpoint's pooled socket (if any) is untrustworthy;
            // probe over a fresh dial.
            self.pool.remove(&endpoint);
            if self.ping_endpoint(&endpoint).is_ok() {
                self.demoted.remove(&endpoint);
                report.revived += 1;
            } else {
                report.still_down += 1;
            }
        }
        report
    }

    /// One verified scatter-gather range query. Every shard overlapping `q`
    /// under the published layout **must** produce a verifying slice for the
    /// verdict to be `Ok` — a replica that is down, times out, answers with
    /// an error, advertises a stale epoch, or doctors its slice is demoted
    /// and its siblings tried; only when a whole replica group fails does
    /// the shard surface in the verdict as missing.
    pub fn query(&mut self, q: &RangeQuery) -> NetQueryOutcome {
        let started = Instant::now();
        if self.cfg.probe_every > 0 {
            self.since_probe += 1;
            if self.since_probe >= self.cfg.probe_every {
                self.since_probe = 0;
                self.probe_health();
            }
        }
        let mut counters = QueryCounters::default();
        let mut fetches: Vec<ShardFetch> = Vec::new();
        let mut gathered: Vec<ShardSlice> = Vec::new();
        // `origin[i]` is the index in `fetches` that produced `gathered[i]`.
        let mut origin: Vec<usize> = Vec::new();
        for (shard, sub) in self.layout.overlapping_clamped(q) {
            let mut fetch = ShardFetch {
                shard,
                sub,
                tried: HashSet::new(),
                source: None,
                epoch: 0,
            };
            if let Some(slice) = self.fetch_fresh(&mut fetch, &mut counters, 2) {
                gathered.push(slice);
                origin.push(fetches.len());
            }
            fetches.push(fetch);
        }
        // Verify; on a per-slice failure demote the source, refetch from an
        // untried sibling and re-verify. Each leg consumes an endpoint from
        // the shard's `tried` set, so the loop is bounded by group size.
        let verdict = loop {
            let verdict = verify_slices(&self.layout, &self.client, q, &gathered);
            let Err(ShardedVerifyError::Slice { shard, .. }) = &verdict else {
                break verdict;
            };
            let Some(at) = origin
                .iter()
                .position(|&fi| fetches.get(fi).is_some_and(|f| f.shard == *shard))
            else {
                break verdict;
            };
            let fi = origin[at];
            if let Some(source) = fetches[fi].source.take() {
                self.demoted.insert(source);
            }
            counters.failovers += 1;
            match self.fetch_fresh(&mut fetches[fi], &mut counters, 1) {
                Some(slice) => gathered[at] = slice,
                // No sibling left: keep the doctored slice and report its
                // verification failure honestly.
                None => break verdict,
            }
        };
        // Only *verified* slices raise the freshness floor.
        if verdict.is_ok() {
            for &fi in &origin {
                if let Some(fetch) = fetches.get(fi) {
                    if let Some(hwm) = self.hwm.get_mut(fetch.shard) {
                        *hwm = (*hwm).max(fetch.epoch);
                    }
                }
            }
        }
        NetQueryOutcome {
            slices: gathered,
            verdict,
            endpoint_errors: counters.errors,
            failovers: counters.failovers,
            stale_refused: counters.stale_refused,
            bytes_sent: counters.bytes_sent,
            bytes_received: counters.bytes_received,
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Fetches a slice for one shard and applies the freshness check:
    /// a slice advertising an epoch below the shard's verified high-water
    /// mark demotes its replica and a sibling is consulted, until a fresh
    /// slice arrives or the group is exhausted (then a typed
    /// [`NetError::StaleSlice`] is recorded and the shard left unanswered).
    fn fetch_fresh(
        &mut self,
        fetch: &mut ShardFetch,
        counters: &mut QueryCounters,
        attempts: usize,
    ) -> Option<ShardSlice> {
        let floor = self.hwm.get(fetch.shard).copied().unwrap_or(0);
        let mut freshest = 0u64;
        let mut budget = attempts;
        loop {
            let slice = self.fetch_once(fetch, counters, budget)?;
            if fetch.epoch >= floor {
                return Some(slice);
            }
            freshest = freshest.max(fetch.epoch);
            counters.stale_refused += 1;
            counters.failovers += 1;
            if let Some(source) = fetch.source.take() {
                self.demoted.insert(source);
            }
            budget = 1;
            // Group exhausted? Record the staleness and give up the shard.
            if self
                .candidates(fetch.shard)
                .iter()
                .all(|e| fetch.tried.contains(e))
            {
                counters.errors.push((
                    fetch.shard,
                    NetError::StaleSlice {
                        shard: fetch.shard as u32,
                        epoch: freshest,
                        high_water: floor,
                    },
                ));
                return None;
            }
        }
    }

    /// One failover pass for a shard: try up to `attempts` untried replicas
    /// (preferring non-demoted ones, round-robin within the group) until
    /// one returns a slice. Erroring endpoints are demoted and recorded.
    fn fetch_once(
        &mut self,
        fetch: &mut ShardFetch,
        counters: &mut QueryCounters,
        attempts: usize,
    ) -> Option<ShardSlice> {
        let candidates: Vec<String> = self
            .candidates(fetch.shard)
            .into_iter()
            .filter(|e| !fetch.tried.contains(e))
            .collect();
        let group = self.topology.replicas(fetch.shard).len();
        if let Some(cursor) = self.cursor.get_mut(fetch.shard) {
            *cursor = cursor.wrapping_add(1) % group.max(1);
        }
        let request = Message::Query {
            shard: fetch.shard as u32,
            range: fetch.sub,
        };
        for (attempt, endpoint) in candidates.into_iter().take(attempts.max(1)).enumerate() {
            fetch.tried.insert(endpoint.clone());
            // Hedge only the first attempt, and only when a sibling exists
            // to hedge *to*.
            let read_timeout = match self.cfg.hedge_timeout {
                Some(hedge) if attempt == 0 && group > 1 => hedge,
                _ => self.cfg.read_timeout,
            };
            match self.exchange(&endpoint, &request, read_timeout) {
                Ok((
                    Message::Slice {
                        shard: claimed,
                        epoch,
                        records,
                        vt,
                        ..
                    },
                    sent,
                    received,
                )) => {
                    counters.bytes_sent += sent;
                    counters.bytes_received += received;
                    fetch.source = Some(endpoint);
                    fetch.epoch = epoch;
                    // Keep the *claimed* shard id: misattribution is for
                    // verification to catch, not for the client to repair.
                    return Some(ShardSlice {
                        shard: claimed as usize,
                        records,
                        vt,
                    });
                }
                Ok((
                    Message::Error {
                        code,
                        version,
                        detail,
                    },
                    sent,
                    received,
                )) => {
                    counters.bytes_sent += sent;
                    counters.bytes_received += received;
                    counters.errors.push((
                        fetch.shard,
                        NetError::Remote {
                            code,
                            version,
                            detail,
                        },
                    ));
                }
                Ok((other, sent, received)) => {
                    counters.bytes_sent += sent;
                    counters.bytes_received += received;
                    counters.errors.push((
                        fetch.shard,
                        NetError::UnexpectedMessage { got: other.tag() },
                    ));
                }
                Err(e) => counters.errors.push((fetch.shard, e)),
            }
            // This endpoint answered badly: demote it and count the leg to
            // the next sibling (if any remains in the attempt budget).
            self.demoted.insert(endpoint);
            counters.failovers += 1;
        }
        None
    }

    /// The replica group for `shard`, round-robin rotated, non-demoted
    /// endpoints first.
    fn candidates(&self, shard: usize) -> Vec<String> {
        let group = self.topology.replicas(shard);
        if group.is_empty() {
            return Vec::new();
        }
        let start = self.cursor.get(shard).copied().unwrap_or(0) % group.len();
        let rotated = group[start..].iter().chain(group[..start].iter());
        let (healthy, demoted): (Vec<&String>, Vec<&String>) =
            rotated.partition(|e| !self.demoted.contains(*e));
        healthy.into_iter().chain(demoted).cloned().collect()
    }

    /// Sends `request` to `endpoint` and reads one response frame, returning
    /// `(response, bytes_sent, bytes_received)`. A transport failure on a
    /// pooled connection discards it and re-dials the same endpoint once —
    /// a server restart must not masquerade as a dead replica. *Any* error
    /// evicts the socket from the pool: after a framing error the stream
    /// can no longer be trusted to be at a frame boundary.
    fn exchange(
        &mut self,
        endpoint: &str,
        request: &Message,
        read_timeout: Duration,
    ) -> NetResult<(Message, u64, u64)> {
        let pooled = self.pool.contains_key(endpoint);
        match self.exchange_once(endpoint, request, read_timeout) {
            Ok(ok) => Ok(ok),
            Err(e) if pooled && matches!(e, NetError::Io(_) | NetError::Disconnected) => {
                self.exchange_once(endpoint, request, read_timeout)
            }
            Err(e) => Err(e),
        }
    }

    fn exchange_once(
        &mut self,
        endpoint: &str,
        request: &Message,
        read_timeout: Duration,
    ) -> NetResult<(Message, u64, u64)> {
        if !self.pool.contains_key(endpoint) {
            let stream = self.dial(endpoint)?;
            self.pool.insert(endpoint.to_string(), stream);
        }
        let Some(stream) = self.pool.get_mut(endpoint) else {
            return Err(NetError::Malformed("endpoint vanished from the pool"));
        };
        let result = stream
            .set_read_timeout(Some(read_timeout))
            .map_err(NetError::from)
            .and_then(|()| write_frame(stream, request))
            .and_then(|sent| {
                read_frame(stream).map(|(msg, received)| (msg, sent as u64, received as u64))
            });
        if result.is_err() {
            // Pool hygiene: request/response pairing on this socket can no
            // longer be trusted after any failure, framing-level included.
            self.pool.remove(endpoint);
        }
        result
    }

    fn dial(&self, endpoint: &str) -> NetResult<TcpStream> {
        let addr = endpoint
            .to_socket_addrs()?
            .next()
            .ok_or(NetError::Malformed("endpoint resolved to no address"))?;
        let stream = TcpStream::connect_timeout(&addr, self.cfg.connect_timeout)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        stream.set_write_timeout(Some(self.cfg.write_timeout))?;
        Ok(stream)
    }
}
