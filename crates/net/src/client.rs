//! The verifying scatter-gather client with concurrent fan-out, replica
//! failover, and true hedged reads.
//!
//! [`NetClient`] is the networked twin of the in-process
//! [`sae_core::ShardedSaeEngine::query`] path. Given a published
//! [`ShardLayout`] and a [`Topology`] naming every replica endpoint per
//! shard, it derives the responder set *from the layout* (never from who
//! happened to answer), fetches one slice per overlapping shard over the
//! wire, and hands the gathered slices to [`sae_core::verify_slices`] — the
//! *same* function the in-process engine runs. There is no separate, weaker
//! "network verification".
//!
//! The scatter phase actually scatters: `query` dispatches one fetch job
//! per overlapping shard onto a small reusable worker pool and gathers the
//! slices over a channel, so a query spanning S shards pays roughly the
//! *max* of the per-shard round trips instead of their sum. Only the stitch
//! and the `verify_slices` verdict run on the caller thread. Failover and
//! stale-refetch legs re-dispatch concurrently the same way.
//!
//! Replicas change *availability*, never *trust*: every endpoint is equally
//! untrusted, so failover needs no handshake — a replica that is down,
//! returns an error, advertises an epoch below the client's verified
//! high-water mark, or doctors its slice is **demoted** and the sub-query
//! re-issued to a sibling, whose slice faces the exact same token
//! verification. A merely *slow* replica is hedged, not demoted: with
//! [`NetClientConfig::hedge_timeout`] set, a sibling is raced after the
//! window expires and the first valid slice wins, while the loser drains in
//! the background and returns its connection to the pool. Demoted endpoints
//! are retried by [`NetClient::probe_health`] (optionally auto-run every
//! [`NetClientConfig::probe_every`] queries) so a restarted replica
//! re-admits itself.
//!
//! Freshness is a *heuristic*, not a proof: the advertised epoch is not
//! covered by the token (an old slice verifies against old state), so the
//! high-water check can only detect staleness relative to what this client
//! has already verified — see `docs/replication.md` for the exact
//! guarantee.

use crate::frame::{read_frame, write_frame, Message, NetError, NetResult};
use crate::topology::Topology;
use parking_lot::Mutex;
use sae_core::ShardedVerifyError;
use sae_core::{verify_slices, SaeClient, ShardLayout, ShardSlice, ShardedSaeEngine};
use sae_workload::RangeQuery;
use std::collections::{HashMap, HashSet};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Timeouts and failover knobs for every connection a [`NetClient`] opens.
#[derive(Clone, Copy, Debug)]
pub struct NetClientConfig {
    /// Bound on establishing a TCP connection to an endpoint.
    pub connect_timeout: Duration,
    /// Bound on waiting for a response frame.
    pub read_timeout: Duration,
    /// Bound on writing a request frame.
    pub write_timeout: Duration,
    /// True hedged reads: when a shard has sibling replicas and its first
    /// leg has produced no response after this window, a second leg races
    /// the next untried sibling and the **first valid slice wins**. The
    /// loser is drained in the background (its pooled connection survives)
    /// and is *not* demoted for being slow — only for answering badly.
    /// `None` (the default) disables hedging.
    pub hedge_timeout: Option<Duration>,
    /// Run [`NetClient::probe_health`] automatically every this many
    /// queries, re-admitting demoted replicas that answer a `Ping` again.
    /// 0 (the default) disables auto-probing.
    pub probe_every: usize,
    /// Dispatch per-shard fetch jobs one at a time on the caller thread
    /// instead of concurrently on the worker pool. Off by default; exists
    /// as the measured baseline for the E16 fan-out experiment and for
    /// debugging.
    pub sequential_fanout: bool,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            hedge_timeout: None,
            probe_every: 0,
            sequential_fanout: false,
        }
    }
}

/// The networked, verifying range-query client: scatter over per-shard
/// replica groups concurrently, gather one slice per overlapping shard,
/// verify exactly as in-process, failing over between siblings as needed.
///
/// Connections are owned handles in a shared pool: a fetch leg *checks out*
/// the endpoint's pooled connection (or dials its own), uses it exclusively,
/// and returns it on success — so concurrent legs never interleave frames
/// on one socket. A connection that errors is discarded; for transport
/// errors on a pooled connection the same endpoint is re-dialled once
/// before its replica is demoted and a sibling tried.
///
/// The public API stays `&mut self`: one `NetClient` per driver thread,
/// with the concurrency internal to each call.
pub struct NetClient {
    layout: ShardLayout,
    client: SaeClient,
    shared: Arc<ClientShared>,
    workers: WorkerPool,
    /// Per-shard verified-epoch high-water mark: the freshness floor below
    /// which an advertised epoch demotes its replica. Raised only by
    /// slices that passed verification, only on the caller thread — fetch
    /// jobs receive the floor by value and never write it back.
    hwm: Vec<u64>,
    since_probe: usize,
}

/// State shared between the caller thread, pool workers, and detached hedge
/// legs. Each field has its own mutex and none is ever held while another
/// is acquired (enforced by the `jobs`/`pool`/`demoted`/`cursor` lock ranks
/// in `analyzer.toml`): every access copies data out or mutates in place
/// within a single statement.
struct ClientShared {
    topology: Topology,
    cfg: NetClientConfig,
    /// Idle pooled connections by endpoint, checked out exclusively.
    pool: Mutex<HashMap<String, TcpStream>>,
    /// Endpoints that answered badly and were not yet re-admitted.
    demoted: Mutex<HashSet<String>>,
    /// Per-shard round-robin cursor into the replica group.
    cursor: Mutex<Vec<usize>>,
}

/// A boxed fetch job for the worker pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A small reusable worker pool over `std::sync::mpsc`: per-query fetch
/// jobs and probe pings run here. Hedge legs do NOT — a leg abandoned to
/// drain in the background must never occupy a pool slot, so legs are
/// detached threads (see `spawn_leg`).
struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(size: usize) -> NetResult<WorkerPool> {
        let (tx, rx) = mpsc::channel::<Job>();
        let jobs = Arc::new(Mutex::new(rx));
        let mut threads = Vec::with_capacity(size);
        for i in 0..size {
            let jobs = Arc::clone(&jobs);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sae-net-io-{i}"))
                    .spawn(move || loop {
                        // The receiver lock is held only to dequeue, never
                        // while the job runs.
                        let job = match jobs.lock().recv() {
                            Ok(job) => job,
                            Err(_) => return,
                        };
                        job();
                    })
                    .map_err(NetError::from)?,
            );
        }
        Ok(WorkerPool {
            tx: Some(tx),
            threads,
        })
    }

    /// Runs `job` on a worker thread; if the pool is unavailable the job
    /// runs inline so callers never lose a result.
    fn submit(&self, job: Job) {
        match &self.tx {
            Some(tx) => {
                if let Err(mpsc::SendError(job)) = tx.send(job) {
                    job();
                }
            }
            None => job(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for handle in self.threads.drain(..) {
            drop(handle.join());
        }
    }
}

/// What one [`NetClient::probe_health`] sweep found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeReport {
    /// Pooled connections that answered the probe.
    pub pooled_alive: u64,
    /// Pooled connections that failed and were discarded.
    pub pooled_dropped: u64,
    /// Demoted endpoints that answered a fresh-dial probe and were
    /// re-admitted.
    pub revived: u64,
    /// Demoted endpoints still not answering.
    pub still_down: u64,
}

/// Everything one networked range query produced. The query itself is
/// infallible at the transport level by design: endpoint failures are not
/// "errors", they are *evidence*, folded into the [`verdict`] exactly like
/// a shard that refused to answer in-process.
///
/// [`verdict`]: NetQueryOutcome::verdict
#[derive(Debug)]
pub struct NetQueryOutcome {
    /// The slices that were actually received and kept, ascending by shard.
    pub slices: Vec<ShardSlice>,
    /// The client-side verification verdict over the published layout —
    /// produced by [`sae_core::verify_slices`], the same function the
    /// in-process engine uses.
    pub verdict: Result<(), ShardedVerifyError>,
    /// Transport- or protocol-level failures, one per affected attempt.
    /// A shard with no surviving slice also surfaces in [`verdict`] as a
    /// missing slice.
    ///
    /// [`verdict`]: NetQueryOutcome::verdict
    pub endpoint_errors: Vec<(usize, NetError)>,
    /// Failover legs: demote-and-retry hops to a sibling replica (dead,
    /// erroring, stale or byzantine sources all count).
    pub failovers: u64,
    /// Slices refused by the freshness check (advertised epoch below the
    /// verified high-water mark) before any sibling was consulted.
    pub stale_refused: u64,
    /// Hedge legs raced: a sibling was dispatched because the first leg
    /// produced no response within [`NetClientConfig::hedge_timeout`].
    /// Unlike [`failovers`], a hedge demotes nobody.
    ///
    /// [`failovers`]: NetQueryOutcome::failovers
    pub hedges: u64,
    /// Request bytes written across all endpoints.
    pub bytes_sent: u64,
    /// Response bytes read across all endpoints.
    pub bytes_received: u64,
    /// Wall-clock time for the scatter-gather-verify round. Housekeeping
    /// (the periodic [`NetClient::probe_health`] sweep) runs before the
    /// clock starts, so this measures the query alone.
    pub elapsed_ms: f64,
}

impl NetQueryOutcome {
    /// Total records across all gathered slices.
    pub fn record_count(&self) -> usize {
        self.slices.iter().map(|s| s.records.len()).sum()
    }
}

/// One per-shard fetch job as dispatched to the worker pool.
struct FetchJob {
    /// Index into the query's expected-shard table (slot to fill).
    at: usize,
    shard: usize,
    sub: RangeQuery,
    /// The shard's verified-epoch freshness floor at dispatch time.
    floor: u64,
    /// Endpoints already consulted for this shard in this query — bounds
    /// every refetch loop by the replica group size.
    tried: HashSet<String>,
    attempts: usize,
}

/// What one fetch job produced, sent back over the gather channel.
struct FetchDone {
    at: usize,
    shard: usize,
    sub: RangeQuery,
    slice: Option<ShardSlice>,
    /// The endpoint whose slice is currently held for this shard.
    source: Option<String>,
    epoch: u64,
    tried: HashSet<String>,
    counters: QueryCounters,
}

/// Mutable counters threaded through the passes. Each fetch job accumulates
/// its own copy; the caller thread merges them — no shared counter locks.
#[derive(Default)]
struct QueryCounters {
    bytes_sent: u64,
    bytes_received: u64,
    failovers: u64,
    stale_refused: u64,
    hedges: u64,
    errors: Vec<(usize, NetError)>,
}

impl QueryCounters {
    fn merge(&mut self, other: QueryCounters) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.failovers += other.failovers;
        self.stale_refused += other.stale_refused;
        self.hedges += other.hedges;
        self.errors.extend(other.errors);
    }
}

/// One request/response exchange against one endpoint, as seen from a leg.
struct Leg {
    endpoint: String,
    outcome: Result<(ShardSlice, u64), NetError>,
    bytes_sent: u64,
    bytes_received: u64,
}

impl NetClient {
    /// A client for a published `layout`, verifying with `client`, scattering
    /// over `topology`. Fails if the topology does not cover the layout
    /// one group per shard, or if the worker pool cannot start.
    pub fn new(
        layout: ShardLayout,
        client: SaeClient,
        topology: Topology,
        cfg: NetClientConfig,
    ) -> NetResult<NetClient> {
        if topology.shard_count() != layout.shard_count() {
            return Err(NetError::Malformed(
                "topology must name exactly one replica group per layout shard",
            ));
        }
        let shards = layout.shard_count();
        // One worker per shard saturates the widest possible fan-out; the
        // floor keeps probe sweeps parallel on small layouts and the cap
        // keeps thread counts sane on very wide ones.
        let workers = WorkerPool::spawn(shards.clamp(4, 16))?;
        Ok(NetClient {
            layout,
            client,
            shared: Arc::new(ClientShared {
                topology,
                cfg,
                pool: Mutex::new(HashMap::new()),
                demoted: Mutex::new(HashSet::new()),
                cursor: Mutex::new(vec![0; shards]),
            }),
            workers,
            hwm: vec![0; shards],
            since_probe: 0,
        })
    }

    /// Convenience constructor taking the layout and verification
    /// parameters from an engine, with one endpoint per shard — the PR 8
    /// shape, still the common one in tests.
    pub fn for_engine(engine: &ShardedSaeEngine, endpoints: Vec<String>) -> NetResult<NetClient> {
        Self::for_engine_topology(
            engine,
            Topology::single(endpoints),
            NetClientConfig::default(),
        )
    }

    /// Convenience constructor for a replicated deployment: layout and
    /// verification parameters from the engine, endpoints from `topology`.
    pub fn for_engine_topology(
        engine: &ShardedSaeEngine,
        topology: Topology,
        cfg: NetClientConfig,
    ) -> NetResult<NetClient> {
        let template = engine.client();
        let client = match template.record_len() {
            Some(len) => SaeClient::with_record_len(template.algorithm(), len),
            None => SaeClient::new(template.algorithm()),
        };
        NetClient::new(engine.layout().clone(), client, topology, cfg)
    }

    /// The published layout this client scatters over.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// The topology this client fails over across.
    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    /// Endpoints currently demoted (answered badly and not yet re-admitted).
    pub fn demoted(&self) -> Vec<String> {
        let mut list: Vec<String> = self.shared.demoted.lock().iter().cloned().collect();
        list.sort();
        list
    }

    /// The verified-epoch high-water mark for `shard` (0 until a slice at a
    /// positive epoch verifies).
    pub fn high_water_mark(&self, shard: usize) -> u64 {
        self.hwm.get(shard).copied().unwrap_or(0)
    }

    /// Health-checks shard `shard`'s preferred replica with a `Ping`/`Pong`
    /// round trip.
    pub fn ping(&mut self, shard: usize) -> NetResult<()> {
        let list = candidates(&self.shared, shard);
        let Some(endpoint) = list.first() else {
            return Err(NetError::Malformed("shard id outside the topology"));
        };
        ping_endpoint(&self.shared, endpoint)
    }

    /// One health sweep (the S1 probe): `Ping` every pooled connection
    /// (discarding dead ones) and fresh-dial every demoted endpoint,
    /// re-admitting those that answer `Pong` again. All pings run
    /// concurrently on the worker pool. Run it manually after a deployment
    /// change, or let [`NetClientConfig::probe_every`] schedule it.
    pub fn probe_health(&mut self) -> ProbeReport {
        let demoted_now: Vec<String> = self.demoted();
        let mut pooled: Vec<String> = self.shared.pool.lock().keys().cloned().collect();
        pooled.retain(|e| !demoted_now.contains(e));
        for endpoint in &demoted_now {
            // A demoted endpoint's pooled socket (if any) is untrustworthy;
            // probe over a fresh dial.
            self.shared.pool.lock().remove(endpoint);
        }
        let (tx, rx) = mpsc::channel();
        let mut outstanding = 0usize;
        let probes = pooled
            .into_iter()
            .map(|e| (e, false))
            .chain(demoted_now.into_iter().map(|e| (e, true)));
        for (endpoint, was_demoted) in probes {
            let shared = Arc::clone(&self.shared);
            let tx = tx.clone();
            outstanding += 1;
            self.workers.submit(Box::new(move || {
                let alive = ping_endpoint(&shared, &endpoint).is_ok();
                drop(tx.send((was_demoted, alive, endpoint)));
            }));
        }
        drop(tx);
        let mut report = ProbeReport::default();
        for _ in 0..outstanding {
            let Ok((was_demoted, alive, endpoint)) = rx.recv() else {
                break;
            };
            match (was_demoted, alive) {
                (false, true) => report.pooled_alive += 1,
                // The failed exchange already evicted the socket.
                (false, false) => report.pooled_dropped += 1,
                (true, true) => {
                    self.shared.demoted.lock().remove(&endpoint);
                    report.revived += 1;
                }
                (true, false) => report.still_down += 1,
            }
        }
        report
    }

    /// One verified scatter-gather range query. Every shard overlapping `q`
    /// under the published layout **must** produce a verifying slice for the
    /// verdict to be `Ok` — a replica that is down, times out, answers with
    /// an error, advertises a stale epoch, or doctors its slice is demoted
    /// and its siblings tried; only when a whole replica group fails does
    /// the shard surface in the verdict as missing.
    ///
    /// The per-shard fetch jobs run concurrently on the worker pool (see
    /// the module docs); the stitch and the [`sae_core::verify_slices`]
    /// verdict run here on the caller thread.
    pub fn query(&mut self, q: &RangeQuery) -> NetQueryOutcome {
        // Housekeeping runs before the clock starts: latency stats measure
        // the query, not the periodic probe sweep.
        if self.shared.cfg.probe_every > 0 {
            self.since_probe += 1;
            if self.since_probe >= self.shared.cfg.probe_every {
                self.since_probe = 0;
                self.probe_health();
            }
        }
        let started = Instant::now();
        let mut counters = QueryCounters::default();
        let jobs: Vec<FetchJob> = self
            .layout
            .overlapping_clamped(q)
            .into_iter()
            .enumerate()
            .map(|(at, (shard, sub))| FetchJob {
                at,
                shard,
                sub,
                floor: self.hwm.get(shard).copied().unwrap_or(0),
                tried: HashSet::new(),
                attempts: 2,
            })
            .collect();
        let mut done = self.run_jobs(jobs, &mut counters);
        // Stitch: slices land in expected-shard order (done is sorted by
        // `at`), so the ascending-by-shard invariant holds by construction.
        let mut gathered: Vec<ShardSlice> = Vec::new();
        // `origin[i]` is the index in `done` that produced `gathered[i]`.
        let mut origin: Vec<usize> = Vec::new();
        for (fi, d) in done.iter_mut().enumerate() {
            if let Some(slice) = d.slice.take() {
                gathered.push(slice);
                origin.push(fi);
            }
        }
        // Verify; on per-slice failures demote every failing source and
        // refetch all of them from untried siblings concurrently, then
        // re-verify. Each leg consumes an endpoint from the shard's `tried`
        // set, so the loop is bounded by group size.
        let verdict = loop {
            let verdict = verify_slices(&self.layout, &self.client, q, &gathered);
            if !matches!(&verdict, Err(ShardedVerifyError::Slice { .. })) {
                break verdict;
            }
            // Identify *every* failing slice with the same per-slice check
            // `verify_slices` applies, so all bad shards refetch in one
            // concurrent wave instead of one verify round each.
            let bad: Vec<usize> = gathered
                .iter()
                .enumerate()
                .filter(|(at, slice)| {
                    let d = &done[origin[*at]];
                    self.client
                        .verify_detailed(&d.sub, &slice.records, &slice.vt)
                        .0
                        .is_err()
                })
                .map(|(at, _)| at)
                .collect();
            if bad.is_empty() {
                break verdict;
            }
            let mut refetches: Vec<FetchJob> = Vec::with_capacity(bad.len());
            for &at in &bad {
                let d = &mut done[origin[at]];
                if let Some(source) = d.source.take() {
                    self.shared.demoted.lock().insert(source);
                }
                counters.failovers += 1;
                refetches.push(FetchJob {
                    at,
                    shard: d.shard,
                    sub: d.sub,
                    floor: self.hwm.get(d.shard).copied().unwrap_or(0),
                    tried: std::mem::take(&mut d.tried),
                    attempts: 1,
                });
            }
            let redone = self.run_jobs(refetches, &mut counters);
            let mut replaced = 0usize;
            for mut r in redone {
                let fi = origin[r.at];
                let at = r.at;
                done[fi].tried = std::mem::take(&mut r.tried);
                if let Some(slice) = r.slice.take() {
                    gathered[at] = slice;
                    done[fi].source = r.source.take();
                    done[fi].epoch = r.epoch;
                    replaced += 1;
                }
                // No sibling left: keep the doctored slice and report its
                // verification failure honestly.
            }
            if replaced == 0 {
                break verdict;
            }
        };
        // Only *verified* slices raise the freshness floor.
        if verdict.is_ok() {
            for &fi in &origin {
                let d = &done[fi];
                if let Some(hwm) = self.hwm.get_mut(d.shard) {
                    *hwm = (*hwm).max(d.epoch);
                }
            }
        }
        NetQueryOutcome {
            slices: gathered,
            verdict,
            endpoint_errors: counters.errors,
            failovers: counters.failovers,
            stale_refused: counters.stale_refused,
            hedges: counters.hedges,
            bytes_sent: counters.bytes_sent,
            bytes_received: counters.bytes_received,
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Runs one wave of fetch jobs — concurrently on the worker pool, or
    /// inline when [`NetClientConfig::sequential_fanout`] is set — merging
    /// every job's counters and returning the results sorted by slot.
    fn run_jobs(&self, jobs: Vec<FetchJob>, counters: &mut QueryCounters) -> Vec<FetchDone> {
        let mut out: Vec<FetchDone> = if self.shared.cfg.sequential_fanout {
            jobs.into_iter()
                .map(|job| fetch_shard(&self.shared, job))
                .collect()
        } else {
            let (tx, rx) = mpsc::channel();
            let expected = jobs.len();
            for job in jobs {
                let shared = Arc::clone(&self.shared);
                let tx = tx.clone();
                self.workers.submit(Box::new(move || {
                    drop(tx.send(fetch_shard(&shared, job)));
                }));
            }
            drop(tx);
            let mut out = Vec::with_capacity(expected);
            while let Ok(done) = rx.recv() {
                out.push(done);
            }
            out
        };
        out.sort_by_key(|d| d.at);
        for d in &mut out {
            counters.merge(std::mem::take(&mut d.counters));
        }
        out
    }
}

/// Fetches a slice for one shard and applies the freshness check: a slice
/// advertising an epoch below the shard's verified high-water mark demotes
/// its replica and a sibling is consulted, until a fresh slice arrives or
/// the group is exhausted (then a typed [`NetError::StaleSlice`] is
/// recorded and the shard left unanswered). Runs on a worker thread.
fn fetch_shard(shared: &Arc<ClientShared>, job: FetchJob) -> FetchDone {
    let FetchJob {
        at,
        shard,
        sub,
        floor,
        mut tried,
        attempts,
    } = job;
    let mut counters = QueryCounters::default();
    let mut out = FetchDone {
        at,
        shard,
        sub,
        slice: None,
        source: None,
        epoch: 0,
        tried: HashSet::new(),
        counters: QueryCounters::default(),
    };
    let mut freshest = 0u64;
    let mut budget = attempts;
    while let Some((slice, source, epoch)) =
        fetch_once(shared, shard, &sub, &mut tried, &mut counters, budget)
    {
        if epoch >= floor {
            out.slice = Some(slice);
            out.source = Some(source);
            out.epoch = epoch;
            break;
        }
        // Stale: refuse the slice, demote its source, consult a sibling.
        freshest = freshest.max(epoch);
        counters.stale_refused += 1;
        counters.failovers += 1;
        shared.demoted.lock().insert(source);
        budget = 1;
        // Group exhausted? Record the staleness and give up the shard.
        if shared
            .topology
            .replicas(shard)
            .iter()
            .all(|e| tried.contains(e))
        {
            counters.errors.push((
                shard,
                NetError::StaleSlice {
                    shard: shard as u32,
                    epoch: freshest,
                    high_water: floor,
                },
            ));
            break;
        }
    }
    out.tried = tried;
    out.counters = counters;
    out
}

/// The per-fetch-pass context shared by the plain and hedged legs: the
/// request, its shard, and the candidate ordering captured at pass entry.
struct FetchPass<'a> {
    shared: &'a Arc<ClientShared>,
    shard: usize,
    request: Message,
    /// Candidate ordering for this pass (round-robin rotation and demotion
    /// preference as of pass entry — the cursor bump applies to the *next*
    /// pass, so concurrent shards rotate independently).
    ordered: Vec<String>,
}

/// One failover pass for a shard: try up to `attempts` untried replicas
/// (preferring non-demoted ones, round-robin within the group) until one
/// returns a slice. The first attempt is hedged when configured and a
/// sibling exists to hedge *to*; erroring endpoints are demoted by the leg
/// that observed the error.
fn fetch_once(
    shared: &Arc<ClientShared>,
    shard: usize,
    sub: &RangeQuery,
    tried: &mut HashSet<String>,
    counters: &mut QueryCounters,
    attempts: usize,
) -> Option<(ShardSlice, String, u64)> {
    let pass = FetchPass {
        shared,
        shard,
        request: Message::Query {
            shard: shard as u32,
            range: *sub,
        },
        ordered: candidates(shared, shard),
    };
    advance_cursor(shared, shard);
    let group = shared.topology.replicas(shard).len();
    for attempt in 0..attempts.max(1) {
        let endpoint = pass.ordered.iter().find(|e| !tried.contains(*e)).cloned()?;
        tried.insert(endpoint.clone());
        let hedge = match shared.cfg.hedge_timeout {
            Some(window) if attempt == 0 && group > 1 => Some(window),
            _ => None,
        };
        let won = match hedge {
            Some(window) => hedged_fetch(&pass, endpoint, window, tried, counters),
            None => plain_fetch(&pass, endpoint, counters),
        };
        if won.is_some() {
            return won;
        }
        // The endpoint (and any hedge sibling) answered badly: the legs
        // already demoted them; count the hop to the next sibling.
        counters.failovers += 1;
    }
    None
}

/// One ordinary (non-hedged) leg, run inline on the calling worker.
fn plain_fetch(
    pass: &FetchPass<'_>,
    endpoint: String,
    counters: &mut QueryCounters,
) -> Option<(ShardSlice, String, u64)> {
    let leg = request_leg(
        pass.shared,
        endpoint,
        &pass.request,
        pass.shared.cfg.read_timeout,
    );
    counters.bytes_sent += leg.bytes_sent;
    counters.bytes_received += leg.bytes_received;
    match leg.outcome {
        Ok((slice, epoch)) => Some((slice, leg.endpoint, epoch)),
        Err(e) => {
            counters.errors.push((pass.shard, e));
            None
        }
    }
}

/// A true hedged fetch: the primary leg runs detached; if the hedge window
/// expires with no response, the next untried sibling is raced and the
/// **first valid slice wins**. The loser keeps draining in the background
/// and returns its connection to the pool itself — a slow-but-honest
/// replica is never demoted, only one that answers badly (the leg demotes
/// on error even after abandonment).
fn hedged_fetch(
    pass: &FetchPass<'_>,
    endpoint: String,
    window: Duration,
    tried: &mut HashSet<String>,
    counters: &mut QueryCounters,
) -> Option<(ShardSlice, String, u64)> {
    let (tx, rx) = mpsc::channel::<Leg>();
    let mut in_flight = 0usize;
    if spawn_leg(pass.shared, endpoint.clone(), &pass.request, tx.clone()) {
        in_flight += 1;
    } else {
        // Thread spawn failed (resource exhaustion): degrade to an
        // ordinary non-hedged leg rather than dropping the attempt.
        return plain_fetch(pass, endpoint, counters);
    }
    let mut hedged = false;
    let mut wait = window;
    while in_flight > 0 {
        match rx.recv_timeout(wait) {
            Ok(leg) => {
                in_flight -= 1;
                counters.bytes_sent += leg.bytes_sent;
                counters.bytes_received += leg.bytes_received;
                match leg.outcome {
                    // First valid slice wins; a still-outstanding loser
                    // drains detached and re-pools its own connection.
                    Ok((slice, epoch)) => return Some((slice, leg.endpoint, epoch)),
                    Err(e) => counters.errors.push((pass.shard, e)),
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) if !hedged => {
                // The window expired with no answer: race the next untried
                // sibling. The slow leg is NOT cancelled or demoted — slow
                // is not byzantine — it keeps running and may still win.
                hedged = true;
                wait = pass.shared.cfg.read_timeout;
                if let Some(sibling) = pass.ordered.iter().find(|e| !tried.contains(*e)).cloned() {
                    tried.insert(sibling.clone());
                    if spawn_leg(pass.shared, sibling, &pass.request, tx.clone()) {
                        in_flight += 1;
                        counters.hedges += 1;
                    }
                }
            }
            // The full read timeout elapsed after hedging: abandon the
            // attempt. The legs' own socket timeouts will expire and each
            // leg demotes its endpoint itself.
            Err(_) => break,
        }
    }
    None
}

/// Spawns one detached request leg. Detached (not a pool job) on purpose:
/// an abandoned hedge loser must never occupy a worker-pool slot while it
/// drains. Returns false if the thread could not be spawned.
fn spawn_leg(
    shared: &Arc<ClientShared>,
    endpoint: String,
    request: &Message,
    tx: mpsc::Sender<Leg>,
) -> bool {
    let shared = Arc::clone(shared);
    let request = request.clone();
    std::thread::Builder::new()
        .name("sae-net-leg".to_string())
        .spawn(move || {
            let leg = request_leg(&shared, endpoint, &request, shared.cfg.read_timeout);
            // The race may already be decided; a closed channel is fine.
            drop(tx.send(leg));
        })
        .is_ok()
}

/// One request/response exchange against one endpoint: classify the reply
/// and — on any bad answer — demote the endpoint *here, in the leg*, so an
/// abandoned hedge loser still routes itself out of future preference.
fn request_leg(
    shared: &ClientShared,
    endpoint: String,
    request: &Message,
    read_timeout: Duration,
) -> Leg {
    let (outcome, sent, received) = match exchange(shared, &endpoint, request, read_timeout) {
        Ok((
            Message::Slice {
                shard: claimed,
                epoch,
                records,
                vt,
                ..
            },
            sent,
            received,
        )) => (
            // Keep the *claimed* shard id: misattribution is for
            // verification to catch, not for the client to repair.
            Ok((
                ShardSlice {
                    shard: claimed as usize,
                    records,
                    vt,
                },
                epoch,
            )),
            sent,
            received,
        ),
        Ok((
            Message::Error {
                code,
                version,
                detail,
            },
            sent,
            received,
        )) => (
            Err(NetError::Remote {
                code,
                version,
                detail,
            }),
            sent,
            received,
        ),
        Ok((other, sent, received)) => (
            Err(NetError::UnexpectedMessage { got: other.tag() }),
            sent,
            received,
        ),
        Err(e) => (Err(e), 0, 0),
    };
    if outcome.is_err() {
        shared.demoted.lock().insert(endpoint.clone());
    }
    Leg {
        endpoint,
        outcome,
        bytes_sent: sent,
        bytes_received: received,
    }
}

/// `Ping`s one endpoint by name, pooling the connection on success.
fn ping_endpoint(shared: &ClientShared, endpoint: &str) -> NetResult<()> {
    let (response, _, _) = exchange(shared, endpoint, &Message::Ping, shared.cfg.read_timeout)?;
    match response {
        Message::Pong => Ok(()),
        other => Err(NetError::UnexpectedMessage { got: other.tag() }),
    }
}

/// The replica group for `shard`, round-robin rotated, non-demoted
/// endpoints first. Demotion is a *preference*, not an exclusion.
fn candidates(shared: &ClientShared, shard: usize) -> Vec<String> {
    let group = shared.topology.replicas(shard);
    if group.is_empty() {
        return Vec::new();
    }
    let start = shared.cursor.lock().get(shard).copied().unwrap_or(0) % group.len();
    let down = shared.demoted.lock().clone();
    let rotated = group[start..].iter().chain(group[..start].iter());
    let (healthy, demoted): (Vec<&String>, Vec<&String>) =
        rotated.partition(|e| !down.contains(*e));
    healthy.into_iter().chain(demoted).cloned().collect()
}

/// Advances the shard's round-robin cursor by one, once per fetch pass.
fn advance_cursor(shared: &ClientShared, shard: usize) {
    let group = shared.topology.replicas(shard).len().max(1);
    if let Some(cursor) = shared.cursor.lock().get_mut(shard) {
        *cursor = cursor.wrapping_add(1) % group;
    }
}

/// Sends `request` to `endpoint` and reads one response frame, returning
/// `(response, bytes_sent, bytes_received)`. The endpoint's pooled
/// connection is *checked out* for exclusive use (concurrent legs to the
/// same endpoint each dial their own rather than interleave frames). A
/// transport failure on a previously-pooled connection re-dials the same
/// endpoint once — a server restart must not masquerade as a dead replica.
/// *Any* error discards the socket: after a framing error the stream can no
/// longer be trusted to be at a frame boundary.
fn exchange(
    shared: &ClientShared,
    endpoint: &str,
    request: &Message,
    read_timeout: Duration,
) -> NetResult<(Message, u64, u64)> {
    let pooled = shared.pool.lock().remove(endpoint);
    let was_pooled = pooled.is_some();
    let stream = match pooled {
        Some(stream) => stream,
        None => dial(shared, endpoint)?,
    };
    match exchange_on(shared, endpoint, stream, request, read_timeout) {
        Err(e) if was_pooled && matches!(e, NetError::Io(_) | NetError::Disconnected) => {
            let stream = dial(shared, endpoint)?;
            exchange_on(shared, endpoint, stream, request, read_timeout)
        }
        other => other,
    }
}

/// One exchange over an owned connection; on success the connection goes
/// (back) to the pool, on failure it is dropped.
fn exchange_on(
    shared: &ClientShared,
    endpoint: &str,
    mut stream: TcpStream,
    request: &Message,
    read_timeout: Duration,
) -> NetResult<(Message, u64, u64)> {
    let result = stream
        .set_read_timeout(Some(read_timeout))
        .map_err(NetError::from)
        .and_then(|()| write_frame(&mut stream, request))
        .and_then(|sent| {
            read_frame(&mut stream).map(|(msg, received)| (msg, sent as u64, received as u64))
        });
    if result.is_ok() {
        // Return the borrowed connection; if a concurrent leg pooled one
        // for this endpoint first, keep that one and drop ours.
        shared
            .pool
            .lock()
            .entry(endpoint.to_string())
            .or_insert(stream);
    }
    result
}

fn dial(shared: &ClientShared, endpoint: &str) -> NetResult<TcpStream> {
    let addr = endpoint
        .to_socket_addrs()?
        .next()
        .ok_or(NetError::Malformed("endpoint resolved to no address"))?;
    let stream = TcpStream::connect_timeout(&addr, shared.cfg.connect_timeout)?;
    stream.set_read_timeout(Some(shared.cfg.read_timeout))?;
    stream.set_write_timeout(Some(shared.cfg.write_timeout))?;
    Ok(stream)
}
