//! # sae-net
//!
//! The verified network serving layer: a hand-rolled, dependency-free
//! binary wire protocol over TCP, thread-per-connection shard servers,
//! trustless read replicas, and a scatter-gather client that verifies
//! results **exactly** as the in-process one.
//!
//! The normative byte-level specification lives in `docs/protocol.md` and
//! the replication design in `docs/replication.md`; this crate is their
//! reference implementation. The design carries the paper's trust model
//! onto the wire unchanged:
//!
//! * the [`ShardServer`] is the *service provider* — untrusted. It fronts
//!   any [`SliceSource`] (a primary engine or an installed replica copy),
//!   executes queries and ships back result slices plus the trusted
//!   entity's 20-byte verification token, but nothing it says is believed;
//! * a [`ReplicaServer`] syncs a [`sae_core::ReplicaSet`] from a primary —
//!   chunked epoch-stamped snapshots, then incremental WAL tails — and
//!   serves it exactly like a primary. Replicas add *availability*, never
//!   trust: their slices face the same client verification;
//! * the [`NetClient`] derives the responder set from the *published*
//!   [`sae_core::ShardLayout`], scatters over a [`Topology`] of replica
//!   groups — **concurrently**, one fetch job per overlapping shard on a
//!   small reusable worker pool, with failover and true hedged reads
//!   (see [`client`]'s module docs for the concurrency model) — and runs
//!   [`sae_core::verify_slices`] — the very function the in-process engine
//!   uses — over whatever arrived. A dropped endpoint is a
//!   [`sae_core::ShardedVerifyError::MissingShardSlice`];
//!   a doctored record or token is a per-slice verification failure that
//!   demotes the replica and re-issues the sub-query to a sibling. Network
//!   failure and byzantine behaviour collapse into the same typed verdicts
//!   as in-process tampering;
//! * the framing ([`frame`]) reuses the WAL's CRC-32/IEEE discipline:
//!   `[len][crc32][payload]`, little-endian, with a hard payload cap so a
//!   garbage length claim is rejected before any allocation. Truncated,
//!   corrupt, oversized and wrong-version frames each produce a distinct
//!   typed [`NetError`] — never a panic.
//!
//! ## A complete loopback deployment
//!
//! ```
//! use std::sync::Arc;
//! use sae_core::ShardedSaeEngine;
//! use sae_crypto::HashAlgorithm;
//! use sae_net::{NetClient, ShardServer, ShardServerConfig};
//! use sae_workload::{DatasetSpec, KeyDistribution, RangeQuery};
//!
//! // An in-memory two-shard engine over a small uniform dataset.
//! let dataset = DatasetSpec {
//!     cardinality: 300,
//!     distribution: KeyDistribution::Uniform { domain: 10_000 },
//!     record_size: 64,
//!     seed: 7,
//! }
//! .generate();
//! let engine = Arc::new(ShardedSaeEngine::build_in_memory(&dataset, HashAlgorithm::Sha1, 2)?);
//!
//! // One server per shard, each on its own ephemeral loopback port.
//! let servers: Vec<ShardServer> = (0..engine.shard_count())
//!     .map(|shard| {
//!         ShardServer::spawn(
//!             Arc::clone(&engine),
//!             vec![shard],
//!             "127.0.0.1:0",
//!             ShardServerConfig::default(),
//!         )
//!     })
//!     .collect::<Result<_, _>>()?;
//! let endpoints = servers.iter().map(|s| s.local_addr().to_string()).collect();
//!
//! // Scatter a full-domain range query, gather and verify the slices.
//! let mut client = NetClient::for_engine(&engine, endpoints)?;
//! let outcome = client.query(&RangeQuery::new(0, 10_000));
//! assert!(outcome.verdict.is_ok());
//! assert_eq!(outcome.record_count(), 300);
//!
//! for server in servers {
//!     server.shutdown();
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
pub mod frame;
pub mod replica;
pub mod server;
pub mod source;
pub mod topology;

pub use client::{NetClient, NetClientConfig, NetQueryOutcome, ProbeReport};
pub use frame::{
    decode_frame, encode_frame, read_frame, slice_to_message, write_frame, Message, NetError,
    NetResult, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD, WIRE_VERSION,
};
pub use replica::{ReplicaServer, ReplicaServerConfig};
pub use server::{
    NetStats, NetStatsSnapshot, ServerTamper, ShardServer, ShardServerConfig, SNAPSHOT_CHUNK_SIZE,
};
pub use source::SliceSource;
pub use topology::Topology;
