//! The replica server: a [`ShardServer`] front over a
//! [`sae_core::ReplicaSet`] it keeps synced from a primary endpoint.
//!
//! A [`ReplicaServer`] bootstraps each served shard with a chunked,
//! epoch-stamped snapshot ([`Message::FetchSnapshot`]) and then keeps it
//! current with incremental WAL tails ([`Message::FetchTail`]), falling
//! back to a fresh snapshot whenever the primary's segment has rotated past
//! the replica's epoch (`TAIL_UNAVAILABLE`) or a tail fails to apply. All
//! installation-side validation — CRC-checked frames, epoch-regression
//! refusal, recomputed TE digests — lives in [`sae_core::ReplicaSet`]; this
//! module only moves bytes.
//!
//! The serving front is an ordinary [`ShardServer`]: clients query a
//! replica exactly as they query a primary, and verify its slices against
//! the same owner-published token. A shard whose snapshot has not installed
//! yet answers with the typed `NOT_SYNCED` refusal (and the sibling is
//! consulted by the client's failover).

use crate::frame::{code, read_frame, write_frame, Message, NetError, NetResult};
use crate::server::{NetStatsSnapshot, ServerTamper, ShardServer, ShardServerConfig};
use sae_core::{ReplicaSet, ShardLayout};
use sae_crypto::HashAlgorithm;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for a [`ReplicaServer`].
#[derive(Clone, Copy, Debug)]
pub struct ReplicaServerConfig {
    /// Configuration of the serving front (timeouts, service delay).
    pub server: ShardServerConfig,
    /// Bound on establishing the sync connection to the primary.
    pub connect_timeout: Duration,
    /// Bound on waiting for a sync response frame (snapshot chunks can be
    /// megabytes; keep this generous).
    pub read_timeout: Duration,
    /// Bound on writing a sync request frame.
    pub write_timeout: Duration,
    /// Cadence of the background catch-up loop.
    pub sync_interval: Duration,
}

impl Default for ReplicaServerConfig {
    fn default() -> Self {
        ReplicaServerConfig {
            server: ShardServerConfig::default(),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            sync_interval: Duration::from_millis(25),
        }
    }
}

/// One pooled request/response connection to the primary, with the same
/// one-retry-redial discipline the query client uses.
struct RpcConn {
    endpoint: String,
    stream: Option<TcpStream>,
    cfg: ReplicaServerConfig,
}

impl RpcConn {
    fn new(endpoint: String, cfg: ReplicaServerConfig) -> RpcConn {
        RpcConn {
            endpoint,
            stream: None,
            cfg,
        }
    }

    fn exchange(&mut self, request: &Message) -> NetResult<Message> {
        let pooled = self.stream.is_some();
        match self.exchange_once(request) {
            Ok(ok) => Ok(ok),
            Err(e) if pooled && matches!(e, NetError::Io(_) | NetError::Disconnected) => {
                self.exchange_once(request)
            }
            Err(e) => Err(e),
        }
    }

    fn exchange_once(&mut self, request: &Message) -> NetResult<Message> {
        if self.stream.is_none() {
            let addr = self
                .endpoint
                .to_socket_addrs()?
                .next()
                .ok_or(NetError::Malformed(
                    "primary endpoint resolved to no address",
                ))?;
            let stream = TcpStream::connect_timeout(&addr, self.cfg.connect_timeout)?;
            stream.set_read_timeout(Some(self.cfg.read_timeout))?;
            stream.set_write_timeout(Some(self.cfg.write_timeout))?;
            self.stream = Some(stream);
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err(NetError::Disconnected);
        };
        let result =
            write_frame(stream, request).and_then(|_| read_frame(stream).map(|(msg, _)| msg));
        if result.is_err() {
            // After any failure the stream may sit mid-frame: discard it.
            self.stream = None;
        }
        result
    }
}

/// A running read replica: a [`ReplicaSet`] kept synced from a primary by a
/// background thread, served over TCP by an embedded [`ShardServer`].
///
/// Dropping the server stops the syncer and the front; prefer
/// [`ReplicaServer::shutdown`] to observe the join.
pub struct ReplicaServer {
    set: Arc<ReplicaSet>,
    server: Option<ShardServer>,
    served: Vec<usize>,
    primary: String,
    cfg: ReplicaServerConfig,
    stop: Arc<AtomicBool>,
    syncer: Option<JoinHandle<()>>,
}

impl ReplicaServer {
    /// Bootstraps a replica of `served` shards from the primary at
    /// `primary`, binds `addr` (port 0 for ephemeral) and starts serving.
    /// The initial sync is synchronous — when this returns `Ok`, every
    /// served shard has an installed snapshot and answers queries — and a
    /// background thread keeps the copies current at
    /// [`ReplicaServerConfig::sync_interval`].
    ///
    /// `layout`, `alg` and `record_len` are the deployment's *published*
    /// parameters: the replica validates everything it syncs against them
    /// rather than trusting the primary's self-description.
    pub fn spawn(
        primary: impl Into<String>,
        layout: ShardLayout,
        alg: HashAlgorithm,
        record_len: usize,
        served: Vec<usize>,
        addr: impl ToSocketAddrs,
        cfg: ReplicaServerConfig,
    ) -> NetResult<ReplicaServer> {
        let primary = primary.into();
        let set = Arc::new(ReplicaSet::new(layout, alg, record_len));
        let mut conn = RpcConn::new(primary.clone(), cfg);
        sync_set(&set, &served, &mut conn)?;
        let server = ShardServer::spawn_source(
            Arc::<ReplicaSet>::clone(&set),
            served.clone(),
            addr,
            cfg.server,
        )?;
        let stop = Arc::new(AtomicBool::new(false));
        let syncer = {
            let set = Arc::clone(&set);
            let served = served.clone();
            let stop = Arc::clone(&stop);
            let interval = cfg.sync_interval;
            std::thread::Builder::new()
                .name(format!("sae-replica-sync-{}", server.local_addr().port()))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        sleep_watching(interval, &stop);
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        // Sync failures here are transient by assumption
                        // (primary restarting, segment rotating): the shard
                        // keeps serving its last installed state and the
                        // next tick retries.
                        drop(sync_set(&set, &served, &mut conn));
                    }
                })?
        };
        Ok(ReplicaServer {
            set,
            server: Some(server),
            served,
            primary,
            cfg,
            stop,
            syncer: Some(syncer),
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        // The server is only `None` transiently inside shutdown.
        match &self.server {
            Some(server) => server.local_addr(),
            None => std::net::SocketAddr::from(([0, 0, 0, 0], 0)),
        }
    }

    /// The shard ids this replica serves.
    pub fn served_shards(&self) -> &[usize] {
        &self.served
    }

    /// The primary endpoint this replica syncs from.
    pub fn primary(&self) -> &str {
        &self.primary
    }

    /// Wire counters of the serving front.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.server
            .as_ref()
            .map(ShardServer::stats)
            .unwrap_or_default()
    }

    /// Arms (or clears) a byzantine behaviour on the serving front — E14
    /// uses this to prove clients route around a tampering replica.
    pub fn set_tamper(&self, tamper: Option<ServerTamper>) {
        if let Some(server) = &self.server {
            server.set_tamper(tamper);
        }
    }

    /// The epoch shard `shard` currently serves, or `None` when unsynced.
    pub fn epoch(&self, shard: usize) -> Option<u64> {
        self.set.epoch(shard)
    }

    /// One synchronous catch-up pass over every served shard, on a fresh
    /// connection — lets tests and benches advance the replica
    /// deterministically instead of waiting out the background interval.
    pub fn sync_now(&self) -> NetResult<()> {
        let mut conn = RpcConn::new(self.primary.clone(), self.cfg);
        sync_set(&self.set, &self.served, &mut conn)
    }

    /// Graceful shutdown: stop the sync loop, then the serving front.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(syncer) = self.syncer.take() {
            drop(syncer.join());
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

impl std::fmt::Debug for ReplicaServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaServer")
            .field("addr", &self.local_addr())
            .field("primary", &self.primary)
            .field("served", &self.served)
            .field("set", &self.set)
            .finish()
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Sleeps `total` in short steps, returning early when `stop` is raised.
fn sleep_watching(total: Duration, stop: &AtomicBool) {
    let step = Duration::from_millis(10).min(total);
    let mut slept = Duration::ZERO;
    while slept < total && !stop.load(Ordering::SeqCst) {
        std::thread::sleep(step);
        slept += step;
    }
}

/// Syncs every served shard once, stopping at the first error.
fn sync_set(set: &ReplicaSet, served: &[usize], conn: &mut RpcConn) -> NetResult<()> {
    for &shard in served {
        sync_shard(set, shard, conn)?;
    }
    Ok(())
}

/// Brings one shard up to the primary's advertised epoch: no-op when equal,
/// WAL tail when behind, full snapshot when unsynced or the tail is gone.
fn sync_shard(set: &ReplicaSet, shard: usize, conn: &mut RpcConn) -> NetResult<()> {
    let status = conn.exchange(&Message::Status {
        shard: shard as u32,
    })?;
    let primary_epoch = match status {
        Message::StatusInfo {
            shard: s,
            synced,
            epoch,
        } if s == shard as u32 => {
            if !synced {
                return Err(NetError::Replication(format!(
                    "primary reports shard {shard} unsynced — is it a replica itself?"
                )));
            }
            epoch
        }
        Message::Error {
            code,
            version,
            detail,
        } => {
            return Err(NetError::Remote {
                code,
                version,
                detail,
            })
        }
        other => return Err(NetError::UnexpectedMessage { got: other.tag() }),
    };
    if set.epoch(shard) == Some(primary_epoch) {
        return Ok(());
    }
    if let Some(from) = set.epoch(shard) {
        match fetch_and_apply_tail(set, shard, from, conn) {
            Ok(true) => return Ok(()),
            // The tail path could not advance the shard (segment rotated
            // away, or the tail failed validation and the slot is now
            // unsynced): fall through to a full snapshot.
            Ok(false) => {}
            Err(e) => return Err(e),
        }
    }
    let snapshot = fetch_snapshot(shard, conn)?;
    set.install_snapshot(shard, &snapshot)
        .map_err(|e| NetError::Replication(format!("shard {shard} snapshot refused: {e}")))?;
    Ok(())
}

/// Tries the incremental path. `Ok(true)` means the tail applied; `Ok(false)`
/// means the caller should fetch a snapshot instead.
fn fetch_and_apply_tail(
    set: &ReplicaSet,
    shard: usize,
    from: u64,
    conn: &mut RpcConn,
) -> NetResult<bool> {
    let reply = conn.exchange(&Message::FetchTail {
        shard: shard as u32,
        from_epoch: from,
    })?;
    match reply {
        Message::Tail { shard: s, bytes } if s == shard as u32 => {
            // An unapplicable or corrupt tail leaves the slot unsynced by
            // design — the snapshot path re-seeds it.
            Ok(set.apply_wal_tail(shard, &bytes).is_ok())
        }
        Message::Error { code, .. } if code == code::TAIL_UNAVAILABLE => Ok(false),
        Message::Error {
            code,
            version,
            detail,
        } => Err(NetError::Remote {
            code,
            version,
            detail,
        }),
        other => Err(NetError::UnexpectedMessage { got: other.tag() }),
    }
}

/// Fetches a complete snapshot chunk-by-chunk. Every chunk must agree on
/// the epoch and chunk count; if the primary commits mid-fetch the set
/// disagrees and the fetch restarts, up to three attempts.
fn fetch_snapshot(shard: usize, conn: &mut RpcConn) -> NetResult<Vec<u8>> {
    for _attempt in 0..3 {
        let (chunks, epoch, mut bytes) = expect_chunk(shard, 0, conn)?;
        let mut consistent = true;
        for c in 1..chunks {
            let (got_chunks, got_epoch, chunk_bytes) = expect_chunk(shard, c, conn)?;
            if got_chunks != chunks || got_epoch != epoch {
                consistent = false;
                break;
            }
            bytes.extend_from_slice(&chunk_bytes);
        }
        if consistent {
            return Ok(bytes);
        }
    }
    Err(NetError::Replication(format!(
        "shard {shard}: snapshot kept changing under the chunked fetch; giving up after 3 attempts"
    )))
}

/// Requests one snapshot chunk and validates its identity fields.
fn expect_chunk(shard: usize, chunk: u32, conn: &mut RpcConn) -> NetResult<(u32, u64, Vec<u8>)> {
    let reply = conn.exchange(&Message::FetchSnapshot {
        shard: shard as u32,
        chunk,
    })?;
    match reply {
        Message::SnapshotChunk {
            shard: s,
            chunk: c,
            chunks,
            epoch,
            bytes,
        } => {
            if s != shard as u32 || c != chunk {
                return Err(NetError::Replication(format!(
                    "asked for shard {shard} chunk {chunk}, got shard {s} chunk {c}"
                )));
            }
            Ok((chunks, epoch, bytes))
        }
        Message::Error {
            code,
            version,
            detail,
        } => Err(NetError::Remote {
            code,
            version,
            detail,
        }),
        other => Err(NetError::UnexpectedMessage { got: other.tag() }),
    }
}
