//! The shard server: a thread-per-connection TCP front for one or more
//! shards of a [`SliceSource`] — a primary [`ShardedSaeEngine`] or a
//! synced [`sae_core::ReplicaSet`].
//!
//! The server is the *service provider* side of the wire — untrusted by
//! construction. It answers [`Message::Query`] requests with
//! [`Message::Slice`] responses produced by
//! [`SliceSource::source_slice`], which returns a fully-owned slice, so
//! **no tree guard is ever live across a socket write** (a slow peer must
//! never stall a shard's readers; the analyzer's `hold-across-sync` rule
//! lists the frame-write calls for exactly this reason). Because clients
//! verify every slice against the trusted entity's token, a byzantine server
//! — simulated by [`ServerTamper`] — is *detected*, never trusted.
//!
//! Primaries additionally answer the replication catalog:
//! [`Message::Status`] (served-epoch advertisement),
//! [`Message::FetchSnapshot`] (chunked, epoch-stamped shard snapshots) and
//! [`Message::FetchTail`] (incremental WAL tails) — see `docs/replication.md`.
//!
//! Connection handling: per-connection read/write timeouts, per-server
//! [`NetStats`] counters in the spirit of [`sae_storage::IoStats`], and a
//! graceful [`ShardServer::shutdown`] that wakes the acceptor, half-closes
//! every live connection and joins every worker thread.

use crate::frame::{
    code, read_frame, slice_to_message, write_frame, Message, NetError, NetResult,
    MAX_FRAME_PAYLOAD, WIRE_VERSION,
};
use crate::source::SliceSource;
use parking_lot::Mutex;
use sae_core::{ShardSlice, ShardedSaeEngine, SnapshotHeader};
use sae_storage::StorageError;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Snapshot transfers are chunked at this size so one chunk always fits a
/// frame ([`MAX_FRAME_PAYLOAD`] is 4 MiB) with room for the chunk header.
pub const SNAPSHOT_CHUNK_SIZE: usize = 1 << 20;

/// Tuning knobs for a [`ShardServer`].
#[derive(Clone, Copy, Debug)]
pub struct ShardServerConfig {
    /// Per-connection socket read timeout. Idle waits poll the shutdown
    /// flag at this cadence, so it also bounds shutdown latency.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout: the longest a slow peer can
    /// stall one worker thread (never a shard — no tree guard spans a
    /// write).
    pub write_timeout: Duration,
    /// Artificial per-query service time, applied under a server-wide gate
    /// so concurrent queries serialize behind it — models a single-endpoint
    /// saturation point for the E14 replica-scaling bench. Zero (the
    /// default) disables both the delay and the gate.
    pub service_delay: Duration,
}

impl Default for ShardServerConfig {
    fn default() -> Self {
        ShardServerConfig {
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(5),
            service_delay: Duration::ZERO,
        }
    }
}

/// Byzantine behaviours a server can be armed with, for tests and the
/// E13/E14 tamper legs. Each doctors the response *after* the source
/// produced it — exactly what a malicious service provider controlling the
/// wire could do — and each is caught client-side: the first three by token
/// verification, the last by the client's epoch high-water mark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerTamper {
    /// Flip one payload byte of the first record: the record still decodes,
    /// but its digest no longer folds to the token.
    FlipRecordByte,
    /// Silently omit the first record of the slice — the within-shard
    /// completeness attack.
    DropFirstRecord,
    /// Flip one bit of the verification token itself.
    FlipTokenBit,
    /// Serve honest content but advertise epoch 0 — a replica frozen at (or
    /// lying about) ancient state. Token verification *passes* (the content
    /// is genuinely old-but-consistent in the real attack); only the
    /// client's high-water freshness check routes around it.
    StaleEpoch,
}

const TAMPER_NONE: u8 = 0;
const TAMPER_FLIP_RECORD: u8 = 1;
const TAMPER_DROP_RECORD: u8 = 2;
const TAMPER_FLIP_TOKEN: u8 = 3;
const TAMPER_STALE_EPOCH: u8 = 4;

/// Monotonic per-server wire counters, in the spirit of
/// [`sae_storage::IoStats`]: workers update them lock-free and
/// [`NetStats::snapshot`] reads a consistent-enough view for reporting.
#[derive(Debug, Default)]
pub struct NetStats {
    connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    queries: AtomicU64,
    snapshot_chunks: AtomicU64,
    tails: AtomicU64,
    errors_sent: AtomicU64,
    decode_errors: AtomicU64,
}

impl NetStats {
    /// Current counter values.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            snapshot_chunks: self.snapshot_chunks.load(Ordering::Relaxed),
            tails: self.tails.load(Ordering::Relaxed),
            errors_sent: self.errors_sent.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a server's [`NetStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Frames successfully read from peers.
    pub frames_in: u64,
    /// Frames written to peers.
    pub frames_out: u64,
    /// Payload + header bytes read.
    pub bytes_in: u64,
    /// Payload + header bytes written.
    pub bytes_out: u64,
    /// Query requests answered with a slice.
    pub queries: u64,
    /// Snapshot chunks served to syncing replicas.
    pub snapshot_chunks: u64,
    /// WAL tails served to syncing replicas.
    pub tails: u64,
    /// Error responses sent.
    pub errors_sent: u64,
    /// Frames that failed to decode (bad version, unknown type, malformed).
    pub decode_errors: u64,
}

/// Everything the acceptor and the per-connection workers share.
struct Shared {
    source: Arc<dyn SliceSource>,
    served: Vec<usize>,
    cfg: ShardServerConfig,
    stats: NetStats,
    shutdown: AtomicBool,
    tamper: AtomicU8,
    /// Serializes the artificial `service_delay`, modelling one saturated
    /// service lane per endpoint. Rank `gate` in `analyzer.toml`; held only
    /// across the sleep, never across source calls or socket I/O.
    gate: Mutex<()>,
    /// Live connections: a stream clone (so shutdown can half-close blocked
    /// readers) paired with its worker's join handle. Lock order: `conns` is
    /// the outermost rank in `analyzer.toml` and is never held across
    /// engine calls or socket I/O.
    conns: Mutex<Vec<(TcpStream, JoinHandle<()>)>>,
}

/// A running shard endpoint: a TCP listener plus one worker thread per live
/// connection, fronting the `served` shards of one [`SliceSource`].
///
/// Dropping the server shuts it down gracefully; prefer calling
/// [`ShardServer::shutdown`] to observe the join.
pub struct ShardServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ShardServer {
    /// Binds `addr` (use port 0 for an ephemeral loopback port) and starts
    /// accepting connections, serving the `served` shard ids of `engine`.
    /// Returns once the listener is live; [`ShardServer::local_addr`] is the
    /// endpoint to publish.
    pub fn spawn(
        engine: Arc<ShardedSaeEngine>,
        served: Vec<usize>,
        addr: impl ToSocketAddrs,
        cfg: ShardServerConfig,
    ) -> NetResult<ShardServer> {
        Self::spawn_source(engine, served, addr, cfg)
    }

    /// Like [`ShardServer::spawn`] for any [`SliceSource`] — the entry a
    /// [`crate::ReplicaServer`] uses to serve its installed copies.
    pub fn spawn_source(
        source: Arc<dyn SliceSource>,
        served: Vec<usize>,
        addr: impl ToSocketAddrs,
        cfg: ShardServerConfig,
    ) -> NetResult<ShardServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            source,
            served,
            cfg,
            stats: NetStats::default(),
            shutdown: AtomicBool::new(false),
            tamper: AtomicU8::new(TAMPER_NONE),
            gate: Mutex::new(()),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name(format!("sae-net-accept-{}", addr.port()))
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(ShardServer {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard ids this endpoint serves.
    pub fn served_shards(&self) -> &[usize] {
        &self.shared.served
    }

    /// Current wire counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Arms (or clears) a byzantine behaviour on every subsequent slice —
    /// the E13/E14 tamper legs and the loopback tests use this to prove
    /// doctored slices are *detected* by client verification (or, for
    /// [`ServerTamper::StaleEpoch`], routed around by the freshness check),
    /// not trusted.
    pub fn set_tamper(&self, tamper: Option<ServerTamper>) {
        let code = match tamper {
            None => TAMPER_NONE,
            Some(ServerTamper::FlipRecordByte) => TAMPER_FLIP_RECORD,
            Some(ServerTamper::DropFirstRecord) => TAMPER_DROP_RECORD,
            Some(ServerTamper::FlipTokenBit) => TAMPER_FLIP_TOKEN,
            Some(ServerTamper::StaleEpoch) => TAMPER_STALE_EPOCH,
        };
        self.shared.tamper.store(code, Ordering::Relaxed);
    }

    /// Graceful shutdown: stop accepting, half-close every live connection
    /// (which unblocks workers waiting in socket reads) and join every
    /// thread. Idempotent; also run by `Drop`.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor with a throwaway connection; it re-checks the
        // flag after every accept.
        drop(TcpStream::connect(self.addr));
        if let Some(acceptor) = self.acceptor.take() {
            drop(acceptor.join());
        }
        // The acceptor is gone, so no new registrations: drain the registry
        // outside the lock, half-close the streams, join the workers.
        let conns = std::mem::take(&mut *self.shared.conns.lock());
        for (stream, _) in &conns {
            drop(stream.shutdown(Shutdown::Both));
        }
        for (_, worker) in conns {
            drop(worker.join());
        }
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        if serve_stream(stream, shared).is_none() {
            continue;
        }
    }
}

/// Configures one accepted connection and hands it to a worker thread,
/// registering the (stream clone, worker) pair for shutdown. Returns `None`
/// when the connection could not be set up (it is simply dropped).
fn serve_stream(stream: TcpStream, shared: &Arc<Shared>) -> Option<()> {
    stream
        .set_read_timeout(Some(shared.cfg.read_timeout))
        .ok()?;
    stream
        .set_write_timeout(Some(shared.cfg.write_timeout))
        .ok()?;
    let clone = stream.try_clone().ok()?;
    let worker_shared = Arc::clone(shared);
    let worker = std::thread::Builder::new()
        .name("sae-net-conn".to_string())
        .spawn(move || handle_connection(stream, &worker_shared))
        .ok()?;
    {
        let mut conns = shared.conns.lock();
        // Prune finished workers so a long-lived server does not accumulate
        // one registry entry per connection ever accepted.
        conns.retain(|(_, handle)| !handle.is_finished());
        conns.push((clone, worker));
    }
    Some(())
}

/// One connection's serve loop: read a frame, answer it, repeat until the
/// peer hangs up, the framing breaks, or the server shuts down. The
/// explicit socket shutdown on exit matters: the registry holds a clone of
/// this stream, so merely dropping ours would leave the peer's half open.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut stream = stream;
    serve_loop(&mut stream, shared);
    drop(stream.shutdown(Shutdown::Both));
}

fn serve_loop(stream: &mut TcpStream, shared: &Arc<Shared>) {
    loop {
        // Wait for the next frame's first byte, polling the shutdown flag on
        // every read-timeout tick. Only a timeout *between* frames is
        // retryable; once a frame has started, a timeout tears the framing.
        let first = match await_first_byte(stream, shared) {
            Some(byte) => byte,
            None => return,
        };
        let mut reader = std::io::Cursor::new([first]).chain(&mut *stream);
        let response = match read_frame(&mut reader) {
            Ok((message, n)) => {
                shared.stats.frames_in.fetch_add(1, Ordering::Relaxed);
                shared.stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                match respond(&message, shared) {
                    Some(response) => response,
                    None => continue,
                }
            }
            // The frame parsed but is not speakable: answer with a typed
            // error. The framing itself is intact (the CRC passed), so the
            // connection survives.
            Err(NetError::WrongVersion { got }) => {
                shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                error_message(
                    code::UNSUPPORTED_VERSION,
                    format!("version {got} not spoken; this endpoint speaks {WIRE_VERSION}"),
                )
            }
            Err(NetError::UnknownMessageType(tag)) => {
                shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                error_message(code::UNKNOWN_MESSAGE, format!("unknown message type {tag}"))
            }
            Err(NetError::Malformed(what)) => {
                shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                error_message(code::MALFORMED, format!("malformed body: {what}"))
            }
            // Truncation, CRC failure, oversized claim or socket error: the
            // byte stream can no longer be framed — close the connection.
            Err(_) => {
                shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if let Message::Error { .. } = response {
            shared.stats.errors_sent.fetch_add(1, Ordering::Relaxed);
        }
        match write_frame(stream, &response) {
            Ok(n) => {
                shared.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .bytes_out
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(_) => return,
        }
    }
}

/// Blocks until a frame's first byte arrives. `None` means stop serving:
/// the peer hung up, the socket died, or the server is shutting down.
fn await_first_byte(stream: &mut TcpStream, shared: &Shared) -> Option<u8> {
    let mut byte = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => return Some(byte[0]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => return None,
        }
    }
}

/// Computes the response to one well-formed message. `None` means the
/// message needs no response (a `Pong` the peer sent unprompted).
fn respond(message: &Message, shared: &Shared) -> Option<Message> {
    match message {
        Message::Ping => Some(Message::Pong),
        Message::Query { shard, range } => Some(answer_query(*shard, range, shared)),
        Message::Status { shard } => Some(answer_status(*shard, shared)),
        Message::FetchSnapshot { shard, chunk } => {
            Some(answer_fetch_snapshot(*shard, *chunk, shared))
        }
        Message::FetchTail { shard, from_epoch } => {
            Some(answer_fetch_tail(*shard, *from_epoch, shared))
        }
        // Responses are not requests: a peer sending one is confused or
        // probing; answer with a typed error rather than guessing.
        Message::Slice { .. }
        | Message::Error { .. }
        | Message::StatusInfo { .. }
        | Message::SnapshotChunk { .. }
        | Message::Tail { .. } => Some(error_message(
            code::MALFORMED,
            format!("message type {} is not a request", message.tag()),
        )),
        Message::Pong => None,
    }
}

fn served_here(shard: u32, shared: &Shared) -> bool {
    shared.served.contains(&(shard as usize))
}

fn answer_query(shard: u32, range: &sae_workload::RangeQuery, shared: &Shared) -> Message {
    if !served_here(shard, shared) {
        return error_message(
            code::SHARD_NOT_SERVED,
            format!("shard {shard} is not served by this endpoint"),
        );
    }
    // `source_slice` returns a fully-owned slice: every source-side guard is
    // released before the frame write below — a slow client cannot stall
    // the shard's readers.
    let (mut slice, mut epoch) = match shared.source.source_slice(shard as usize, range) {
        Ok(Some(answer)) => answer,
        Ok(None) => {
            return error_message(
                code::NOT_SYNCED,
                format!("shard {shard} has no installed snapshot yet; ask a sibling replica"),
            )
        }
        Err(e) => return error_message(code::QUERY_FAILED, format!("query failed: {e}")),
    };
    let tamper = shared.tamper.load(Ordering::Relaxed);
    apply_tamper(&mut slice, tamper);
    if tamper == TAMPER_STALE_EPOCH {
        epoch = 0;
    }
    if !shared.cfg.service_delay.is_zero() {
        // Serialize the artificial service time behind the gate — queries
        // queue exactly as they would behind one saturated endpoint. No
        // other lock is held here and none is taken under it.
        let _lane = shared.gate.lock();
        std::thread::sleep(shared.cfg.service_delay);
    }
    shared.stats.queries.fetch_add(1, Ordering::Relaxed);
    let record_len = slice.records.first().map_or(0, Vec::len);
    match slice_to_message(&slice, record_len, epoch) {
        Some(message) => message,
        None => error_message(
            code::RESPONSE_TOO_LARGE,
            "slice exceeds the frame payload cap; narrow the sub-query".to_string(),
        ),
    }
}

fn answer_status(shard: u32, shared: &Shared) -> Message {
    if !served_here(shard, shared) {
        return error_message(
            code::SHARD_NOT_SERVED,
            format!("shard {shard} is not served by this endpoint"),
        );
    }
    match shared.source.served_epoch(shard as usize) {
        Some(epoch) => Message::StatusInfo {
            shard,
            synced: true,
            epoch,
        },
        None => Message::StatusInfo {
            shard,
            synced: false,
            epoch: 0,
        },
    }
}

fn answer_fetch_snapshot(shard: u32, chunk: u32, shared: &Shared) -> Message {
    if !served_here(shard, shared) {
        return error_message(
            code::SHARD_NOT_SERVED,
            format!("shard {shard} is not served by this endpoint"),
        );
    }
    // Re-exported per chunk rather than cached: simple, always-current, and
    // safe — the client cross-checks every chunk's epoch and restarts the
    // fetch if the primary committed between chunks.
    let snapshot = match shared.source.export_snapshot(shard as usize) {
        Ok(bytes) => bytes,
        Err(e) => return replication_error(&e),
    };
    let epoch = match SnapshotHeader::parse(&snapshot) {
        Ok(header) => header.epoch,
        Err(e) => {
            return error_message(
                code::QUERY_FAILED,
                format!("snapshot export unreadable: {e}"),
            )
        }
    };
    let chunks = snapshot.len().div_ceil(SNAPSHOT_CHUNK_SIZE).max(1) as u32;
    if chunk >= chunks {
        return error_message(
            code::MALFORMED,
            format!("chunk {chunk} out of range: this snapshot has {chunks} chunks"),
        );
    }
    let at = chunk as usize * SNAPSHOT_CHUNK_SIZE;
    let bytes = snapshot
        .get(at..snapshot.len().min(at + SNAPSHOT_CHUNK_SIZE))
        .unwrap_or(&[])
        .to_vec();
    shared.stats.snapshot_chunks.fetch_add(1, Ordering::Relaxed);
    Message::SnapshotChunk {
        shard,
        chunk,
        chunks,
        epoch,
        bytes,
    }
}

fn answer_fetch_tail(shard: u32, from_epoch: u64, shared: &Shared) -> Message {
    if !served_here(shard, shared) {
        return error_message(
            code::SHARD_NOT_SERVED,
            format!("shard {shard} is not served by this endpoint"),
        );
    }
    let bytes = match shared.source.export_tail(shard as usize, from_epoch) {
        Ok(bytes) => bytes,
        Err(e) => return replication_error(&e),
    };
    // 4-byte shard header + the framed bytes must fit one frame; a tail
    // that outgrew the cap means the replica fell far behind — a snapshot
    // is the right recovery, same as a rotated-away segment.
    if bytes.len() + 4 + 2 > MAX_FRAME_PAYLOAD {
        return error_message(
            code::TAIL_UNAVAILABLE,
            format!("tail from epoch {from_epoch} exceeds the frame cap; fetch a snapshot instead"),
        );
    }
    shared.stats.tails.fetch_add(1, Ordering::Relaxed);
    Message::Tail { shard, bytes }
}

/// Maps a replication-export failure to its typed wire error.
fn replication_error(e: &StorageError) -> Message {
    match e {
        StorageError::TailUnavailable {
            base_epoch,
            from_epoch,
        } => error_message(
            code::TAIL_UNAVAILABLE,
            format!(
                "tail from epoch {from_epoch} unavailable: segment starts at epoch {base_epoch}; \
                 fetch a snapshot"
            ),
        ),
        StorageError::ReplicationUnsupported => error_message(
            code::REPLICATION_UNSUPPORTED,
            "this endpoint does not export snapshots or tails".to_string(),
        ),
        other => error_message(
            code::QUERY_FAILED,
            format!("replication export failed: {other}"),
        ),
    }
}

/// The armed byzantine behaviour, applied to an honest slice. Tampering
/// with an empty slice is a no-op — there is nothing to doctor.
fn apply_tamper(slice: &mut ShardSlice, tamper: u8) {
    match tamper {
        TAMPER_FLIP_RECORD => {
            if let Some(last) = slice.records.first_mut().and_then(|r| r.last_mut()) {
                *last ^= 0x01;
            }
        }
        TAMPER_DROP_RECORD if !slice.records.is_empty() => {
            slice.records.remove(0);
        }
        TAMPER_FLIP_TOKEN => {
            slice.vt.0[0] ^= 0x01;
        }
        _ => {}
    }
}

fn error_message(code: u16, detail: String) -> Message {
    Message::Error {
        code,
        version: WIRE_VERSION,
        detail,
    }
}
