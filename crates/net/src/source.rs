//! What a shard endpoint serves from: the [`SliceSource`] seam between the
//! wire front ([`crate::ShardServer`]) and whatever holds the shard data.
//!
//! PR 8 bolted the server directly onto a [`ShardedSaeEngine`]. Replication
//! introduces a second kind of endpoint — a [`ReplicaSet`] serving an
//! installed copy — and this trait is the refactor that lets one server
//! front either: queries, served-epoch advertisement, and (for primaries)
//! snapshot/WAL-tail export all go through it. Implementations must return
//! *fully-owned* slices so no tree guard is ever live across a socket
//! write.

use sae_core::{ReplicaSet, ShardSlice, ShardedSaeEngine};
use sae_storage::{StorageError, StorageResult};
use sae_workload::RangeQuery;

/// A source of verifiable shard slices, served behind a
/// [`crate::ShardServer`].
pub trait SliceSource: Send + Sync {
    /// Answers shard `shard`'s clamped sub-query from the source's current
    /// state, returning the slice plus the commit epoch it was served at
    /// (0 for in-memory deployments). `Ok(None)` means the source knows
    /// the shard but cannot serve it *yet* — a replica that has not
    /// installed a snapshot — and maps to a typed `NOT_SYNCED` refusal.
    fn source_slice(
        &self,
        shard: usize,
        sub: &RangeQuery,
    ) -> StorageResult<Option<(ShardSlice, u64)>>;

    /// The commit epoch shard `shard` is currently served at, or `None`
    /// when the source cannot serve it yet.
    fn served_epoch(&self, shard: usize) -> Option<u64>;

    /// Exports an epoch-stamped snapshot of shard `shard` for a syncing
    /// replica. Sources that cannot export (in-memory engines, replicas
    /// themselves) return [`StorageError::ReplicationUnsupported`].
    fn export_snapshot(&self, shard: usize) -> StorageResult<Vec<u8>>;

    /// Exports the WAL tail replaying every commit after `from_epoch`, or
    /// [`StorageError::TailUnavailable`] when the segment no longer reaches
    /// back that far, or [`StorageError::ReplicationUnsupported`] as above.
    fn export_tail(&self, shard: usize, from_epoch: u64) -> StorageResult<Vec<u8>>;
}

impl SliceSource for ShardedSaeEngine {
    fn source_slice(
        &self,
        shard: usize,
        sub: &RangeQuery,
    ) -> StorageResult<Option<(ShardSlice, u64)>> {
        let slice = self.shard_slice(shard, sub)?;
        Ok(Some((slice, self.shard_epoch(shard))))
    }

    fn served_epoch(&self, shard: usize) -> Option<u64> {
        Some(self.shard_epoch(shard))
    }

    fn export_snapshot(&self, shard: usize) -> StorageResult<Vec<u8>> {
        self.export_shard_snapshot(shard)
    }

    fn export_tail(&self, shard: usize, from_epoch: u64) -> StorageResult<Vec<u8>> {
        self.export_wal_tail(shard, from_epoch)
    }
}

impl SliceSource for ReplicaSet {
    fn source_slice(
        &self,
        shard: usize,
        sub: &RangeQuery,
    ) -> StorageResult<Option<(ShardSlice, u64)>> {
        self.replica_slice(shard, sub)
    }

    fn served_epoch(&self, shard: usize) -> Option<u64> {
        self.epoch(shard)
    }

    // Replicas do not chain: a replica of a replica would add a sync hop
    // with no trust benefit (verification is end-to-end anyway) while
    // multiplying staleness. Syncers must talk to the primary.
    fn export_snapshot(&self, _shard: usize) -> StorageResult<Vec<u8>> {
        Err(StorageError::ReplicationUnsupported)
    }

    fn export_tail(&self, _shard: usize, _from_epoch: u64) -> StorageResult<Vec<u8>> {
        Err(StorageError::ReplicationUnsupported)
    }
}
