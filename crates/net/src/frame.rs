//! The wire format: CRC-framed, length-prefixed request/response messages.
//!
//! The normative byte-level specification lives in `docs/protocol.md`; this
//! module is its implementation. The framing discipline is the write-ahead
//! log's ([`sae_storage::wal`]): a little-endian length prefix, a CRC-32/IEEE
//! over the payload, and a decoder that treats every malformed input — short,
//! oversized, bit-flipped, wrong version — as a typed [`NetError`], never a
//! panic and never a silently misparsed message.
//!
//! ```text
//! frame   := [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! payload := [version: u8] [msg_type: u8] [body]
//! ```

use sae_core::ShardSlice;
use sae_crypto::{Digest, DIGEST_LEN};
use sae_workload::RangeQuery;
use std::io::{Read, Write};

/// The wire protocol version this build speaks. Every payload leads with it;
/// a peer speaking another version is answered with an
/// [`Message::Error`] of code [`code::UNSUPPORTED_VERSION`] that carries the
/// responder's version, which is the whole negotiation story (see
/// `docs/protocol.md` § Version negotiation).
pub const WIRE_VERSION: u8 = 1;

/// Frame header length: 4-byte payload length + 4-byte CRC.
pub const FRAME_HEADER_LEN: usize = 8;

/// Largest payload a peer will buffer. Anything claiming more is rejected
/// before allocation — a garbage length prefix must not OOM the server.
pub const MAX_FRAME_PAYLOAD: usize = 4 << 20;

/// Message type tags. `u8` on the wire; additions are a minor, version-
/// preserving change (unknown tags are rejected with a typed error, not
/// skipped).
pub mod msg {
    /// Client → server: answer one shard's clamped sub-query.
    pub const QUERY: u8 = 1;
    /// Server → client: one shard's slice (records + TE token).
    pub const SLICE: u8 = 2;
    /// Server → client: a typed failure.
    pub const ERROR: u8 = 3;
    /// Client → server: liveness probe.
    pub const PING: u8 = 4;
    /// Server → client: liveness answer.
    pub const PONG: u8 = 5;
    /// Replica → primary: what epoch does this endpoint serve for a shard?
    pub const STATUS: u8 = 6;
    /// Primary → replica: served-epoch advertisement for one shard.
    pub const STATUS_INFO: u8 = 7;
    /// Replica → primary: fetch one chunk of an epoch-stamped shard snapshot.
    pub const FETCH_SNAPSHOT: u8 = 8;
    /// Primary → replica: one snapshot chunk (with the chunk count and the
    /// snapshot's epoch, so a replica can detect a snapshot that changed
    /// between chunk fetches).
    pub const SNAPSHOT_CHUNK: u8 = 9;
    /// Replica → primary: stream the WAL tail from a given epoch.
    pub const FETCH_TAIL: u8 = 10;
    /// Primary → replica: the requested WAL tail, as WAL-framed bytes.
    pub const TAIL: u8 = 11;
}

/// Error codes carried by [`Message::Error`]. `u16` on the wire.
pub mod code {
    /// The request's version byte is not one the server speaks; the error's
    /// `version` field carries the server's version.
    pub const UNSUPPORTED_VERSION: u16 = 1;
    /// The message body did not decode against its type's layout.
    pub const MALFORMED: u16 = 2;
    /// The message type tag is not in the catalog.
    pub const UNKNOWN_MESSAGE: u16 = 3;
    /// The requested shard is not served by this endpoint.
    pub const SHARD_NOT_SERVED: u16 = 4;
    /// The shard exists but answering the query failed server-side.
    pub const QUERY_FAILED: u16 = 5;
    /// The answer exists but does not fit in [`super::MAX_FRAME_PAYLOAD`].
    pub const RESPONSE_TOO_LARGE: u16 = 6;
    /// The requested WAL tail starts before the server's current segment;
    /// the replica must fall back to a full snapshot.
    pub const TAIL_UNAVAILABLE: u16 = 7;
    /// The endpoint serves this shard but has not finished installing a
    /// snapshot for it yet — ask a sibling.
    pub const NOT_SYNCED: u16 = 8;
    /// The endpoint cannot export snapshots or WAL tails (e.g. it fronts an
    /// in-memory engine, or is itself a replica).
    pub const REPLICATION_UNSUPPORTED: u16 = 9;
}

/// Why a wire operation failed. Every decoder and I/O path returns one of
/// these; none of them panics on hostile input.
#[derive(Debug)]
pub enum NetError {
    /// The underlying socket failed (includes read/write timeouts).
    Io(std::io::Error),
    /// The peer closed the connection at a frame boundary.
    Disconnected,
    /// A frame header or payload was cut short.
    Truncated {
        /// Bytes the frame claimed or needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A frame's length prefix exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized {
        /// The claimed payload length.
        len: usize,
    },
    /// The payload does not match the frame's CRC — bit rot or tampering;
    /// the stream cannot be trusted to be in sync any more.
    CrcMismatch,
    /// The payload's version byte is not [`WIRE_VERSION`].
    WrongVersion {
        /// The version the peer sent.
        got: u8,
    },
    /// The payload's message type tag is not in the catalog.
    UnknownMessageType(u8),
    /// The body did not decode against its message type's layout.
    Malformed(&'static str),
    /// The peer answered with [`Message::Error`].
    Remote {
        /// The error code (see [`code`]).
        code: u16,
        /// The peer's wire version (meaningful for `UNSUPPORTED_VERSION`).
        version: u8,
        /// Human-readable detail.
        detail: String,
    },
    /// The peer answered with a well-formed message of the wrong type.
    UnexpectedMessage {
        /// The message type tag that arrived.
        got: u8,
    },
    /// Replica-side synchronization failed: snapshot or tail bytes arrived
    /// intact at the framing level but could not be validated or installed
    /// (or kept changing under a chunked fetch).
    Replication(String),
    /// Every reachable replica of a shard advertised an epoch below the
    /// client's verified high-water mark — the responses verify against the
    /// token but are provably older than state this client has already
    /// seen, so they were refused rather than silently served.
    StaleSlice {
        /// The shard whose replicas are all stale.
        shard: u32,
        /// The freshest epoch any of them advertised.
        epoch: u64,
        /// The client's verified high-water mark for the shard.
        high_water: u64,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            NetError::Oversized { len } => write!(
                f,
                "frame claims {len}-byte payload, cap is {MAX_FRAME_PAYLOAD}"
            ),
            NetError::CrcMismatch => write!(f, "frame payload fails its CRC"),
            NetError::WrongVersion { got } => {
                write!(
                    f,
                    "peer speaks wire version {got}, this build speaks {WIRE_VERSION}"
                )
            }
            NetError::UnknownMessageType(tag) => write!(f, "unknown message type {tag}"),
            NetError::Malformed(what) => write!(f, "malformed message body: {what}"),
            NetError::Remote {
                code,
                version,
                detail,
            } => write!(f, "remote error {code} (peer version {version}): {detail}"),
            NetError::UnexpectedMessage { got } => {
                write!(f, "unexpected message type {got} for this exchange")
            }
            NetError::Replication(what) => write!(f, "replica sync failed: {what}"),
            NetError::StaleSlice {
                shard,
                epoch,
                high_water,
            } => write!(
                f,
                "shard {shard}: every replica is stale (freshest epoch {epoch}, verified \
                 high-water mark {high_water})"
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// A result on the wire path.
pub type NetResult<T> = Result<T, NetError>;

/// The message catalog. See `docs/protocol.md` for the normative body
/// layouts; `Message::encode_body` / `Message::decode` are their
/// implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Answer shard `shard`'s sub-query `[lower, upper]`.
    Query {
        /// The shard the client routed this sub-query to.
        shard: u32,
        /// The clamped sub-range the slice and its token must cover.
        range: RangeQuery,
    },
    /// One shard's contribution to a scatter-gather answer.
    Slice {
        /// The shard that produced the slice.
        shard: u32,
        /// The fixed encoded record length (0 permitted when `records` is
        /// empty).
        record_len: u32,
        /// The commit epoch of the state the slice was served from (0 for
        /// in-memory deployments). Advertised, not verified: the client uses
        /// it only as a freshness heuristic against its high-water mark —
        /// correctness still rests entirely on the TE token.
        epoch: u64,
        /// The slice's records, each exactly `record_len` bytes.
        records: Vec<Vec<u8>>,
        /// The shard TE's verification token over the sub-query.
        vt: Digest,
    },
    /// A typed failure (see [`code`] for the catalog).
    Error {
        /// The error code.
        code: u16,
        /// The responder's wire version.
        version: u8,
        /// Human-readable detail, UTF-8.
        detail: String,
    },
    /// Liveness probe.
    Ping,
    /// Liveness answer.
    Pong,
    /// What epoch does this endpoint serve shard `shard` at?
    Status {
        /// The shard being asked about.
        shard: u32,
    },
    /// Served-epoch advertisement for one shard.
    StatusInfo {
        /// The shard described.
        shard: u32,
        /// Whether the endpoint currently serves the shard (a replica that
        /// has not installed a snapshot yet answers `false`).
        synced: bool,
        /// The commit epoch of the served state (0 when `synced` is false
        /// or the deployment is in-memory).
        epoch: u64,
    },
    /// Fetch chunk `chunk` of shard `shard`'s current snapshot.
    FetchSnapshot {
        /// The shard whose snapshot is wanted.
        shard: u32,
        /// Zero-based chunk index.
        chunk: u32,
    },
    /// One chunk of an epoch-stamped shard snapshot.
    SnapshotChunk {
        /// The shard the snapshot belongs to.
        shard: u32,
        /// Zero-based index of this chunk.
        chunk: u32,
        /// Total chunk count of the snapshot (≥ 1).
        chunks: u32,
        /// The snapshot's commit epoch; a replica rejects a chunk set whose
        /// epochs disagree (the primary committed between fetches).
        epoch: u64,
        /// The chunk's bytes.
        bytes: Vec<u8>,
    },
    /// Stream the WAL tail covering every commit after `from_epoch`.
    FetchTail {
        /// The shard whose tail is wanted.
        shard: u32,
        /// The epoch the requester is already at.
        from_epoch: u64,
    },
    /// The requested WAL tail: a WAL-framed segment image replaying every
    /// commit after the requested epoch.
    Tail {
        /// The shard the tail belongs to.
        shard: u32,
        /// The WAL-framed bytes.
        bytes: Vec<u8>,
    },
}

impl Message {
    /// The message's type tag on the wire.
    pub fn tag(&self) -> u8 {
        match self {
            Message::Query { .. } => msg::QUERY,
            Message::Slice { .. } => msg::SLICE,
            Message::Error { .. } => msg::ERROR,
            Message::Ping => msg::PING,
            Message::Pong => msg::PONG,
            Message::Status { .. } => msg::STATUS,
            Message::StatusInfo { .. } => msg::STATUS_INFO,
            Message::FetchSnapshot { .. } => msg::FETCH_SNAPSHOT,
            Message::SnapshotChunk { .. } => msg::SNAPSHOT_CHUNK,
            Message::FetchTail { .. } => msg::FETCH_TAIL,
            Message::Tail { .. } => msg::TAIL,
        }
    }

    /// Encodes the body (everything after the `[version, msg_type]` prefix).
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Message::Query { shard, range } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&range.lower.to_le_bytes());
                out.extend_from_slice(&range.upper.to_le_bytes());
            }
            Message::Slice {
                shard,
                record_len,
                epoch,
                records,
                vt,
            } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&record_len.to_le_bytes());
                out.extend_from_slice(&(records.len() as u32).to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(vt.as_bytes());
                for record in records {
                    out.extend_from_slice(record);
                }
            }
            Message::Error {
                code,
                version,
                detail,
            } => {
                out.extend_from_slice(&code.to_le_bytes());
                out.push(*version);
                out.extend_from_slice(detail.as_bytes());
            }
            Message::Ping | Message::Pong => {}
            Message::Status { shard } => {
                out.extend_from_slice(&shard.to_le_bytes());
            }
            Message::StatusInfo {
                shard,
                synced,
                epoch,
            } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.push(u8::from(*synced));
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            Message::FetchSnapshot { shard, chunk } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&chunk.to_le_bytes());
            }
            Message::SnapshotChunk {
                shard,
                chunk,
                chunks,
                epoch,
                bytes,
            } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&chunk.to_le_bytes());
                out.extend_from_slice(&chunks.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(bytes);
            }
            Message::FetchTail { shard, from_epoch } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&from_epoch.to_le_bytes());
            }
            Message::Tail { shard, bytes } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
    }

    /// Decodes a full payload (version byte, type tag, body). Typed errors
    /// on every malformed input; never panics.
    pub fn decode(payload: &[u8]) -> NetResult<Message> {
        let (&version, rest) = payload
            .split_first()
            .ok_or(NetError::Malformed("empty payload"))?;
        if version != WIRE_VERSION {
            return Err(NetError::WrongVersion { got: version });
        }
        let (&tag, body) = rest
            .split_first()
            .ok_or(NetError::Malformed("payload has no message type"))?;
        match tag {
            msg::QUERY => {
                let [shard, lower, upper] = decode_u32s(body, "query body is 12 bytes")?;
                if lower > upper {
                    return Err(NetError::Malformed("query lower bound above upper"));
                }
                Ok(Message::Query {
                    shard,
                    range: RangeQuery::new(lower, upper),
                })
            }
            msg::SLICE => {
                if body.len() < 20 + DIGEST_LEN {
                    return Err(NetError::Malformed("slice header is 40 bytes"));
                }
                let (header, payload) = body.split_at(20 + DIGEST_LEN);
                let [shard, record_len, count] =
                    decode_u32s(&header[..12], "slice header is 40 bytes")?;
                let epoch = decode_u64(&header[12..20], "slice header is 40 bytes")?;
                let vt = Digest::from_slice(&header[20..])
                    .ok_or(NetError::Malformed("slice token is 20 bytes"))?;
                let expected = (count as u64).saturating_mul(record_len as u64);
                if expected != payload.len() as u64 {
                    return Err(NetError::Malformed(
                        "slice body length disagrees with count x record_len",
                    ));
                }
                if count > 0 && record_len == 0 {
                    return Err(NetError::Malformed("non-empty slice with zero record_len"));
                }
                let records = payload
                    .chunks_exact(record_len.max(1) as usize)
                    .map(<[u8]>::to_vec)
                    .collect();
                Ok(Message::Slice {
                    shard,
                    record_len,
                    epoch,
                    records,
                    vt,
                })
            }
            msg::ERROR => {
                if body.len() < 3 {
                    return Err(NetError::Malformed("error header is 3 bytes"));
                }
                let code = u16::from_le_bytes([body[0], body[1]]);
                let version = body[2];
                let detail = String::from_utf8_lossy(&body[3..]).into_owned();
                Ok(Message::Error {
                    code,
                    version,
                    detail,
                })
            }
            msg::PING | msg::PONG => {
                if !body.is_empty() {
                    return Err(NetError::Malformed("ping/pong carries no body"));
                }
                Ok(if tag == msg::PING {
                    Message::Ping
                } else {
                    Message::Pong
                })
            }
            msg::STATUS => {
                let [shard] = decode_u32s(body, "status body is 4 bytes")?;
                Ok(Message::Status { shard })
            }
            msg::STATUS_INFO => {
                if body.len() != 13 {
                    return Err(NetError::Malformed("status-info body is 13 bytes"));
                }
                let [shard] = decode_u32s(&body[..4], "status-info body is 13 bytes")?;
                let synced = match body[4] {
                    0 => false,
                    1 => true,
                    _ => return Err(NetError::Malformed("status-info synced flag is 0 or 1")),
                };
                let epoch = decode_u64(&body[5..], "status-info body is 13 bytes")?;
                Ok(Message::StatusInfo {
                    shard,
                    synced,
                    epoch,
                })
            }
            msg::FETCH_SNAPSHOT => {
                let [shard, chunk] = decode_u32s(body, "fetch-snapshot body is 8 bytes")?;
                Ok(Message::FetchSnapshot { shard, chunk })
            }
            msg::SNAPSHOT_CHUNK => {
                if body.len() < 20 {
                    return Err(NetError::Malformed("snapshot-chunk header is 20 bytes"));
                }
                let (header, bytes) = body.split_at(20);
                let [shard, chunk, chunks] =
                    decode_u32s(&header[..12], "snapshot-chunk header is 20 bytes")?;
                let epoch = decode_u64(&header[12..], "snapshot-chunk header is 20 bytes")?;
                if chunks == 0 {
                    return Err(NetError::Malformed("snapshot has zero chunks"));
                }
                if chunk >= chunks {
                    return Err(NetError::Malformed("snapshot chunk index past chunk count"));
                }
                Ok(Message::SnapshotChunk {
                    shard,
                    chunk,
                    chunks,
                    epoch,
                    bytes: bytes.to_vec(),
                })
            }
            msg::FETCH_TAIL => {
                if body.len() != 12 {
                    return Err(NetError::Malformed("fetch-tail body is 12 bytes"));
                }
                let [shard] = decode_u32s(&body[..4], "fetch-tail body is 12 bytes")?;
                let from_epoch = decode_u64(&body[4..], "fetch-tail body is 12 bytes")?;
                Ok(Message::FetchTail { shard, from_epoch })
            }
            msg::TAIL => {
                if body.len() < 4 {
                    return Err(NetError::Malformed("tail header is 4 bytes"));
                }
                let (header, bytes) = body.split_at(4);
                let [shard] = decode_u32s(header, "tail header is 4 bytes")?;
                Ok(Message::Tail {
                    shard,
                    bytes: bytes.to_vec(),
                })
            }
            other => Err(NetError::UnknownMessageType(other)),
        }
    }
}

/// Decodes one little-endian `u64`, rejecting any other length.
fn decode_u64(body: &[u8], what: &'static str) -> NetResult<u64> {
    let Ok(bytes) = <[u8; 8]>::try_from(body) else {
        return Err(NetError::Malformed(what));
    };
    Ok(u64::from_le_bytes(bytes))
}

/// Decodes `N` consecutive little-endian `u32`s, rejecting any other length.
fn decode_u32s<const N: usize>(body: &[u8], what: &'static str) -> NetResult<[u32; N]> {
    if body.len() != 4 * N {
        return Err(NetError::Malformed(what));
    }
    let mut out = [0u32; N];
    for (slot, chunk) in out.iter_mut().zip(body.chunks_exact(4)) {
        let Ok(bytes) = <[u8; 4]>::try_from(chunk) else {
            return Err(NetError::Malformed(what));
        };
        *slot = u32::from_le_bytes(bytes);
    }
    Ok(out)
}

/// Encodes one message as a complete frame: header, CRC, versioned payload.
pub fn encode_frame(message: &Message) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.push(WIRE_VERSION);
    payload.push(message.tag());
    message.encode_body(&mut payload);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&sae_storage::wal::crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one frame from the front of `bytes`, returning the message and
/// the bytes consumed. Pure counterpart of [`read_frame`], shared with the
/// property tests: truncations, bit flips, oversized claims and wrong
/// versions all come back as typed errors.
pub fn decode_frame(bytes: &[u8]) -> NetResult<(Message, usize)> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(NetError::Truncated {
            needed: FRAME_HEADER_LEN,
            have: bytes.len(),
        });
    }
    let Ok(len_bytes) = <[u8; 4]>::try_from(&bytes[0..4]) else {
        return Err(NetError::Malformed("frame header"));
    };
    let Ok(crc_bytes) = <[u8; 4]>::try_from(&bytes[4..8]) else {
        return Err(NetError::Malformed("frame header"));
    };
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(NetError::Oversized { len });
    }
    let total = FRAME_HEADER_LEN + len;
    if bytes.len() < total {
        return Err(NetError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    let payload = &bytes[FRAME_HEADER_LEN..total];
    if sae_storage::wal::crc32(payload) != u32::from_le_bytes(crc_bytes) {
        return Err(NetError::CrcMismatch);
    }
    Ok((Message::decode(payload)?, total))
}

/// Writes one framed message to `w`, returning the bytes written. A tree
/// guard must never be live across this call (the `hold-across-sync`
/// analyzer rule lists it): a slow peer would stall every reader of the
/// shard for the duration of the socket write.
pub fn write_frame<W: Write>(w: &mut W, message: &Message) -> NetResult<usize> {
    let frame = encode_frame(message);
    w.write_all(&frame)?;
    Ok(frame.len())
}

/// Reads one framed message from `r`, returning the message and the bytes
/// consumed. A clean EOF before the first header byte is
/// [`NetError::Disconnected`] (the peer hung up between frames); EOF
/// anywhere inside a frame is a truncation surfaced as [`NetError::Io`].
pub fn read_frame<R: Read>(r: &mut R) -> NetResult<(Message, usize)> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // Read the first byte separately so an idle peer's hangup (EOF at a
    // frame boundary) is distinguishable from a frame cut short.
    match r.read(&mut header[..1])? {
        0 => return Err(NetError::Disconnected),
        _ => r.read_exact(&mut header[1..])?,
    }
    let Ok(len_bytes) = <[u8; 4]>::try_from(&header[0..4]) else {
        return Err(NetError::Malformed("frame header"));
    };
    let Ok(crc_bytes) = <[u8; 4]>::try_from(&header[4..8]) else {
        return Err(NetError::Malformed("frame header"));
    };
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(NetError::Oversized { len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if sae_storage::wal::crc32(&payload) != u32::from_le_bytes(crc_bytes) {
        return Err(NetError::CrcMismatch);
    }
    Ok((Message::decode(&payload)?, FRAME_HEADER_LEN + len))
}

/// Converts an engine-produced [`ShardSlice`] into its wire message,
/// refusing slices that exceed the frame cap (the server turns that refusal
/// into [`code::RESPONSE_TOO_LARGE`]).
pub fn slice_to_message(slice: &ShardSlice, record_len: usize, epoch: u64) -> Option<Message> {
    let body = 2 + 20 + DIGEST_LEN + slice.records.iter().map(Vec::len).sum::<usize>();
    if body > MAX_FRAME_PAYLOAD {
        return None;
    }
    Some(Message::Slice {
        shard: slice.shard as u32,
        record_len: record_len as u32,
        epoch,
        records: slice.records.clone(),
        vt: slice.vt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let frame = encode_frame(&m);
        let (decoded, used) = decode_frame(&frame).expect("own frames decode");
        assert_eq!(decoded, m);
        assert_eq!(used, frame.len());
        let mut cursor = std::io::Cursor::new(frame.clone());
        let (read, used) = read_frame(&mut cursor).expect("own frames read");
        assert_eq!(read, m);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn catalog_round_trips() {
        roundtrip(Message::Ping);
        roundtrip(Message::Pong);
        roundtrip(Message::Query {
            shard: 3,
            range: RangeQuery::new(17, 4_000_000),
        });
        roundtrip(Message::Error {
            code: code::SHARD_NOT_SERVED,
            version: WIRE_VERSION,
            detail: "shard 9 not here".into(),
        });
        roundtrip(Message::Slice {
            shard: 1,
            record_len: 4,
            epoch: 17,
            records: vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]],
            vt: Digest::new([7u8; DIGEST_LEN]),
        });
        roundtrip(Message::Slice {
            shard: 0,
            record_len: 0,
            epoch: 0,
            records: Vec::new(),
            vt: Digest::ZERO,
        });
        roundtrip(Message::Status { shard: 2 });
        roundtrip(Message::StatusInfo {
            shard: 2,
            synced: true,
            epoch: 99,
        });
        roundtrip(Message::StatusInfo {
            shard: 0,
            synced: false,
            epoch: 0,
        });
        roundtrip(Message::FetchSnapshot { shard: 1, chunk: 3 });
        roundtrip(Message::SnapshotChunk {
            shard: 1,
            chunk: 3,
            chunks: 5,
            epoch: 42,
            bytes: vec![0xAB; 100],
        });
        roundtrip(Message::SnapshotChunk {
            shard: 0,
            chunk: 0,
            chunks: 1,
            epoch: 0,
            bytes: Vec::new(),
        });
        roundtrip(Message::FetchTail {
            shard: 7,
            from_epoch: 12,
        });
        roundtrip(Message::Tail {
            shard: 7,
            bytes: vec![1, 2, 3],
        });
    }

    #[test]
    fn snapshot_chunk_indices_are_validated() {
        // chunks == 0 and chunk >= chunks are both malformed.
        for (chunk, chunks) in [(0u32, 0u32), (5, 5), (6, 5)] {
            let mut payload = vec![WIRE_VERSION, msg::SNAPSHOT_CHUNK];
            payload.extend_from_slice(&1u32.to_le_bytes());
            payload.extend_from_slice(&chunk.to_le_bytes());
            payload.extend_from_slice(&chunks.to_le_bytes());
            payload.extend_from_slice(&9u64.to_le_bytes());
            assert!(
                matches!(Message::decode(&payload), Err(NetError::Malformed(_))),
                "chunk {chunk}/{chunks} accepted"
            );
        }
    }

    #[test]
    fn status_info_synced_flag_must_be_boolean() {
        let mut payload = vec![WIRE_VERSION, msg::STATUS_INFO];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(2); // not 0/1
        payload.extend_from_slice(&9u64.to_le_bytes());
        assert!(matches!(
            Message::decode(&payload),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut frame = encode_frame(&Message::Ping);
        frame[FRAME_HEADER_LEN] = 9; // version byte
                                     // Re-seal the CRC so only the version is wrong.
        let crc = sae_storage::wal::crc32(&frame[FRAME_HEADER_LEN..]);
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(NetError::WrongVersion { got: 9 })
        ));
    }

    #[test]
    fn oversized_claims_are_rejected_before_allocation() {
        let mut frame = encode_frame(&Message::Ping);
        frame[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(NetError::Oversized { .. })
        ));
    }

    #[test]
    fn slice_count_must_match_body() {
        let mut payload = vec![WIRE_VERSION, msg::SLICE];
        payload.extend_from_slice(&1u32.to_le_bytes()); // shard
        payload.extend_from_slice(&8u32.to_le_bytes()); // record_len
        payload.extend_from_slice(&3u32.to_le_bytes()); // count: claims 24 bytes
        payload.extend_from_slice(&0u64.to_le_bytes()); // epoch
        payload.extend_from_slice(&[0u8; DIGEST_LEN]);
        payload.extend_from_slice(&[0u8; 8]); // only one record present
        assert!(matches!(
            Message::decode(&payload),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn disconnect_is_distinguished_from_truncation() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame(&mut empty),
            Err(NetError::Disconnected)
        ));
        let frame = encode_frame(&Message::Ping);
        let mut torn = std::io::Cursor::new(frame[..frame.len() - 1].to_vec());
        assert!(matches!(read_frame(&mut torn), Err(NetError::Io(_))));
    }
}
