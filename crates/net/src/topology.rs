//! Deployment topology: which endpoints serve which shard.
//!
//! PR 8's client hard-coded one endpoint per shard. A [`Topology`] makes
//! the mapping explicit — `shard -> [replica endpoints]` — so a shard can
//! be served by a primary *and* any number of verified read replicas, and
//! the client can fail over between them without ever weakening
//! verification (every replica's slice is checked against the same
//! owner-published token).

use crate::frame::{NetError, NetResult};

/// The published `shard -> [replica endpoints]` mapping a [`crate::NetClient`]
/// scatters over. Group order is meaningful: the client round-robins within
/// a group and prefers earlier, non-demoted endpoints on refetch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    groups: Vec<Vec<String>>,
}

impl Topology {
    /// The PR 8 shape: exactly one endpoint per shard, no replicas.
    pub fn single(endpoints: Vec<String>) -> Topology {
        Topology {
            groups: endpoints.into_iter().map(|e| vec![e]).collect(),
        }
    }

    /// A replicated deployment: `groups[i]` lists every endpoint serving
    /// shard `i`. Fails if any shard has no endpoint at all — a layout
    /// shard nobody serves can never produce a verifying response.
    pub fn replicated(groups: Vec<Vec<String>>) -> NetResult<Topology> {
        if groups.iter().any(Vec::is_empty) {
            return Err(NetError::Malformed(
                "every shard needs at least one endpoint in its replica group",
            ));
        }
        Ok(Topology { groups })
    }

    /// Number of shards the topology covers.
    pub fn shard_count(&self) -> usize {
        self.groups.len()
    }

    /// The endpoints serving shard `shard` (empty for an out-of-range id).
    pub fn replicas(&self, shard: usize) -> &[String] {
        self.groups.get(shard).map_or(&[], Vec::as_slice)
    }

    /// Largest replica group size across all shards.
    pub fn max_group(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wraps_each_endpoint_in_its_own_group() {
        let t = Topology::single(vec!["a:1".into(), "b:2".into()]);
        assert_eq!(t.shard_count(), 2);
        assert_eq!(t.replicas(0), ["a:1".to_string()]);
        assert_eq!(t.replicas(1), ["b:2".to_string()]);
        assert_eq!(t.replicas(9), Vec::<String>::new().as_slice());
        assert_eq!(t.max_group(), 1);
    }

    #[test]
    fn replicated_rejects_an_unserved_shard() {
        assert!(Topology::replicated(vec![vec!["a:1".into()], vec![]]).is_err());
        let t = Topology::replicated(vec![
            vec!["a:1".into(), "b:2".into(), "c:3".into()],
            vec!["d:4".into()],
        ])
        .unwrap();
        assert_eq!(t.shard_count(), 2);
        assert_eq!(t.replicas(0).len(), 3);
        assert_eq!(t.max_group(), 3);
    }
}
