//! Property-based tests for the wire frame codec.
//!
//! The promise `docs/protocol.md` makes — and the shard servers rely on to
//! face untrusted peers — is exactly this: whatever bytes arrive, the
//! decoder never panics and never silently accepts a damaged frame.
//! Truncation at any byte, any single-bit flip, an oversized length claim
//! and a foreign version byte each map to their own typed [`NetError`].

use proptest::prelude::*;
use sae_crypto::Digest;
use sae_net::{decode_frame, encode_frame, Message, NetError, MAX_FRAME_PAYLOAD, WIRE_VERSION};
use sae_storage::wal::crc32;
use sae_workload::RangeQuery;

fn arb_query() -> impl Strategy<Value = Message> {
    (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(shard, a, b)| Message::Query {
        shard,
        range: RangeQuery::new(a, b),
    })
}

fn arb_slice() -> impl Strategy<Value = Message> {
    (
        any::<u32>(),
        1usize..32,
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 0..6),
        prop::array::uniform20(any::<u8>()),
    )
        .prop_map(|(shard, record_len, epoch, seeds, vt)| Message::Slice {
            shard,
            record_len: record_len as u32,
            epoch,
            records: seeds.iter().map(|&seed| vec![seed; record_len]).collect(),
            vt: Digest(vt),
        })
}

fn arb_status_info() -> impl Strategy<Value = Message> {
    (any::<u32>(), any::<bool>(), any::<u64>()).prop_map(|(shard, synced, epoch)| {
        Message::StatusInfo {
            shard,
            synced,
            epoch,
        }
    })
}

fn arb_snapshot_chunk() -> impl Strategy<Value = Message> {
    (
        any::<u32>(),
        1u32..8,
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 0..48),
    )
        .prop_map(|(shard, chunks, epoch, bytes)| Message::SnapshotChunk {
            shard,
            chunk: chunks - 1,
            chunks,
            epoch,
            bytes,
        })
}

fn arb_tail() -> impl Strategy<Value = Message> {
    (any::<u32>(), prop::collection::vec(any::<u8>(), 0..48))
        .prop_map(|(shard, bytes)| Message::Tail { shard, bytes })
}

fn arb_error() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<u8>(),
        prop::collection::vec(32u8..127, 0..24),
    )
        .prop_map(|(code, version, detail)| Message::Error {
            code,
            version,
            detail: String::from_utf8_lossy(&detail).into_owned(),
        })
}

/// One of the six replication-catalog messages, uniformly.
fn arb_replication() -> impl Strategy<Value = Message> {
    (
        0u8..6,
        (any::<u32>(), any::<u64>()),
        arb_status_info(),
        arb_snapshot_chunk(),
        arb_tail(),
    )
        .prop_map(
            |(pick, (shard, from_epoch), info, chunk, tail)| match pick {
                0 => Message::Status { shard },
                1 => info,
                2 => Message::FetchSnapshot {
                    shard,
                    chunk: from_epoch as u32 % 64,
                },
                3 => chunk,
                4 => Message::FetchTail { shard, from_epoch },
                _ => tail,
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        0u8..5,
        arb_query(),
        arb_slice(),
        arb_error(),
        arb_replication(),
    )
        .prop_map(|(pick, q, s, e, r)| match pick {
            0 => q,
            1 => s,
            2 => e,
            3 => r,
            _ => Message::Ping,
        })
}

proptest! {
    #[test]
    fn every_catalog_message_round_trips(msg in arb_message()) {
        let frame = encode_frame(&msg);
        let decoded = decode_frame(&frame);
        prop_assert!(decoded.is_ok());
        let (decoded, consumed) = decoded.unwrap();
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncation_at_any_byte_is_typed_never_a_panic(msg in arb_message(), cut in any::<usize>()) {
        let frame = encode_frame(&msg);
        let cut = cut % frame.len(); // strictly shorter than the full frame
        let truncated = matches!(decode_frame(&frame[..cut]), Err(NetError::Truncated { .. }));
        prop_assert!(truncated);
    }

    #[test]
    fn any_single_bit_flip_is_rejected(msg in arb_message(), at in any::<usize>(), bit in 0u8..8) {
        let mut frame = encode_frame(&msg);
        let at = at % frame.len();
        frame[at] ^= 1 << bit;
        // Depending on where the flip landed this is a CRC mismatch, a
        // truncated or oversized length claim — but never an accepted frame
        // and never a panic.
        prop_assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn oversized_length_claims_are_rejected_before_allocation(extra in 1usize..1_000_000, junk in any::<u32>()) {
        let len = (MAX_FRAME_PAYLOAD + extra) as u32;
        let mut frame = Vec::new();
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&junk.to_le_bytes());
        let oversized = matches!(
            decode_frame(&frame),
            Err(NetError::Oversized { len: claimed }) if claimed == len as usize
        );
        prop_assert!(oversized);
    }

    #[test]
    fn foreign_version_bytes_are_typed(msg in arb_message(), version in any::<u8>()) {
        prop_assume!(version != WIRE_VERSION);
        let mut frame = encode_frame(&msg);
        // Rewrite the payload's version byte and re-seal the CRC so the
        // *only* defect is the version — the check the decoder must make
        // first.
        frame[8] = version;
        let crc = crc32(&frame[8..]).to_le_bytes();
        frame[4..8].copy_from_slice(&crc);
        let wrong_version = matches!(
            decode_frame(&frame),
            Err(NetError::WrongVersion { got }) if got == version
        );
        prop_assert!(wrong_version);
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        if let Ok((_, consumed)) = decode_frame(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }
}
