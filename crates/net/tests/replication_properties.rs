//! Property-based tests for the replication byte streams — the snapshot
//! and WAL-tail payloads a replica installs from an *untrusted* primary.
//!
//! The promise mirrors `protocol_properties.rs` one layer up: whatever
//! bytes arrive claiming to be a snapshot or a tail, installation never
//! panics, never serves a half-built copy, and never regresses an epoch.
//! Truncation at any byte and any single-bit flip must be refused outright
//! (snapshots) or at worst apply a shorter *committed* prefix (tails —
//! the same longest-valid-prefix rule crash recovery uses).

use proptest::prelude::*;
use sae_core::{ReplicaSet, ShardLayout, ShardedSaeEngine};
use sae_crypto::HashAlgorithm;
use sae_workload::{DatasetSpec, KeyDistribution, RangeQuery, Record};
use std::sync::OnceLock;

const DOMAIN: u32 = 40_000;
const RECORD_SIZE: usize = 48;

/// Exported replication byte streams from one small durable deployment,
/// built once: `snap1` at the bootstrap epoch, then five committed inserts,
/// then `snap2` and the WAL tail spanning `epoch1 → epoch2`.
struct Fixture {
    layout: ShardLayout,
    alg: HashAlgorithm,
    snap1: Vec<u8>,
    epoch1: u64,
    snap2: Vec<u8>,
    epoch2: u64,
    tail: Vec<u8>,
    records_at_2: usize,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = tempfile::tempdir().unwrap();
        let dataset = DatasetSpec {
            cardinality: 120,
            distribution: KeyDistribution::Uniform { domain: DOMAIN },
            record_size: RECORD_SIZE,
            seed: 9,
        }
        .generate();
        let engine =
            ShardedSaeEngine::create_dir(dir.path(), &dataset, HashAlgorithm::Sha1, 1, None)
                .unwrap();
        let snap1 = engine.export_shard_snapshot(0).unwrap();
        let epoch1 = engine.shard_epoch(0);
        for i in 0..5u64 {
            let key = (i * 5_003 % DOMAIN as u64) as u32;
            engine
                .insert(&Record::with_size(800_000 + i, key, RECORD_SIZE))
                .unwrap();
        }
        let snap2 = engine.export_shard_snapshot(0).unwrap();
        let epoch2 = engine.shard_epoch(0);
        let tail = engine.export_wal_tail(0, epoch1).unwrap();
        let out = engine.query(&RangeQuery::new(0, DOMAIN)).unwrap();
        let records_at_2 = out.slices.iter().map(|s| s.records.len()).sum();
        Fixture {
            layout: engine.layout().clone(),
            alg: engine.client().algorithm(),
            snap1,
            epoch1,
            snap2,
            epoch2,
            tail,
            records_at_2,
        }
    })
}

fn fresh_set() -> ReplicaSet {
    let f = fixture();
    ReplicaSet::new(f.layout.clone(), f.alg, RECORD_SIZE)
}

proptest! {
    /// The untouched streams always work, from any starting point: snapshot
    /// installs at its stamped epoch and the tail advances snap1 to snap2.
    #[test]
    fn pristine_snapshots_install_and_tails_advance(via_tail in any::<bool>()) {
        let f = fixture();
        let set = fresh_set();
        if via_tail {
            prop_assert_eq!(set.install_snapshot(0, &f.snap1).unwrap(), f.epoch1);
            prop_assert_eq!(set.apply_wal_tail(0, &f.tail).unwrap(), f.epoch2);
        } else {
            prop_assert_eq!(set.install_snapshot(0, &f.snap2).unwrap(), f.epoch2);
        }
        let (slice, epoch) = set
            .replica_slice(0, &RangeQuery::new(0, DOMAIN))
            .unwrap()
            .unwrap();
        prop_assert_eq!(epoch, f.epoch2);
        prop_assert_eq!(slice.records.len(), f.records_at_2);
    }

    /// A snapshot truncated at *any* byte is refused outright and the slot
    /// stays unsynced — a crash mid-transfer can never leave a replica
    /// serving a half-installed copy.
    #[test]
    fn truncation_at_any_byte_never_installs(cut in any::<usize>()) {
        let f = fixture();
        let cut = cut % f.snap2.len(); // strictly shorter than the full snapshot
        let set = fresh_set();
        prop_assert!(set.install_snapshot(0, &f.snap2[..cut]).is_err());
        prop_assert_eq!(set.epoch(0), None);
        prop_assert!(set.replica_slice(0, &RangeQuery::new(0, DOMAIN)).unwrap().is_none());
    }

    /// Any single-bit flip anywhere in a snapshot — header or WAL body — is
    /// caught by the magic/identity checks or the frame CRCs.
    #[test]
    fn any_single_bit_flip_is_rejected(at in any::<usize>(), bit in 0u8..8) {
        let f = fixture();
        let mut bytes = f.snap2.clone();
        let at = at % bytes.len();
        bytes[at] ^= 1 << bit;
        let set = fresh_set();
        prop_assert!(set.install_snapshot(0, &bytes).is_err());
        prop_assert_eq!(set.epoch(0), None);
    }

    /// Damaged tails never panic and never over-advance: truncation or a
    /// bit flip can at worst shorten the stream to a valid committed prefix
    /// (exactly the crash-recovery rule), so a successful apply lands
    /// between the installed epoch and the primary's.
    #[test]
    fn damaged_tails_apply_at_most_a_committed_prefix(
        cut in any::<usize>(),
        flip in any::<usize>(),
        bit in 0u8..8,
        mode in any::<bool>(),
    ) {
        let f = fixture();
        let set = fresh_set();
        set.install_snapshot(0, &f.snap1).unwrap();
        let mut bytes = f.tail.clone();
        if mode {
            bytes.truncate(cut % bytes.len());
        } else {
            let at = flip % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        match set.apply_wal_tail(0, &bytes) {
            Ok(epoch) => {
                prop_assert!(epoch >= f.epoch1 && epoch <= f.epoch2, "epoch {epoch}");
                prop_assert_eq!(set.epoch(0), Some(epoch));
            }
            Err(_) => {
                // Refused during validation (state untouched) or failed
                // mid-apply (slot left unsynced) — either way the replica
                // never serves bytes it cannot vouch for, and a snapshot
                // re-seeds it.
                let epoch = set.epoch(0);
                prop_assert!(epoch == Some(f.epoch1) || epoch.is_none(), "{epoch:?}");
                set.install_snapshot(0, &f.snap2).unwrap();
                prop_assert_eq!(set.epoch(0), Some(f.epoch2));
            }
        }
    }

    /// Epoch regressions are refused no matter how the stale state arrives:
    /// an older snapshot over a newer one, installed directly or reached
    /// via the tail.
    #[test]
    fn epoch_regressions_are_refused(via_tail in any::<bool>()) {
        let f = fixture();
        let set = fresh_set();
        if via_tail {
            set.install_snapshot(0, &f.snap1).unwrap();
            set.apply_wal_tail(0, &f.tail).unwrap();
        } else {
            set.install_snapshot(0, &f.snap2).unwrap();
        }
        let err = set.install_snapshot(0, &f.snap1).unwrap_err();
        prop_assert!(err.to_string().contains("regresses"), "{}", err);
        prop_assert_eq!(set.epoch(0), Some(f.epoch2));
        // The newest state is still idempotently re-installable.
        prop_assert_eq!(set.install_snapshot(0, &f.snap2).unwrap(), f.epoch2);
    }
}
