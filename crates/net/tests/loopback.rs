//! End-to-end loopback deployments: real TCP servers, a real scatter-gather
//! client, and the security argument carried onto the wire — a byzantine or
//! missing endpoint is *detected* with the same typed verdicts as in-process
//! tampering, never trusted.

use sae_core::{ShardedSaeEngine, ShardedVerifyError};
use sae_crypto::HashAlgorithm;
use sae_net::{
    encode_frame, read_frame, write_frame, Message, NetError, ServerTamper, ShardServer,
    ShardServerConfig, WIRE_VERSION,
};
use sae_storage::wal::crc32;
use sae_workload::{DatasetSpec, KeyDistribution, RangeQuery};
use std::net::TcpStream;
use std::sync::Arc;

const DOMAIN: u32 = 100_000;
const CARDINALITY: usize = 400;

/// Stats counters are bumped by worker threads *after* the response is
/// written, so a client that just read a response may observe the increment
/// a beat later — poll briefly instead of asserting instantly.
fn await_stats(
    server: &ShardServer,
    ready: impl Fn(&sae_net::NetStatsSnapshot) -> bool,
) -> sae_net::NetStatsSnapshot {
    for _ in 0..500 {
        let stats = server.stats();
        if ready(&stats) {
            return stats;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    server.stats()
}

fn engine(shards: usize) -> Arc<ShardedSaeEngine> {
    let dataset = DatasetSpec {
        cardinality: CARDINALITY,
        distribution: KeyDistribution::Uniform { domain: DOMAIN },
        record_size: 64,
        seed: 42,
    }
    .generate();
    Arc::new(ShardedSaeEngine::build_in_memory(&dataset, HashAlgorithm::Sha1, shards).unwrap())
}

/// One server per shard on ephemeral loopback ports, plus a client wired to
/// them.
fn deploy(shards: usize) -> (Arc<ShardedSaeEngine>, Vec<ShardServer>, sae_net::NetClient) {
    let engine = engine(shards);
    let servers: Vec<ShardServer> = (0..shards)
        .map(|shard| {
            ShardServer::spawn(
                Arc::clone(&engine),
                vec![shard],
                "127.0.0.1:0",
                ShardServerConfig::default(),
            )
            .unwrap()
        })
        .collect();
    let endpoints = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let client = sae_net::NetClient::for_engine(&engine, endpoints).unwrap();
    (engine, servers, client)
}

#[test]
fn layouts_one_through_four_verify_and_match_in_process_results() {
    for shards in 1..=4 {
        let (engine, servers, mut client) = deploy(shards);
        let queries = [
            RangeQuery::new(0, DOMAIN), // full domain, every shard answers
            RangeQuery::new(DOMAIN / 4, DOMAIN / 2), // partial overlap
            RangeQuery::new(17, 17),    // point query, likely empty
        ];
        for q in &queries {
            let net = client.query(q);
            assert!(
                net.verdict.is_ok(),
                "{shards} shards, {q:?}: {:?}",
                net.verdict
            );
            assert!(net.endpoint_errors.is_empty());
            let local = engine.query(q).unwrap();
            assert!(local.verdict.is_ok());
            let local_records: usize = local.slices.iter().map(|s| s.records.len()).sum();
            assert_eq!(net.record_count(), local_records, "{shards} shards, {q:?}");
        }
        for server in servers {
            server.shutdown();
        }
    }
}

#[test]
fn every_tamper_mode_is_caught_and_recovery_is_clean() {
    let (_engine, servers, mut client) = deploy(3);
    let full = RangeQuery::new(0, DOMAIN);
    for tamper in [
        ServerTamper::FlipRecordByte,
        ServerTamper::DropFirstRecord,
        ServerTamper::FlipTokenBit,
    ] {
        servers[0].set_tamper(Some(tamper));
        let outcome = client.query(&full);
        assert!(
            matches!(
                outcome.verdict,
                Err(ShardedVerifyError::Slice { shard: 0, .. })
            ),
            "{tamper:?} escaped detection: {:?}",
            outcome.verdict
        );
        servers[0].set_tamper(None);
    }
    // Once the server behaves again the same client verifies cleanly.
    assert!(client.query(&full).verdict.is_ok());
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn a_dropped_endpoint_is_a_typed_missing_slice_not_a_partial_answer() {
    let (_engine, mut servers, mut client) = deploy(3);
    let full = RangeQuery::new(0, DOMAIN);
    assert!(client.query(&full).verdict.is_ok());

    // Kill shard 1's endpoint. The other two shards still answer — and the
    // verdict must refuse the partial result with the exact typed error the
    // in-process engine would produce for a withheld slice.
    servers.remove(1).shutdown();
    let outcome = client.query(&full);
    assert!(matches!(
        outcome.verdict,
        Err(ShardedVerifyError::MissingShardSlice { shard: 1 })
    ));
    assert_eq!(outcome.slices.len(), 2);
    assert!(outcome.endpoint_errors.iter().any(|(shard, _)| *shard == 1));
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn wrong_version_gets_a_typed_error_and_the_connection_survives() {
    let (_engine, servers, _client) = deploy(1);
    let mut stream = TcpStream::connect(servers[0].local_addr()).unwrap();

    // A well-framed request whose payload claims wire version 2: rewrite the
    // version byte and re-seal the CRC so the framing itself is valid.
    let mut frame = encode_frame(&Message::Ping);
    frame[8] = 2;
    let crc = crc32(&frame[8..]).to_le_bytes();
    frame[4..8].copy_from_slice(&crc);
    use std::io::Write;
    stream.write_all(&frame).unwrap();
    let (response, _) = read_frame(&mut stream).unwrap();
    match response {
        Message::Error {
            code,
            version,
            detail: _,
        } => {
            assert_eq!(code, sae_net::frame::code::UNSUPPORTED_VERSION);
            assert_eq!(
                version, WIRE_VERSION,
                "the error must carry the server's version"
            );
        }
        other => panic!("expected an error response, got {other:?}"),
    }

    // The CRC was valid, so the stream is still in sync: a correct ping on
    // the same connection must work.
    write_frame(&mut stream, &Message::Ping).unwrap();
    let (response, _) = read_frame(&mut stream).unwrap();
    assert_eq!(response, Message::Pong);
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn corrupt_framing_closes_the_connection() {
    let (_engine, servers, _client) = deploy(1);
    let mut stream = TcpStream::connect(servers[0].local_addr()).unwrap();

    // A frame whose CRC does not match its payload: the server can no longer
    // trust the stream to be in sync and must hang up.
    let mut frame = encode_frame(&Message::Ping);
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;
    use std::io::Write;
    stream.write_all(&frame).unwrap();
    match read_frame(&mut stream) {
        Err(NetError::Disconnected) | Err(NetError::Io(_)) => {}
        other => panic!("expected the server to hang up, got {other:?}"),
    }
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn asking_for_an_unserved_shard_is_refused_with_a_typed_code() {
    let (_engine, servers, _client) = deploy(2);
    // servers[0] serves only shard 0; ask it for shard 1.
    let mut stream = TcpStream::connect(servers[0].local_addr()).unwrap();
    write_frame(
        &mut stream,
        &Message::Query {
            shard: 1,
            range: RangeQuery::new(0, DOMAIN),
        },
    )
    .unwrap();
    let (response, _) = read_frame(&mut stream).unwrap();
    match response {
        Message::Error { code, .. } => {
            assert_eq!(code, sae_net::frame::code::SHARD_NOT_SERVED);
        }
        other => panic!("expected an error response, got {other:?}"),
    }
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn shutdown_joins_workers_and_frees_the_port() {
    let (_engine, mut servers, mut client) = deploy(1);
    let addr = servers[0].local_addr();
    // Leave a live, idle connection open so shutdown has a worker to wake.
    client.ping(0).unwrap();
    let stats_before = await_stats(&servers[0], |s| {
        s.connections >= 1 && s.frames_in >= 1 && s.frames_out >= 1
    });
    assert!(stats_before.connections >= 1, "{stats_before:?}");
    assert!(stats_before.frames_in >= 1, "{stats_before:?}");
    assert!(stats_before.frames_out >= 1, "{stats_before:?}");

    servers.remove(0).shutdown();
    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err());
    // And the client observes the death as a typed failure, not a hang.
    assert!(client.ping(0).is_err());
}

#[test]
fn a_pooled_connection_survives_a_server_restart_on_the_same_port() {
    let (engine, servers, mut client) = deploy(1);
    let full = RangeQuery::new(0, DOMAIN);
    // Pool the connection, then restart the server on the same port
    // mid-session: the pooled socket is now a dead one.
    assert!(client.query(&full).verdict.is_ok());
    let addr = servers[0].local_addr();
    for server in servers {
        server.shutdown();
    }
    let revived = ShardServer::spawn(
        Arc::clone(&engine),
        vec![0],
        addr,
        ShardServerConfig::default(),
    )
    .unwrap();
    // The one-retry redial absorbs the restart: same endpoint answers, no
    // failover leg is charged and nothing gets demoted.
    let outcome = client.query(&full);
    assert!(outcome.verdict.is_ok(), "{:?}", outcome.verdict);
    assert_eq!(outcome.failovers, 0, "{:?}", outcome.endpoint_errors);
    assert!(client.demoted().is_empty());
    revived.shutdown();
}

#[test]
fn probe_health_re_admits_a_restarted_replica() {
    let (engine, mut servers, mut client) = deploy(2);
    let full = RangeQuery::new(0, DOMAIN);
    assert!(client.query(&full).verdict.is_ok());

    // Kill shard 1's only replica: the query demotes the endpoint and the
    // verdict reports the withheld slice.
    let dead = servers.remove(1);
    let addr = dead.local_addr();
    dead.shutdown();
    let outcome = client.query(&full);
    assert!(matches!(
        outcome.verdict,
        Err(ShardedVerifyError::MissingShardSlice { shard: 1 })
    ));
    assert_eq!(client.demoted().len(), 1);

    // While it is down a probe keeps it demoted...
    let report = client.probe_health();
    assert_eq!(report.revived, 0);
    assert_eq!(report.still_down, 1);

    // ...and once it restarts on the same port, the next probe re-admits it
    // without any manual intervention.
    let revived = ShardServer::spawn(
        Arc::clone(&engine),
        vec![1],
        addr,
        ShardServerConfig::default(),
    )
    .unwrap();
    let report = client.probe_health();
    assert_eq!(report.revived, 1, "{report:?}");
    assert!(client.demoted().is_empty());
    assert!(client.query(&full).verdict.is_ok());
    revived.shutdown();
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn stats_count_queries_and_traffic() {
    let (_engine, servers, mut client) = deploy(2);
    for _ in 0..3 {
        assert!(client.query(&RangeQuery::new(0, DOMAIN)).verdict.is_ok());
    }
    for server in &servers {
        let stats = await_stats(server, |s| s.queries >= 3 && s.frames_out >= s.queries);
        assert!(stats.queries >= 3, "{stats:?}");
        assert!(stats.frames_out >= stats.queries);
        assert!(
            stats.bytes_out > stats.bytes_in,
            "slices dwarf requests: {stats:?}"
        );
        assert_eq!(stats.errors_sent, 0);
        assert_eq!(stats.decode_errors, 0);
    }
    for server in servers {
        server.shutdown();
    }
}
