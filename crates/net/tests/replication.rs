//! End-to-end replica deployments over real TCP: snapshot bootstrap,
//! WAL-tail catch-up, NOT_SYNCED refusals, and the client's failover
//! routing around byzantine and stale replicas — all without ever trusting
//! a server. Every slice, wherever it came from, faces the same
//! [`sae_core::verify_slices`] the in-process engine runs.

use sae_core::{ReplicaSet, ShardedSaeEngine};
use sae_crypto::HashAlgorithm;
use sae_net::{
    read_frame, write_frame, Message, NetClient, NetClientConfig, ReplicaServer,
    ReplicaServerConfig, ServerTamper, ShardServer, ShardServerConfig, SliceSource, Topology,
};
use sae_workload::{DatasetSpec, KeyDistribution, RangeQuery, Record};
use std::net::TcpStream;
use std::sync::Arc;

const DOMAIN: u32 = 100_000;
const CARDINALITY: usize = 400;
const RECORD_SIZE: usize = 64;

/// A durable two-shard primary in `dir`, plus its serving endpoint.
fn primary(dir: &std::path::Path, shards: usize) -> (Arc<ShardedSaeEngine>, ShardServer) {
    let dataset = DatasetSpec {
        cardinality: CARDINALITY,
        distribution: KeyDistribution::Uniform { domain: DOMAIN },
        record_size: RECORD_SIZE,
        seed: 42,
    }
    .generate();
    let engine = Arc::new(
        ShardedSaeEngine::create_dir(dir, &dataset, HashAlgorithm::Sha1, shards, None).unwrap(),
    );
    let server = ShardServer::spawn(
        Arc::clone(&engine),
        (0..shards).collect(),
        "127.0.0.1:0",
        ShardServerConfig::default(),
    )
    .unwrap();
    (engine, server)
}

/// Boots one replica of every shard from `primary_addr`.
fn replica(engine: &ShardedSaeEngine, primary_addr: std::net::SocketAddr) -> ReplicaServer {
    ReplicaServer::spawn(
        primary_addr.to_string(),
        engine.layout().clone(),
        engine.client().algorithm(),
        RECORD_SIZE,
        (0..engine.shard_count()).collect(),
        "127.0.0.1:0",
        ReplicaServerConfig::default(),
    )
    .unwrap()
}

/// A client scattering over `groups` (one group per shard), verifying with
/// the engine's published parameters.
fn client_over(engine: &ShardedSaeEngine, groups: Vec<Vec<String>>) -> NetClient {
    NetClient::for_engine_topology(
        engine,
        Topology::replicated(groups).unwrap(),
        NetClientConfig::default(),
    )
    .unwrap()
}

/// Every shard's group is the same endpoint list — the common "replica set
/// serves all shards" shape.
fn uniform_groups(engine: &ShardedSaeEngine, endpoints: &[String]) -> Vec<Vec<String>> {
    (0..engine.shard_count())
        .map(|_| endpoints.to_vec())
        .collect()
}

#[test]
fn replicas_bootstrap_from_snapshots_and_serve_verified_slices() {
    let dir = tempfile::tempdir().unwrap();
    let (engine, server) = primary(dir.path(), 2);
    let r1 = replica(&engine, server.local_addr());
    let r2 = replica(&engine, server.local_addr());
    for shard in 0..engine.shard_count() {
        assert_eq!(r1.epoch(shard), Some(engine.shard_epoch(shard)));
        assert_eq!(r2.epoch(shard), Some(engine.shard_epoch(shard)));
    }

    // A client that never talks to the primary: replicas alone answer, and
    // the result verifies against the owner-published token.
    let endpoints = vec![r1.local_addr().to_string(), r2.local_addr().to_string()];
    let mut client = client_over(&engine, uniform_groups(&engine, &endpoints));
    for q in [
        RangeQuery::new(0, DOMAIN),
        RangeQuery::new(DOMAIN / 4, DOMAIN / 2),
        RangeQuery::new(17, 17),
    ] {
        let net = client.query(&q);
        assert!(net.verdict.is_ok(), "{q:?}: {:?}", net.verdict);
        let local = engine.query(&q).unwrap();
        let local_records: usize = local.slices.iter().map(|s| s.records.len()).sum();
        assert_eq!(net.record_count(), local_records, "{q:?}");
    }
    r1.shutdown();
    r2.shutdown();
    server.shutdown();
}

#[test]
fn replicas_catch_up_with_wal_tails() {
    let dir = tempfile::tempdir().unwrap();
    let (engine, server) = primary(dir.path(), 2);
    let r1 = replica(&engine, server.local_addr());

    // Commit new records on the primary after the replica bootstrapped: the
    // next sync pass must advance it via the incremental tail path.
    for i in 0..8u64 {
        let key = (i * 9_001 % DOMAIN as u64) as u32;
        engine
            .insert(&Record::with_size(900_000 + i, key, RECORD_SIZE))
            .unwrap();
    }
    r1.sync_now().unwrap();
    for shard in 0..engine.shard_count() {
        assert_eq!(r1.epoch(shard), Some(engine.shard_epoch(shard)), "{shard}");
    }

    let endpoints = vec![r1.local_addr().to_string()];
    let mut client = client_over(&engine, uniform_groups(&engine, &endpoints));
    let net = client.query(&RangeQuery::new(0, DOMAIN));
    assert!(net.verdict.is_ok(), "{:?}", net.verdict);
    assert_eq!(net.record_count(), CARDINALITY + 8);
    r1.shutdown();
    server.shutdown();
}

#[test]
fn a_byzantine_replica_is_routed_around() {
    let dir = tempfile::tempdir().unwrap();
    let (engine, server) = primary(dir.path(), 2);
    let honest = replica(&engine, server.local_addr());
    let byzantine = replica(&engine, server.local_addr());
    byzantine.set_tamper(Some(ServerTamper::FlipRecordByte));

    let endpoints = vec![
        honest.local_addr().to_string(),
        byzantine.local_addr().to_string(),
    ];
    let mut client = client_over(&engine, uniform_groups(&engine, &endpoints));
    let full = RangeQuery::new(0, DOMAIN);
    // The round-robin cursor guarantees the byzantine replica is consulted
    // within a few queries; every verdict must still come back `Ok` because
    // the doctored slice fails verification, demotes its source and the
    // sub-query re-issues to the honest sibling.
    let mut failovers = 0;
    for _ in 0..4 {
        let net = client.query(&full);
        assert!(net.verdict.is_ok(), "{:?}", net.verdict);
        assert_eq!(net.record_count(), CARDINALITY);
        failovers += net.failovers;
    }
    assert!(failovers > 0, "the byzantine replica was never consulted");
    assert_eq!(client.demoted(), vec![byzantine.local_addr().to_string()]);

    // Once it behaves again, a health probe re-admits it.
    byzantine.set_tamper(None);
    let report = client.probe_health();
    assert_eq!(report.revived, 1, "{report:?}");
    assert!(client.demoted().is_empty());
    honest.shutdown();
    byzantine.shutdown();
    server.shutdown();
}

#[test]
fn a_stale_epoch_replica_is_refused_and_routed_around() {
    let dir = tempfile::tempdir().unwrap();
    let (engine, server) = primary(dir.path(), 2);
    let honest = replica(&engine, server.local_addr());
    let stale = replica(&engine, server.local_addr());

    let endpoints = vec![
        honest.local_addr().to_string(),
        stale.local_addr().to_string(),
    ];
    let mut client = client_over(&engine, uniform_groups(&engine, &endpoints));
    let full = RangeQuery::new(0, DOMAIN);
    // First pass with both replicas honest: verified slices raise the
    // per-shard high-water marks above zero.
    assert!(client.query(&full).verdict.is_ok());
    for shard in 0..engine.shard_count() {
        assert!(client.high_water_mark(shard) > 0, "shard {shard}");
    }

    // Now one replica starts advertising epoch 0 — honest content, stale
    // claim. The freshness check refuses it before verification and the
    // sibling answers instead.
    stale.set_tamper(Some(ServerTamper::StaleEpoch));
    let mut stale_refused = 0;
    for _ in 0..4 {
        let net = client.query(&full);
        assert!(net.verdict.is_ok(), "{:?}", net.verdict);
        stale_refused += net.stale_refused;
    }
    assert!(stale_refused > 0, "the stale replica was never consulted");
    assert_eq!(client.demoted(), vec![stale.local_addr().to_string()]);
    honest.shutdown();
    stale.shutdown();
    server.shutdown();
}

#[test]
fn a_half_installed_replica_refuses_to_serve_not_garbage() {
    let dir = tempfile::tempdir().unwrap();
    let (engine, server) = primary(dir.path(), 1);

    // Simulate a crash mid-install: the snapshot transfer stops short and
    // the install is attempted on the truncated bytes. The slot must stay
    // unsynced — never serve a half-built tree.
    let set = Arc::new(ReplicaSet::new(
        engine.layout().clone(),
        engine.client().algorithm(),
        RECORD_SIZE,
    ));
    let snapshot = engine.export_shard_snapshot(0).unwrap();
    assert!(set
        .install_snapshot(0, &snapshot[..snapshot.len() / 2])
        .is_err());
    assert_eq!(set.epoch(0), None);

    let front = ShardServer::spawn_source(
        Arc::<ReplicaSet>::clone(&set),
        vec![0],
        "127.0.0.1:0",
        ShardServerConfig::default(),
    )
    .unwrap();
    // A raw query gets the typed NOT_SYNCED refusal, not an empty slice.
    let mut stream = TcpStream::connect(front.local_addr()).unwrap();
    write_frame(
        &mut stream,
        &Message::Query {
            shard: 0,
            range: RangeQuery::new(0, DOMAIN),
        },
    )
    .unwrap();
    let (response, _) = read_frame(&mut stream).unwrap();
    match response {
        Message::Error { code, .. } => assert_eq!(code, sae_net::frame::code::NOT_SYNCED),
        other => panic!("expected NOT_SYNCED, got {other:?}"),
    }

    // A failover client routes around the unsynced front to the primary.
    let groups = vec![vec![
        front.local_addr().to_string(),
        server.local_addr().to_string(),
    ]];
    let mut client = client_over(&engine, groups);
    let net = client.query(&RangeQuery::new(0, DOMAIN));
    assert!(net.verdict.is_ok(), "{:?}", net.verdict);
    assert_eq!(net.record_count(), CARDINALITY);
    assert!(net.failovers > 0);

    // The full snapshot heals the very same set in place — no restart.
    set.install_snapshot(0, &snapshot).unwrap();
    assert_eq!(set.epoch(0), Some(engine.shard_epoch(0)));
    assert!(set
        .source_slice(0, &RangeQuery::new(0, DOMAIN))
        .unwrap()
        .is_some());
    front.shutdown();
    server.shutdown();
}

#[test]
fn a_replica_of_a_replica_is_refused() {
    let dir = tempfile::tempdir().unwrap();
    let (engine, server) = primary(dir.path(), 1);
    let r1 = replica(&engine, server.local_addr());
    // Chaining replicas would launder the primary's epoch through an
    // unverified hop; the export surface refuses it with a typed error.
    let err = ReplicaServer::spawn(
        r1.local_addr().to_string(),
        engine.layout().clone(),
        engine.client().algorithm(),
        RECORD_SIZE,
        vec![0],
        "127.0.0.1:0",
        ReplicaServerConfig::default(),
    )
    .unwrap_err();
    match err {
        sae_net::NetError::Remote { code, .. } => {
            assert_eq!(code, sae_net::frame::code::REPLICATION_UNSUPPORTED)
        }
        other => panic!("expected the typed REPLICATION_UNSUPPORTED refusal, got {other:?}"),
    }
    r1.shutdown();
    server.shutdown();
}
