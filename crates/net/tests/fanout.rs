//! Concurrent scatter-gather behavior over real TCP: the parallel fan-out
//! beating the sequential baseline under server-side service delay, the
//! true hedged read racing a slow replica against a fast sibling, and
//! byzantine failover under concurrent dispatch — all verified with the
//! same [`sae_core::verify_slices`] as everything else.

use sae_core::ShardedSaeEngine;
use sae_crypto::HashAlgorithm;
use sae_net::{NetClient, NetClientConfig, ServerTamper, ShardServer, ShardServerConfig, Topology};
use sae_workload::{DatasetSpec, KeyDistribution, RangeQuery};
use std::sync::Arc;
use std::time::Duration;

const DOMAIN: u32 = 100_000;
const CARDINALITY: usize = 400;

fn engine(shards: usize) -> Arc<ShardedSaeEngine> {
    let dataset = DatasetSpec {
        cardinality: CARDINALITY,
        distribution: KeyDistribution::Uniform { domain: DOMAIN },
        record_size: 64,
        seed: 42,
    }
    .generate();
    Arc::new(ShardedSaeEngine::build_in_memory(&dataset, HashAlgorithm::Sha1, shards).unwrap())
}

/// One server per shard, each sleeping `delay` per query before answering.
fn deploy_delayed(
    engine: &Arc<ShardedSaeEngine>,
    delay: Duration,
) -> (Vec<ShardServer>, Vec<String>) {
    let servers: Vec<ShardServer> = (0..engine.shard_count())
        .map(|shard| {
            ShardServer::spawn(
                Arc::clone(engine),
                vec![shard],
                "127.0.0.1:0",
                ShardServerConfig {
                    service_delay: delay,
                    ..ShardServerConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let endpoints = servers.iter().map(|s| s.local_addr().to_string()).collect();
    (servers, endpoints)
}

fn client_with(engine: &ShardedSaeEngine, topology: Topology, cfg: NetClientConfig) -> NetClient {
    NetClient::for_engine_topology(engine, topology, cfg).unwrap()
}

#[test]
fn concurrent_fanout_beats_the_sequential_baseline_under_service_delay() {
    let delay = Duration::from_millis(30);
    let engine = engine(4);
    let (servers, endpoints) = deploy_delayed(&engine, delay);
    let full = RangeQuery::new(0, DOMAIN);

    let mut sequential = client_with(
        &engine,
        Topology::single(endpoints.clone()),
        NetClientConfig {
            sequential_fanout: true,
            ..NetClientConfig::default()
        },
    );
    let mut concurrent = client_with(
        &engine,
        Topology::single(endpoints),
        NetClientConfig::default(),
    );

    // Warm both pools so the measured queries compare service time, not
    // connection establishment.
    assert!(sequential.query(&full).verdict.is_ok());
    assert!(concurrent.query(&full).verdict.is_ok());

    let seq = sequential.query(&full);
    let conc = concurrent.query(&full);
    assert!(seq.verdict.is_ok(), "{:?}", seq.verdict);
    assert!(conc.verdict.is_ok(), "{:?}", conc.verdict);
    assert_eq!(seq.record_count(), conc.record_count());
    // Sequential pays ~4 service delays, concurrent pays ~1. The 0.75
    // factor leaves headroom for debug-build and scheduler noise while
    // still proving the fan-out actually overlapped the waits.
    assert!(
        conc.elapsed_ms < seq.elapsed_ms * 0.75,
        "concurrent {:.1} ms vs sequential {:.1} ms",
        conc.elapsed_ms,
        seq.elapsed_ms
    );
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn a_hedged_read_races_a_slow_replica_and_the_loser_connection_survives() {
    let engine = engine(1);
    let fast = ShardServer::spawn(
        Arc::clone(&engine),
        vec![0],
        "127.0.0.1:0",
        ShardServerConfig {
            service_delay: Duration::from_millis(5),
            ..ShardServerConfig::default()
        },
    )
    .unwrap();
    let slow = ShardServer::spawn(
        Arc::clone(&engine),
        vec![0],
        "127.0.0.1:0",
        ShardServerConfig {
            service_delay: Duration::from_millis(150),
            ..ShardServerConfig::default()
        },
    )
    .unwrap();
    let topology = Topology::replicated(vec![vec![
        fast.local_addr().to_string(),
        slow.local_addr().to_string(),
    ]])
    .unwrap();
    let mut client = client_with(
        &engine,
        topology,
        NetClientConfig {
            hedge_timeout: Some(Duration::from_millis(20)),
            ..NetClientConfig::default()
        },
    );
    let full = RangeQuery::new(0, DOMAIN);

    // Query 1 prefers the fast replica (cursor at 0): answers within the
    // hedge window, so no hedge fires.
    let first = client.query(&full);
    assert!(first.verdict.is_ok(), "{:?}", first.verdict);
    assert_eq!(first.hedges, 0, "{first:?}");

    // Query 2 prefers the slow replica (round-robin): the hedge window
    // expires, the fast sibling is raced, and its verified slice wins long
    // before the slow leg completes.
    let second = client.query(&full);
    assert!(second.verdict.is_ok(), "{:?}", second.verdict);
    assert_eq!(second.record_count(), CARDINALITY);
    assert!(second.hedges >= 1, "{second:?}");
    assert_eq!(second.failovers, 0, "{second:?}");
    assert!(
        second.elapsed_ms < 140.0,
        "the hedge should win well before the slow leg: {:.1} ms",
        second.elapsed_ms
    );
    // Slow is not byzantine: losing the race must not demote it.
    assert!(client.demoted().is_empty());

    // Let the abandoned loser drain; its connection must return to the
    // pool unpoisoned — a probe then finds both pooled connections alive,
    // and both replicas keep serving verifying slices.
    std::thread::sleep(Duration::from_millis(300));
    let report = client.probe_health();
    assert_eq!(report.pooled_alive, 2, "{report:?}");
    assert_eq!(report.pooled_dropped, 0, "{report:?}");
    for _ in 0..2 {
        assert!(client.query(&full).verdict.is_ok());
    }
    fast.shutdown();
    slow.shutdown();
}

#[test]
fn byzantine_failover_holds_under_concurrent_dispatch() {
    let engine = engine(2);
    let spawn_pair = |tamper: Option<ServerTamper>| {
        let server = ShardServer::spawn(
            Arc::clone(&engine),
            vec![0, 1],
            "127.0.0.1:0",
            ShardServerConfig::default(),
        )
        .unwrap();
        server.set_tamper(tamper);
        server
    };
    let honest = spawn_pair(None);
    let byzantine = spawn_pair(Some(ServerTamper::FlipRecordByte));
    let groups: Vec<Vec<String>> = (0..2)
        .map(|_| {
            vec![
                honest.local_addr().to_string(),
                byzantine.local_addr().to_string(),
            ]
        })
        .collect();
    let mut client = client_with(
        &engine,
        Topology::replicated(groups).unwrap(),
        NetClientConfig::default(),
    );
    let full = RangeQuery::new(0, DOMAIN);

    // Both shards fetch concurrently; whenever the doctored endpoint is
    // consulted its slice fails verification, the source is demoted, and
    // the refetch wave re-issues to the honest sibling — the verdict stays
    // `Ok` on every query.
    let mut failovers = 0;
    for _ in 0..4 {
        let outcome = client.query(&full);
        assert!(outcome.verdict.is_ok(), "{:?}", outcome.verdict);
        assert_eq!(outcome.record_count(), CARDINALITY);
        failovers += outcome.failovers;
    }
    assert!(failovers > 0, "the byzantine endpoint was never consulted");
    assert_eq!(client.demoted(), vec![byzantine.local_addr().to_string()]);
    honest.shutdown();
    byzantine.shutdown();
}
