//! The rule engine: six checks over the token streams produced by
//! [`crate::scan`], driven by the declared invariants in [`crate::config`].
//!
//! | id | rule |
//! |----|------|
//! | `lock-order`        | R1: acquisitions respect the declared lock order |
//! | `hold-across-sync`  | R2: no sync/fsync/manifest-save under a tree guard |
//! | `panic-free-commit` | R3: no unwrap/expect/panic!/indexing on commit paths |
//! | `no-unwrap-in-lib`  | R4: no `.unwrap()`/`.expect(` in library code |
//! | `typed-errors`      | R5: public APIs return typed errors |
//! | `unsafe-audit`      | R6: every `unsafe` carries a `// SAFETY:` comment |
//!
//! R1/R2 use a per-function guard-region model: a `let g = field.read();`
//! opens a region closed by `drop(g)`, by scope exit, or by moving `g` into a
//! call; expression temporaries are checked at the acquisition point only.
//! Both rules are interprocedural within a crate through call summaries
//! (may-acquire / may-sync), propagated only through calls whose simple name
//! resolves to exactly one function in the crate — ambiguous names are
//! skipped rather than guessed.

use crate::config::Config;
use crate::scan::{matching, Function, SourceFile, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_HOLD_ACROSS_SYNC: &str = "hold-across-sync";
pub const RULE_PANIC_FREE_COMMIT: &str = "panic-free-commit";
pub const RULE_NO_UNWRAP: &str = "no-unwrap-in-lib";
pub const RULE_TYPED_ERRORS: &str = "typed-errors";
pub const RULE_UNSAFE_AUDIT: &str = "unsafe-audit";

pub const ALL_RULES: [&str; 6] = [
    RULE_LOCK_ORDER,
    RULE_HOLD_ACROSS_SYNC,
    RULE_PANIC_FREE_COMMIT,
    RULE_NO_UNWRAP,
    RULE_TYPED_ERRORS,
    RULE_UNSAFE_AUDIT,
];

/// One rule violation, prior to waiver matching.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// Runs every rule over the scanned files.
pub fn check_all(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let summaries = Summaries::build(files, cfg);
    let mut out = Vec::new();
    for (fi, sf) in files.iter().enumerate() {
        for f in &sf.functions {
            if f.is_test || f.body.is_none() {
                continue;
            }
            analyze_regions(sf, f, cfg, &summaries, &mut out);
        }
        check_no_unwrap(sf, cfg, &mut out);
        check_typed_errors(sf, cfg, &mut out);
        check_unsafe_audit(sf, &mut out);
        let _ = fi;
    }
    check_commit_paths(files, cfg, &summaries, &mut out);
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    out
}

// ---------------------------------------------------------------------------
// Call summaries (may-acquire / may-sync), fixpoint per crate.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct FnSummary {
    acquires: BTreeSet<String>,
    syncs: bool,
    calls: BTreeSet<String>,
}

struct Summaries {
    /// crate_key -> simple name -> indices into `fns` (ambiguity preserved).
    by_name: BTreeMap<String, BTreeMap<String, Vec<usize>>>,
    /// Flat list of (crate_key, file index, fn index, fixpoint summary).
    fns: Vec<(String, usize, usize, FnSummary)>,
}

impl Summaries {
    fn build(files: &[SourceFile], cfg: &Config) -> Summaries {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, BTreeMap<String, Vec<usize>>> = BTreeMap::new();
        for (fi, sf) in files.iter().enumerate() {
            for (gi, f) in sf.functions.iter().enumerate() {
                if f.is_test || f.body.is_none() {
                    continue;
                }
                let summary = direct_summary(sf, f, cfg);
                let id = fns.len();
                by_name
                    .entry(sf.crate_key.clone())
                    .or_default()
                    .entry(f.name.clone())
                    .or_default()
                    .push(id);
                fns.push((sf.crate_key.clone(), fi, gi, summary));
            }
        }
        // Fixpoint: propagate through unambiguous same-crate calls.
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..fns.len() {
                let (crate_key, _, _, _) = &fns[id];
                let crate_key = crate_key.clone();
                let calls: Vec<String> = fns[id].3.calls.iter().cloned().collect();
                for call in calls {
                    let Some(targets) = by_name.get(&crate_key).and_then(|m| m.get(&call)) else {
                        continue;
                    };
                    if targets.len() != 1 || targets[0] == id {
                        continue;
                    }
                    let (acq, syncs): (Vec<String>, bool) = {
                        let t = &fns[targets[0]].3;
                        (t.acquires.iter().cloned().collect(), t.syncs)
                    };
                    let me = &mut fns[id].3;
                    for a in acq {
                        changed |= me.acquires.insert(a);
                    }
                    if syncs && !me.syncs {
                        me.syncs = true;
                        changed = true;
                    }
                }
            }
        }
        Summaries { by_name, fns }
    }

    /// The fixpoint summary for `name` if it resolves to exactly one
    /// function in `crate_key`.
    fn resolve_unique(&self, crate_key: &str, name: &str) -> Option<&FnSummary> {
        let targets = self.by_name.get(crate_key)?.get(name)?;
        if targets.len() == 1 {
            Some(&self.fns[targets[0]].3)
        } else {
            None
        }
    }
}

/// An acquisition site found in a token stream.
struct Acq {
    lock: String,
    /// Token index of the closing `)` of the acquisition expression.
    close: usize,
}

/// Detects a guard acquisition at token index `k`:
/// `recv.field.read()` / `.write()` / `.lock()` with zero arguments on a
/// configured lock field, or `helper(&x.field)` for configured helpers.
fn acquisition_at(toks: &[Tok], k: usize, cfg: &Config) -> Option<Acq> {
    let name = toks[k].ident()?;
    if k > 0 && toks[k - 1].is_ident("fn") {
        return None; // a definition, not a call
    }
    if matches!(name, "read" | "write" | "lock")
        && k >= 2
        && toks[k - 1].is_punct(b'.')
        && toks.get(k + 1).is_some_and(|t| t.is_punct(b'('))
        && toks.get(k + 2).is_some_and(|t| t.is_punct(b')'))
    {
        let field = toks[k - 2].ident()?;
        if cfg.rank_of(field).is_some() {
            return Some(Acq {
                lock: field.to_string(),
                close: k + 2,
            });
        }
    }
    if cfg.lock_helpers.iter().any(|h| h == name)
        && toks.get(k + 1).is_some_and(|t| t.is_punct(b'('))
    {
        let close = matching(toks, k + 1, b'(', b')')?;
        // The lock field is the last identifier of the argument expression.
        let field = toks[k + 2..close].iter().rev().find_map(|t| t.ident())?;
        if cfg.rank_of(field).is_some() {
            return Some(Acq {
                lock: field.to_string(),
                close,
            });
        }
    }
    None
}

/// Direct (non-transitive) summary of one function body.
fn direct_summary(sf: &SourceFile, f: &Function, cfg: &Config) -> FnSummary {
    let mut s = FnSummary::default();
    let Some((body_start, body_end)) = f.body else {
        return s;
    };
    let toks = &sf.tokens;
    let mut k = body_start;
    while k <= body_end {
        if let Some(acq) = acquisition_at(toks, k, cfg) {
            s.acquires.insert(acq.lock);
            k += 1;
            continue;
        }
        if let Some(name) = call_name_at(toks, k) {
            if cfg.sync_calls.iter().any(|c| c == name) {
                s.syncs = true;
            }
            s.calls.insert(name.to_string());
        }
        k += 1;
    }
    s
}

/// A call at token `k`: `name(` that is not a definition or macro.
fn call_name_at(toks: &[Tok], k: usize) -> Option<&str> {
    let name = toks[k].ident()?;
    if !toks.get(k + 1).is_some_and(|t| t.is_punct(b'(')) {
        return None;
    }
    if k > 0 && (toks[k - 1].is_ident("fn") || toks[k - 1].is_punct(b'#')) {
        return None;
    }
    if matches!(
        name,
        "if" | "while" | "match" | "for" | "loop" | "return" | "let" | "in" | "move" | "fn"
    ) {
        return None;
    }
    Some(name)
}

// ---------------------------------------------------------------------------
// R1 + R2: guard-region analysis.
// ---------------------------------------------------------------------------

struct Guard {
    lock: String,
    var: Option<String>,
    /// Brace depth at which the guard was bound; released when the walk
    /// leaves that depth. Config-seeded preconditions use depth 0.
    depth: i32,
}

fn analyze_regions(
    sf: &SourceFile,
    f: &Function,
    cfg: &Config,
    summaries: &Summaries,
    out: &mut Vec<Finding>,
) {
    let Some((body_start, body_end)) = f.body else {
        return;
    };
    let toks = &sf.tokens;
    // Config-declared preconditions enter the held-set at depth 0 (never
    // scope-released) but use the lock name as the guard variable, so the
    // body can still release them with `drop(<lock>)` or by moving a
    // same-named local into a call.
    let mut held: Vec<Guard> = cfg
        .holds_for(&f.name)
        .iter()
        .map(|l| Guard {
            lock: l.clone(),
            var: Some(l.clone()),
            depth: 0,
        })
        .collect();
    let mut depth: i32 = 0;
    let mut stmt_start = body_start;
    let mut k = body_start;
    while k <= body_end {
        match toks[k].kind {
            TokKind::Punct(b'{') => {
                depth += 1;
                stmt_start = k + 1;
            }
            TokKind::Punct(b'}') => {
                depth -= 1;
                held.retain(|g| g.depth <= depth);
                stmt_start = k + 1;
            }
            TokKind::Punct(b';') => {
                stmt_start = k + 1;
            }
            _ => {}
        }
        if let Some(acq) = acquisition_at(toks, k, cfg) {
            report_order(&acq.lock, &held, cfg, sf, f, toks[k].line, None, out);
            // Bound guard (`let g = ...;` / `g = ...;`) or a temporary?
            let after = toks.get(acq.close + 1);
            let ends_stmt = after.is_none_or(|t| t.is_punct(b';'));
            if ends_stmt {
                if let Some(var) = binding_var(toks, stmt_start) {
                    held.retain(|g| g.var.as_deref() != Some(var));
                    held.push(Guard {
                        lock: acq.lock,
                        var: Some(var.to_string()),
                        depth,
                    });
                }
            }
            k = acq.close + 1;
            continue;
        }
        // `drop(g)` closes g's region.
        if toks[k].is_ident("drop")
            && toks.get(k + 1).is_some_and(|t| t.is_punct(b'('))
            && toks.get(k + 3).is_some_and(|t| t.is_punct(b')'))
        {
            if let Some(v) = toks.get(k + 2).and_then(|t| t.ident()) {
                held.retain(|g| g.var.as_deref() != Some(v));
                k += 4;
                continue;
            }
        }
        if let Some(name) = call_name_at(toks, k) {
            // Guards moved into the call are released before the call runs
            // (this is what makes the group-commit handoff legal).
            if let Some(close) = matching(toks, k + 1, b'(', b')') {
                for v in bare_ident_args(toks, k + 2, close) {
                    held.retain(|g| g.var.as_deref() != Some(v));
                }
            }
            if cfg.sync_calls.iter().any(|c| c == name) {
                report_sync(name, &held, cfg, sf, f, toks[k].line, None, out);
            }
            if let Some(callee) = summaries.resolve_unique(&sf.crate_key, name) {
                if name != f.name {
                    for lock in &callee.acquires {
                        report_order(lock, &held, cfg, sf, f, toks[k].line, Some(name), out);
                    }
                    if callee.syncs {
                        report_sync(name, &held, cfg, sf, f, toks[k].line, Some(name), out);
                    }
                }
            }
        }
        k += 1;
    }
}

/// `let [mut] name =` or `name =` at the start of the current statement.
fn binding_var(toks: &[Tok], stmt_start: usize) -> Option<&str> {
    let mut i = stmt_start;
    if toks.get(i)?.is_ident("let") {
        i += 1;
        if toks.get(i)?.is_ident("mut") {
            i += 1;
        }
        let name = toks.get(i)?.ident()?;
        if toks.get(i + 1)?.is_punct(b'=') {
            return Some(name);
        }
        return None;
    }
    let name = toks.get(i)?.ident()?;
    if keywordish(name) {
        return None;
    }
    if toks.get(i + 1)?.is_punct(b'=') && !toks.get(i + 2)?.is_punct(b'=') {
        return Some(name);
    }
    None
}

fn keywordish(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "match"
            | "for"
            | "loop"
            | "return"
            | "let"
            | "in"
            | "else"
            | "break"
            | "continue"
            | "move"
            | "mut"
            | "ref"
            | "dyn"
            | "as"
            | "unsafe"
            | "impl"
            | "pub"
            | "fn"
            | "use"
            | "struct"
            | "enum"
            | "static"
            | "const"
            | "type"
            | "crate"
            | "where"
            | "trait"
            | "mod"
    )
}

/// Top-level call arguments that are a single bare identifier (a move).
fn bare_ident_args(toks: &[Tok], start: usize, close: usize) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut arg_start = start;
    let mut i = start;
    while i <= close {
        let at_end = i == close;
        let at_comma = depth == 0 && toks[i].is_punct(b',');
        if at_end || at_comma {
            let arg = &toks[arg_start..i];
            if arg.len() == 1 {
                if let Some(name) = arg[0].ident() {
                    if !keywordish(name) {
                        out.push(name);
                    }
                }
            }
            arg_start = i + 1;
        } else {
            match toks[i].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => depth -= 1,
                _ => {}
            }
        }
        i += 1;
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn report_order(
    lock: &str,
    held: &[Guard],
    cfg: &Config,
    sf: &SourceFile,
    f: &Function,
    line: u32,
    via: Option<&str>,
    out: &mut Vec<Finding>,
) {
    let Some(rank) = cfg.rank_of(lock) else {
        return;
    };
    for g in held {
        let Some(held_rank) = cfg.rank_of(&g.lock) else {
            continue;
        };
        if rank <= held_rank {
            let how = match via {
                Some(callee) => format!("calls `{callee}` which may acquire"),
                None => "acquires".to_string(),
            };
            let what = if rank == held_rank && lock == g.lock {
                format!("re-acquires `{lock}` already held")
            } else {
                format!(
                    "{how} `{lock}` (rank {rank}) while holding `{}` (rank {held_rank})",
                    g.lock
                )
            };
            out.push(Finding {
                rule: RULE_LOCK_ORDER,
                file: sf.rel_path.clone(),
                line,
                message: format!("fn `{}` {what}; declared order forbids this", f.name),
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn report_sync(
    call: &str,
    held: &[Guard],
    cfg: &Config,
    sf: &SourceFile,
    f: &Function,
    line: u32,
    via: Option<&str>,
    out: &mut Vec<Finding>,
) {
    for g in held {
        if cfg.tree_locks.iter().any(|t| t == &g.lock) {
            let how = match via {
                Some(callee) => format!("calls `{callee}`, which may reach a durability barrier"),
                None => format!("calls `{call}` (a durability barrier)"),
            };
            out.push(Finding {
                rule: RULE_HOLD_ACROSS_SYNC,
                file: sf.rel_path.clone(),
                line,
                message: format!(
                    "fn `{}` {how} while holding tree guard `{}`",
                    f.name, g.lock
                ),
            });
            return; // one finding per call site is enough
        }
    }
}

// ---------------------------------------------------------------------------
// R3: panic-free commit paths.
// ---------------------------------------------------------------------------

fn check_commit_paths(
    files: &[SourceFile],
    cfg: &Config,
    summaries: &Summaries,
    out: &mut Vec<Finding>,
) {
    if cfg.commit_roots.is_empty() || cfg.commit_crate.is_empty() {
        return;
    }
    // BFS over simple names within the commit crate; ambiguous names include
    // every candidate (conservative).
    let Some(name_map) = summaries.by_name.get(&cfg.commit_crate) else {
        return;
    };
    let mut queue: Vec<(String, String)> = cfg
        .commit_roots
        .iter()
        .map(|r| (r.clone(), r.clone()))
        .collect();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut reachable: Vec<(usize, String)> = Vec::new(); // (fn id, root)
    while let Some((name, root)) = queue.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        let Some(ids) = name_map.get(&name) else {
            continue;
        };
        for &id in ids {
            reachable.push((id, root.clone()));
            for call in &summaries.fns[id].3.calls {
                if !seen.contains(call) {
                    queue.push((call.clone(), root.clone()));
                }
            }
        }
    }
    for (id, root) in reachable {
        let (_, fi, gi, _) = &summaries.fns[id];
        let sf = &files[*fi];
        let f = &sf.functions[*gi];
        let Some((body_start, body_end)) = f.body else {
            continue;
        };
        let ctx = if f.name == root {
            format!("commit path `{}`", f.name)
        } else {
            format!("`{}` (reachable from commit root `{root}`)", f.name)
        };
        scan_panics(sf, (body_start, body_end), &ctx, out);
    }
}

fn scan_panics(sf: &SourceFile, span: (usize, usize), ctx: &str, out: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    let mut push = |line: u32, what: &str| {
        out.push(Finding {
            rule: RULE_PANIC_FREE_COMMIT,
            file: sf.rel_path.clone(),
            line,
            message: format!("{what} in {ctx}"),
        });
    };
    for k in span.0..=span.1.min(toks.len().saturating_sub(1)) {
        if let Some(site) = unwrap_site(toks, k) {
            push(toks[k].line, site);
            continue;
        }
        if let Some(name) = toks[k].ident() {
            if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                && toks.get(k + 1).is_some_and(|t| t.is_punct(b'!'))
            {
                push(toks[k].line, &format!("`{name}!`"));
                continue;
            }
        }
        if toks[k].is_punct(b'[') && k > span.0 && is_indexable(&toks[k - 1]) {
            push(toks[k].line, "panicking `[...]` indexing");
        }
    }
}

/// `.unwrap()` / `.expect(` at token `k` (exact names: `unwrap_or_else`
/// etc. must not match).
fn unwrap_site(toks: &[Tok], k: usize) -> Option<&'static str> {
    let name = toks[k].ident()?;
    if k == 0 || !toks[k - 1].is_punct(b'.') {
        return None;
    }
    if !toks.get(k + 1).is_some_and(|t| t.is_punct(b'(')) {
        return None;
    }
    match name {
        "unwrap" if toks.get(k + 2).is_some_and(|t| t.is_punct(b')')) => Some("`.unwrap()`"),
        "expect" => Some("`.expect(...)`"),
        _ => None,
    }
}

/// Whether a `[` following this token is an indexing expression rather than a
/// type, attribute, or array literal.
fn is_indexable(prev: &Tok) -> bool {
    match &prev.kind {
        TokKind::Ident(name) => !keywordish(name),
        TokKind::Num => false, // `[0u8; 4]` style literals don't index
        TokKind::Punct(b')') | TokKind::Punct(b']') => true,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// R4: no `.unwrap()` / `.expect(` in library code.
// ---------------------------------------------------------------------------

fn check_no_unwrap(sf: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg
        .no_unwrap_exclude
        .iter()
        .any(|p| sf.rel_path.starts_with(p.as_str()))
    {
        return;
    }
    let toks = &sf.tokens;
    for k in 0..toks.len() {
        if sf.is_exempt(k) {
            continue;
        }
        if let Some(site) = unwrap_site(toks, k) {
            out.push(Finding {
                rule: RULE_NO_UNWRAP,
                file: sf.rel_path.clone(),
                line: toks[k].line,
                message: format!(
                    "{site} in library code; return a typed error or waive with a reason"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R5: typed-error discipline on public APIs.
// ---------------------------------------------------------------------------

fn check_typed_errors(sf: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    let applies = cfg
        .typed_error_crates
        .iter()
        .any(|c| c == "." || sf.rel_path.starts_with(c.as_str()));
    if !applies {
        return;
    }
    let toks = &sf.tokens;
    for f in &sf.functions {
        if !f.is_pub || f.is_test {
            continue;
        }
        let Some(ret) = return_type_span(toks, f) else {
            continue;
        };
        let slice = &toks[ret.0..ret.1];
        if let Some(bad) = stringly_error(slice) {
            out.push(Finding {
                rule: RULE_TYPED_ERRORS,
                file: sf.rel_path.clone(),
                line: f.line,
                message: format!(
                    "pub fn `{}` returns {bad}; public APIs must use a typed error enum",
                    f.name
                ),
            });
        }
    }
}

/// Token span of the return type: after `->`, up to the body `{` or `;`.
fn return_type_span(toks: &[Tok], f: &Function) -> Option<(usize, usize)> {
    let sig_end = f.body.map(|(s, _)| s).unwrap_or_else(|| {
        // Bodyless: scan to `;`
        let mut j = f.fn_tok;
        while j < toks.len() && !toks[j].is_punct(b';') {
            j += 1;
        }
        j
    });
    let mut k = f.fn_tok;
    let mut depth = 0i32;
    while k + 1 < sig_end {
        match toks[k].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
            TokKind::Punct(b'-') if depth == 0 && toks[k + 1].is_punct(b'>') => {
                return Some((k + 2, sig_end));
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Detects `Box<dyn ... Error ...>` anywhere, or `Result<_, String>` /
/// `Result<_, &str>` in the error position.
fn stringly_error(slice: &[Tok]) -> Option<String> {
    // `dyn ... Error` where the erased type itself is an error type
    // (a `Box<dyn QueryService>` next to a typed error must not match).
    for (i, t) in slice.iter().enumerate() {
        if !t.is_ident("dyn") {
            continue;
        }
        for u in &slice[i + 1..] {
            if u.is_punct(b'>') || u.is_punct(b',') {
                break;
            }
            if u.ident().is_some_and(|n| n.contains("Error")) {
                return Some("`Box<dyn Error>`".to_string());
            }
        }
    }
    // Find `Result <` and split its top-level arguments on `,`.
    let mut i = 0;
    while i + 1 < slice.len() {
        if slice[i].is_ident("Result") && slice[i + 1].is_punct(b'<') {
            let mut depth = 0i32;
            let mut last_comma = None;
            let mut j = i + 1;
            let mut end = slice.len();
            while j < slice.len() {
                match slice[j].kind {
                    TokKind::Punct(b'<') => depth += 1,
                    TokKind::Punct(b'>') => {
                        // Ignore `->` arrows inside e.g. `impl Fn() -> u8`.
                        if j > 0 && slice[j - 1].is_punct(b'-') {
                            j += 1;
                            continue;
                        }
                        depth -= 1;
                        if depth == 0 {
                            end = j;
                            break;
                        }
                    }
                    TokKind::Punct(b',') if depth == 1 => last_comma = Some(j),
                    _ => {}
                }
                j += 1;
            }
            if let Some(c) = last_comma {
                let err_ty = &slice[c + 1..end];
                let idents: Vec<&str> = err_ty.iter().filter_map(|t| t.ident()).collect();
                if idents == ["String"] {
                    return Some("`Result<_, String>`".to_string());
                }
                if idents == ["str"] {
                    return Some("`Result<_, &str>`".to_string());
                }
            }
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// R6: unsafe-audit.
// ---------------------------------------------------------------------------

fn check_unsafe_audit(sf: &SourceFile, out: &mut Vec<Finding>) {
    let lines: Vec<&str> = sf.raw.lines().collect();
    for (k, t) in sf.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") || sf.is_exempt(k) {
            continue;
        }
        let line = t.line as usize; // 1-based
        let lo = line.saturating_sub(4); // up to 3 lines above, 0-based index
        let documented = lines[lo..line.min(lines.len())]
            .iter()
            .any(|l| l.contains("SAFETY:"));
        if !documented {
            out.push(Finding {
                rule: RULE_UNSAFE_AUDIT,
                file: sf.rel_path.clone(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment on or above it".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn test_cfg() -> Config {
        Config {
            lock_order: vec!["alpha".into(), "beta".into(), "gamma".into()],
            lock_helpers: vec!["lock_helper".into()],
            tree_locks: vec!["alpha".into()],
            sync_calls: vec!["sync".into(), "save".into()],
            commit_crate: ".".into(),
            commit_roots: vec!["commit_main".into()],
            typed_error_crates: vec![".".into()],
            ..Config::default()
        }
    }

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse("src/lib.rs", src.to_string());
        check_all(&[sf], &test_cfg())
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        findings(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn lock_order_violation_and_clean() {
        let bad = "fn f(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }";
        assert_eq!(rules_of(bad), [RULE_LOCK_ORDER]);
        let good = "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }";
        assert!(rules_of(good).is_empty());
    }

    #[test]
    fn drop_and_move_close_regions() {
        let dropped =
            "fn f(&self) { let b = self.beta.lock(); drop(b); let a = self.alpha.lock(); }";
        assert!(rules_of(dropped).is_empty());
        let moved = "fn f(&self) { let a = self.alpha.read(); hand_off(a); self.file_store.sync(); } fn hand_off(_a: G) {}";
        assert!(rules_of(moved).is_empty());
    }

    #[test]
    fn scope_exit_closes_regions() {
        let src = "fn f(&self) { { let b = self.beta.lock(); } let a = self.alpha.lock(); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn temporaries_are_checked_but_not_held() {
        let bad = "fn f(&self) { let b = self.beta.lock(); self.alpha.lock().touch(); }";
        assert_eq!(rules_of(bad), [RULE_LOCK_ORDER]);
        let good = "fn f(&self) { self.beta.lock().touch(); let a = self.alpha.lock(); }";
        assert!(rules_of(good).is_empty());
    }

    #[test]
    fn helper_acquisitions_are_seen() {
        let bad = "fn f(&self) { let g = lock_helper(&self.gamma); let a = self.alpha.lock(); }";
        assert_eq!(rules_of(bad), [RULE_LOCK_ORDER]);
    }

    #[test]
    fn interprocedural_acquire_via_unique_callee() {
        let bad = "fn outer(&self) { let b = self.beta.lock(); self.inner(); }\n\
                   fn inner(&self) { let a = self.alpha.lock(); }";
        assert_eq!(rules_of(bad), [RULE_LOCK_ORDER]);
    }

    #[test]
    fn hold_across_sync_direct_and_transitive() {
        let bad = "fn f(&self) { let a = self.alpha.read(); self.file_store.sync(); }";
        assert_eq!(rules_of(bad), [RULE_HOLD_ACROSS_SYNC]);
        let transitive = "fn f(&self) { let a = self.alpha.read(); self.persist(); }\n\
                          fn persist(&self) { self.file_store.sync(); }";
        assert_eq!(rules_of(transitive), [RULE_HOLD_ACROSS_SYNC]);
        let good = "fn f(&self) { let a = self.alpha.read(); drop(a); self.file_store.sync(); }";
        assert!(rules_of(good).is_empty());
    }

    #[test]
    fn zero_arg_discriminator_ignores_io_writes() {
        // `pager.write(page, data)` is storage I/O, not a lock acquisition.
        let src = "fn f(&self) { self.beta.write(page, data); let a = self.alpha.lock(); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn commit_paths_reject_panics_transitively() {
        let bad = "fn commit_main(&self) { self.step(); }\n\
                   fn step(&self) { let x = self.items[0]; }";
        assert_eq!(rules_of(bad), [RULE_PANIC_FREE_COMMIT]);
        let macro_bad = "fn commit_main(&self) { panic!(); }";
        assert_eq!(rules_of(macro_bad), [RULE_PANIC_FREE_COMMIT]);
    }

    #[test]
    fn no_unwrap_flags_lib_but_not_tests_or_unwrap_or_else() {
        let bad = "fn f() { thing().unwrap(); }";
        assert_eq!(rules_of(bad), [RULE_NO_UNWRAP]);
        let test_ok = "#[cfg(test)]\nmod tests { fn f() { thing().unwrap(); } }";
        assert!(rules_of(test_ok).is_empty());
        let or_else = "fn f() { thing().unwrap_or_else(|e| e.into_inner()); }";
        assert!(rules_of(or_else).is_empty());
        let expect_bad = "fn f() { thing().expect(\"boom\"); }";
        assert_eq!(rules_of(expect_bad), [RULE_NO_UNWRAP]);
    }

    #[test]
    fn typed_errors_flags_stringly_public_apis() {
        let bad = "pub fn api() -> Result<u8, String> { Ok(0) }";
        assert_eq!(rules_of(bad), [RULE_TYPED_ERRORS]);
        let boxed = "pub fn api() -> Result<u8, Box<dyn std::error::Error>> { Ok(0) }";
        assert_eq!(rules_of(boxed), [RULE_TYPED_ERRORS]);
        let good = "pub fn api() -> Result<u8, MyError> { Ok(0) }";
        assert!(rules_of(good).is_empty());
        let private = "fn api() -> Result<u8, String> { Ok(0) }";
        assert!(rules_of(private).is_empty());
    }

    #[test]
    fn unsafe_audit_requires_safety_comment() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        assert_eq!(rules_of(bad), [RULE_UNSAFE_AUDIT]);
        let good = "fn f() {\n    // SAFETY: provably unreachable per the check above\n    unsafe { core::hint::unreachable_unchecked() }\n}";
        assert!(rules_of(good).is_empty());
    }
}
