//! `sae-analyzer` CLI.
//!
//! ```text
//! sae-analyzer check [--config <path>] [--root <path>] [--json <path>] [--quiet]
//! ```
//!
//! Exit codes (shared convention with the `experiments` CLI):
//! 0 = clean, 1 = findings, 2 = usage/config/I-O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
sae-analyzer: static analysis for the SAE workspace's concurrency/durability invariants

USAGE:
    sae-analyzer check [OPTIONS]

OPTIONS:
    --config <path>   analyzer config (default: ./analyzer.toml)
    --root <path>     workspace root to scan (default: .)
    --json <path>     also write findings as JSON ('-' for stdout)
    --quiet           suppress the human-readable report

EXIT CODES:
    0  no unwaived findings
    1  at least one unwaived finding
    2  usage, config, or I/O error
";

struct Cli {
    config: PathBuf,
    root: PathBuf,
    json: Option<String>,
    quiet: bool,
}

/// Strict flag parsing: unknown flags and commands are usage errors (exit 2).
fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("--help") | Some("-h") | Some("help") => return Err(String::new()),
        Some(other) => return Err(format!("unknown command `{other}`")),
        None => return Err("missing command (expected `check`)".to_string()),
    }
    let mut cli = Cli {
        config: PathBuf::from("analyzer.toml"),
        root: PathBuf::from("."),
        json: None,
        quiet: false,
    };
    let mut explicit_config = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => {
                let v = it.next().ok_or("--config requires a path")?;
                cli.config = PathBuf::from(v);
                explicit_config = true;
            }
            "--root" => {
                let v = it.next().ok_or("--root requires a path")?;
                cli.root = PathBuf::from(v);
            }
            "--json" => {
                let v = it.next().ok_or("--json requires a path or '-'")?;
                cli.json = Some(v.clone());
            }
            "--quiet" => cli.quiet = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // With an explicit --root but no explicit --config, look for the config
    // at the root being scanned.
    if !explicit_config {
        cli.config = cli.root.join("analyzer.toml");
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                // --help: print usage, but it is still not a successful run
                // of the gate, so keep the usage exit code.
                eprint!("{USAGE}");
            } else {
                eprintln!("error: {msg}\n");
                eprint!("{USAGE}");
            }
            return ExitCode::from(2);
        }
    };
    let report = match sae_analyzer::run_with_config_file(&cli.config, &cli.root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if !cli.quiet {
        print!("{}", report.render_human());
    }
    if let Some(target) = &cli.json {
        let json = report.to_json();
        if target == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(target, json) {
            eprintln!("error: writing {target}: {e}");
            return ExitCode::from(2);
        }
    }
    if report.violations() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_unknown_commands_and_flags() {
        assert!(parse_args(&strings(&["frobnicate"])).is_err());
        assert!(parse_args(&strings(&["check", "--bogus"])).is_err());
        assert!(parse_args(&strings(&[])).is_err());
        assert!(parse_args(&strings(&["check", "--config"])).is_err());
    }

    #[test]
    fn parses_valid_invocations() {
        let cli = parse_args(&strings(&["check"])).unwrap();
        assert_eq!(cli.config, PathBuf::from("./analyzer.toml"));
        assert!(!cli.quiet);
        let cli = parse_args(&strings(&[
            "check", "--root", "/tmp/x", "--json", "-", "--quiet",
        ]))
        .unwrap();
        assert_eq!(cli.root, PathBuf::from("/tmp/x"));
        assert_eq!(cli.config, PathBuf::from("/tmp/x/analyzer.toml"));
        assert_eq!(cli.json.as_deref(), Some("-"));
        assert!(cli.quiet);
        let cli = parse_args(&strings(&["check", "--config", "custom.toml"])).unwrap();
        assert_eq!(cli.config, PathBuf::from("custom.toml"));
    }
}
