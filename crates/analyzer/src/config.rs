//! Analyzer configuration: the declared lock order, scan roots, and per-rule
//! knobs, loaded from `analyzer.toml` at the workspace root.
//!
//! The build environment has no crates.io access, so this module includes a
//! hand-rolled parser for the small TOML subset the config needs: `[section]`
//! and `[[section]]` headers, `key = "string"`, and (possibly multi-line)
//! arrays of strings. Anything fancier is rejected with an error.

/// A declared precondition: `function` always runs with `locks` already held
/// (e.g. a commit leader that receives a guard inside a struct). The region
/// model cannot see guards that cross function boundaries, so the config
/// states them explicitly and the analyzer seeds the held-set with them.
#[derive(Debug, Clone, Default)]
pub struct HoldsDecl {
    pub function: String,
    pub locks: Vec<String>,
}

/// Everything `analyzer.toml` can declare.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Total lock acquisition order, outermost first. A lock's rank is its
    /// index; acquiring a lock with rank <= an already-held lock's rank is an
    /// R1 violation (equal rank = re-acquiring the same non-reentrant lock).
    pub lock_order: Vec<String>,
    /// Free functions that acquire a lock passed by reference, e.g.
    /// `lock_unpoisoned(&self.mstate)`.
    pub lock_helpers: Vec<String>,
    /// Directories (relative to the workspace root) to scan.
    pub scan_roots: Vec<String>,
    /// Path components that exclude a file wherever they appear
    /// (e.g. "vendor", "target", "tests", "benches").
    pub exclude_dirs: Vec<String>,
    /// R2: lock fields that protect the authenticated trees; holding one of
    /// these while issuing a sync call is a violation.
    pub tree_locks: Vec<String>,
    /// R2: method/function names that reach a durability barrier
    /// (`sync`, `sync_all`, `save`, ...).
    pub sync_calls: Vec<String>,
    /// R3: the crate (path prefix, e.g. "crates/core") whose commit paths are
    /// held to the panic-free rule.
    pub commit_crate: String,
    /// R3: root function names of the commit/leader/saver paths.
    pub commit_roots: Vec<String>,
    /// R4: crate path prefixes exempt from no-unwrap-in-lib (e.g. the bench
    /// harness, which is deliberately panic-on-failure).
    pub no_unwrap_exclude: Vec<String>,
    /// R5: crate path prefixes whose public APIs must use typed errors.
    pub typed_error_crates: Vec<String>,
    /// Declared held-lock preconditions (see [`HoldsDecl`]).
    pub holds: Vec<HoldsDecl>,
}

impl Config {
    /// Rank of a lock field name in the declared order, if any.
    pub fn rank_of(&self, lock: &str) -> Option<usize> {
        self.lock_order.iter().position(|l| l == lock)
    }

    /// Locks declared held on entry to `function`.
    pub fn holds_for(&self, function: &str) -> &[String] {
        for h in &self.holds {
            if h.function == function {
                return &h.locks;
            }
        }
        &[]
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = header(&line, "[[", "]]") {
                if name == "holds" {
                    cfg.holds.push(HoldsDecl::default());
                } else {
                    return Err(format!("line {}: unknown table array [[{name}]]", idx + 1));
                }
                section = format!("[[{name}]]");
                continue;
            }
            if let Some(name) = header(&line, "[", "]") {
                section = name.to_string();
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(format!("line {}: expected `key = value`", idx + 1));
            };
            let key = line[..eq].trim().to_string();
            let mut value = line[eq + 1..].trim().to_string();
            // Multi-line array: keep consuming lines until brackets balance.
            while value.starts_with('[') && !brackets_balanced(&value) {
                let Some((_, cont)) = lines.next() else {
                    return Err(format!("line {}: unterminated array", idx + 1));
                };
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
            }
            cfg.assign(&section, &key, &value)
                .map_err(|e| format!("line {}: {e}", idx + 1))?;
        }
        if cfg.lock_order.is_empty() {
            return Err("config declares no [locks] order".to_string());
        }
        Ok(cfg)
    }

    fn assign(&mut self, section: &str, key: &str, value: &str) -> Result<(), String> {
        match (section, key) {
            ("locks", "order") => self.lock_order = parse_string_array(value)?,
            ("locks", "helpers") => self.lock_helpers = parse_string_array(value)?,
            ("scan", "roots") => self.scan_roots = parse_string_array(value)?,
            ("scan", "exclude") => self.exclude_dirs = parse_string_array(value)?,
            ("rules.hold_across_sync", "tree_locks") => {
                self.tree_locks = parse_string_array(value)?;
            }
            ("rules.hold_across_sync", "sync_calls") => {
                self.sync_calls = parse_string_array(value)?;
            }
            ("rules.commit_paths", "crate") => self.commit_crate = parse_string(value)?,
            ("rules.commit_paths", "roots") => self.commit_roots = parse_string_array(value)?,
            ("rules.no_unwrap", "exclude") => self.no_unwrap_exclude = parse_string_array(value)?,
            ("rules.typed_errors", "crates") => {
                self.typed_error_crates = parse_string_array(value)?;
            }
            ("[[holds]]", "function") => {
                let f = parse_string(value)?;
                match self.holds.last_mut() {
                    Some(h) => h.function = f,
                    None => return Err("`function` outside [[holds]]".to_string()),
                }
            }
            ("[[holds]]", "locks") => {
                let l = parse_string_array(value)?;
                match self.holds.last_mut() {
                    Some(h) => h.locks = l,
                    None => return Err("`locks` outside [[holds]]".to_string()),
                }
            }
            _ => return Err(format!("unknown key `{key}` in section `{section}`")),
        }
        Ok(())
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn header<'a>(line: &'a str, open: &str, close: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(open)?;
    let name = rest.strip_suffix(close)?;
    // `[[x]]` also matches the `[` prefix of `[x]`; reject leftovers.
    if name.contains('[') || name.contains(']') {
        return None;
    }
    Some(name.trim())
}

fn brackets_balanced(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for b in value.bytes() {
        match b {
            b'"' => in_str = !in_str,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_string(value: &str) -> Result<String, String> {
    let v = value.trim();
    let Some(inner) = v.strip_prefix('"').and_then(|s| s.strip_suffix('"')) else {
        return Err(format!("expected a quoted string, got `{v}`"));
    };
    Ok(inner.to_string())
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let v = value.trim();
    let Some(inner) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
        return Err(format!("expected an array, got `{v}`"));
    };
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[locks]
order = [
    "sp", "te",  # tree locks
    "state",
]
helpers = ["lock_unpoisoned"]

[scan]
roots = ["src"]
exclude = ["vendor"]

[rules.hold_across_sync]
tree_locks = ["sp", "te"]
sync_calls = ["sync", "save"]

[rules.commit_paths]
crate = "crates/core"
roots = ["commit_shard"]

[rules.no_unwrap]
exclude = ["crates/bench"]

[rules.typed_errors]
crates = ["crates/core"]

[[holds]]
function = "finish_commit"
locks = ["state"]
"#;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.lock_order, ["sp", "te", "state"]);
        assert_eq!(cfg.lock_helpers, ["lock_unpoisoned"]);
        assert_eq!(cfg.scan_roots, ["src"]);
        assert_eq!(cfg.exclude_dirs, ["vendor"]);
        assert_eq!(cfg.tree_locks, ["sp", "te"]);
        assert_eq!(cfg.sync_calls, ["sync", "save"]);
        assert_eq!(cfg.commit_crate, "crates/core");
        assert_eq!(cfg.commit_roots, ["commit_shard"]);
        assert_eq!(cfg.no_unwrap_exclude, ["crates/bench"]);
        assert_eq!(cfg.typed_error_crates, ["crates/core"]);
        assert_eq!(cfg.holds.len(), 1);
        assert_eq!(cfg.holds[0].function, "finish_commit");
        assert_eq!(cfg.holds[0].locks, ["state"]);
        assert_eq!(cfg.rank_of("sp"), Some(0));
        assert_eq!(cfg.rank_of("state"), Some(2));
        assert_eq!(cfg.rank_of("nope"), None);
        assert_eq!(cfg.holds_for("finish_commit"), ["state".to_string()]);
        assert!(cfg.holds_for("other").is_empty());
    }

    #[test]
    fn rejects_unknown_keys_and_bad_syntax() {
        assert!(Config::parse("[locks]\nbogus = 1\n").is_err());
        assert!(Config::parse("[locks]\norder\n").is_err());
        assert!(Config::parse("junk\n").is_err());
        assert!(Config::parse("").is_err(), "empty config has no lock order");
        assert!(Config::parse("[[mystery]]\nx = \"y\"\n").is_err());
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = Config::parse("[locks]\norder = [\"a#b\"]\n").unwrap();
        assert_eq!(cfg.lock_order, ["a#b"]);
    }
}
