//! `sae-analyzer`: an offline static-analysis pass that mechanically enforces
//! the workspace's concurrency and durability invariants.
//!
//! The engine's correctness rests on invariants that ordinary tests cannot
//! see: the `state(i) → group(i) → manifest` lock order of the group-commit
//! pipeline, the rule that no fsync or manifest save happens while tree locks
//! are held, and the requirement that commit leaders never panic. This crate
//! turns those prose invariants (see `docs/invariants.md`) into a CI gate.
//!
//! The pass is deliberately dependency-free — crates.io is unreachable in the
//! build environment — so it is built on a hand-rolled lexer and a
//! per-function guard-region model rather than `syn`. See [`scan`] for the
//! source model, [`rules`] for the six rules, and [`config`] for
//! `analyzer.toml`.
//!
//! Findings can be waived narrowly with an `analyzer:allow` comment — rule
//! id and reason in parentheses — on the offending line or the line directly
//! above it; waivers are counted and reported, and stale waivers (matching
//! nothing) are called out. See the README for the exact syntax.

pub mod config;
pub mod rules;
pub mod scan;

use config::Config;
use rules::Finding;
use scan::SourceFile;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Operational failure (I/O or config), as opposed to rule findings.
#[derive(Debug)]
pub enum AnalyzerError {
    Io(PathBuf, std::io::Error),
    Config(String),
}

impl fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzerError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            AnalyzerError::Config(msg) => write!(f, "config error: {msg}"),
        }
    }
}

impl std::error::Error for AnalyzerError {}

/// A finding after waiver matching.
#[derive(Debug, Clone)]
pub struct ReportedFinding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// `Some(reason)` when an `analyzer:allow` waiver covers this finding.
    pub waived: Option<String>,
}

/// A waiver that matched no finding — usually a fixed violation whose
/// comment should be deleted.
#[derive(Debug, Clone)]
pub struct StaleWaiver {
    pub file: String,
    pub line: u32,
    pub rule: String,
}

/// The result of a full analysis run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<ReportedFinding>,
    pub files_scanned: usize,
    pub waivers_declared: usize,
    pub stale_waivers: Vec<StaleWaiver>,
}

impl Report {
    /// Unwaived violations — nonzero means the gate fails.
    pub fn violations(&self) -> usize {
        self.findings.iter().filter(|f| f.waived.is_none()).count()
    }

    pub fn waived(&self) -> usize {
        self.findings.iter().filter(|f| f.waived.is_some()).count()
    }

    /// Human-readable rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match &f.waived {
                None => {
                    out.push_str(&format!(
                        "error[{}]: {}:{}: {}\n",
                        f.rule, f.file, f.line, f.message
                    ));
                }
                Some(reason) => {
                    out.push_str(&format!(
                        "waived[{}]: {}:{}: {} (reason: {reason})\n",
                        f.rule, f.file, f.line, f.message
                    ));
                }
            }
        }
        for s in &self.stale_waivers {
            out.push_str(&format!(
                "warning[stale-waiver]: {}:{}: analyzer:allow({}) matches no finding\n",
                s.file, s.line, s.rule
            ));
        }
        out.push_str(&format!(
            "{} file(s) scanned: {} violation(s), {} waived, {} waiver(s) declared ({} stale)\n",
            self.files_scanned,
            self.violations(),
            self.waived(),
            self.waivers_declared,
            self.stale_waivers.len()
        ));
        out
    }

    /// JSON rendering (hand-rolled; the analyzer is dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"waived\": {}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                match &f.waived {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                }
            ));
        }
        out.push_str("\n  ],\n  \"stale_waivers\": [");
        for (i, s) in self.stale_waivers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}}}",
                json_str(&s.file),
                s.line,
                json_str(&s.rule)
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"summary\": {{\"files_scanned\": {}, \"violations\": {}, \"waived\": {}, \"waivers_declared\": {}}}\n}}\n",
            self.files_scanned,
            self.violations(),
            self.waived(),
            self.waivers_declared
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Loads the config file and runs the full analysis rooted at `root`.
pub fn run_with_config_file(config_path: &Path, root: &Path) -> Result<Report, AnalyzerError> {
    let text = fs::read_to_string(config_path)
        .map_err(|e| AnalyzerError::Io(config_path.to_path_buf(), e))?;
    let cfg = Config::parse(&text).map_err(AnalyzerError::Config)?;
    run(&cfg, root)
}

/// Runs the full analysis: walk, scan, rules, waivers.
pub fn run(cfg: &Config, root: &Path) -> Result<Report, AnalyzerError> {
    let mut files = Vec::new();
    for r in &cfg.scan_roots {
        let dir = root.join(r);
        if dir.is_dir() {
            collect_rs_files(&dir, &cfg.exclude_dirs, &mut files)?;
        }
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let raw = fs::read_to_string(path).map_err(|e| AnalyzerError::Io(path.clone(), e))?;
        let rel = rel_path(path, root);
        sources.push(SourceFile::parse(&rel, raw));
    }
    let raw_findings = rules::check_all(&sources, cfg);
    Ok(apply_waivers(raw_findings, &sources))
}

fn rel_path(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

fn collect_rs_files(
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<PathBuf>,
) -> Result<(), AnalyzerError> {
    let entries = fs::read_dir(dir).map_err(|e| AnalyzerError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalyzerError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if exclude.iter().any(|x| x == &name) {
                continue;
            }
            collect_rs_files(&path, exclude, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Waivers.
// ---------------------------------------------------------------------------

struct Waiver {
    line: u32,
    rule: String,
    reason: String,
    used: bool,
}

/// Parses `analyzer:allow` waiver markers from raw source lines. Only
/// markers inside actual comments count — the same text in a string literal
/// is ignored.
fn parse_waivers(sf: &SourceFile) -> Vec<Waiver> {
    let raw = &sf.raw;
    let mut out = Vec::new();
    let mut offset = 0usize;
    for (idx, line) in raw.lines().enumerate() {
        let line_offset = offset;
        offset += line.len() + 1;
        let Some(start) = line.find("analyzer:allow(") else {
            continue;
        };
        if !sf.in_comment(line_offset + start) {
            continue;
        }
        let args_start = start + "analyzer:allow(".len();
        let Some(end) = line[args_start..].find(')') else {
            continue;
        };
        let args = &line[args_start..args_start + end];
        let (rule, reason) = match args.split_once(',') {
            Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
            None => (args.trim().to_string(), String::new()),
        };
        out.push(Waiver {
            line: (idx + 1) as u32,
            rule,
            reason,
            used: false,
        });
    }
    out
}

fn apply_waivers(findings: Vec<Finding>, sources: &[SourceFile]) -> Report {
    let mut waivers: Vec<(usize, Vec<Waiver>)> = sources
        .iter()
        .enumerate()
        .map(|(i, sf)| (i, parse_waivers(sf)))
        .collect();
    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };
    for f in findings {
        let mut waived = None;
        if let Some(src_idx) = sources.iter().position(|s| s.rel_path == f.file) {
            let (_, ws) = &mut waivers[src_idx];
            // A waiver covers the finding on its own line or the line below.
            for w in ws.iter_mut() {
                if w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line) {
                    w.used = true;
                    waived = Some(if w.reason.is_empty() {
                        "(no reason given)".to_string()
                    } else {
                        w.reason.clone()
                    });
                    break;
                }
            }
        }
        report.findings.push(ReportedFinding {
            rule: f.rule,
            file: f.file,
            line: f.line,
            message: f.message,
            waived,
        });
    }
    for (src_idx, ws) in waivers {
        report.waivers_declared += ws.len();
        for w in ws {
            if !w.used {
                report.stale_waivers.push(StaleWaiver {
                    file: sources[src_idx].rel_path.clone(),
                    line: w.line,
                    rule: w.rule,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_suppresses_exactly_one_finding_and_is_reported() {
        let src = "fn f() { a().unwrap(); }\n\
                   // analyzer:allow(no-unwrap-in-lib, provably infallible here)\n\
                   fn g() { b().unwrap(); }\n";
        let sf = SourceFile::parse("src/lib.rs", src.to_string());
        let cfg = Config::parse("[locks]\norder = [\"x\"]\n").unwrap();
        let findings = rules::check_all(std::slice::from_ref(&sf), &cfg);
        let report = apply_waivers(findings, std::slice::from_ref(&sf));
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.violations(), 1, "one unwaived finding remains");
        assert_eq!(report.waived(), 1, "exactly one finding is waived");
        assert_eq!(report.waivers_declared, 1);
        assert!(report.stale_waivers.is_empty());
        let waived = report.findings.iter().find(|f| f.waived.is_some());
        assert!(waived
            .and_then(|f| f.waived.as_deref())
            .is_some_and(|r| r.contains("provably infallible")));
        let human = report.render_human();
        assert!(human.contains("1 violation(s), 1 waived, 1 waiver(s) declared"));
    }

    #[test]
    fn stale_waivers_are_reported_not_fatal() {
        let src = "// analyzer:allow(no-unwrap-in-lib, nothing here any more)\nfn f() {}\n";
        let sf = SourceFile::parse("src/lib.rs", src.to_string());
        let cfg = Config::parse("[locks]\norder = [\"x\"]\n").unwrap();
        let findings = rules::check_all(std::slice::from_ref(&sf), &cfg);
        let report = apply_waivers(findings, std::slice::from_ref(&sf));
        assert_eq!(report.violations(), 0);
        assert_eq!(report.stale_waivers.len(), 1);
        assert!(report.render_human().contains("stale-waiver"));
    }

    #[test]
    fn same_line_waiver_matches() {
        let src = "fn f() { a().unwrap(); } // analyzer:allow(no-unwrap-in-lib, demo)\n";
        let sf = SourceFile::parse("src/lib.rs", src.to_string());
        let cfg = Config::parse("[locks]\norder = [\"x\"]\n").unwrap();
        let findings = rules::check_all(std::slice::from_ref(&sf), &cfg);
        let report = apply_waivers(findings, std::slice::from_ref(&sf));
        assert_eq!(report.violations(), 0);
        assert_eq!(report.waived(), 1);
    }

    #[test]
    fn json_escapes_and_summarizes() {
        let report = Report {
            findings: vec![ReportedFinding {
                rule: "no-unwrap-in-lib",
                file: "src/a\"b.rs".to_string(),
                line: 3,
                message: "bad\nthing".to_string(),
                waived: None,
            }],
            files_scanned: 1,
            waivers_declared: 0,
            stale_waivers: Vec::new(),
        };
        let json = report.to_json();
        assert!(json.contains("\\\"b.rs"));
        assert!(json.contains("bad\\nthing"));
        assert!(json.contains("\"violations\": 1"));
    }
}
