//! Source scanning: comment/string stripping, a flat token stream, and a
//! per-file model of functions and `#[cfg(test)]` regions.
//!
//! This is deliberately *not* a Rust parser. The lexer blanks out comments and
//! string/char literals (preserving byte offsets and line structure), the
//! tokenizer produces identifiers/numbers/punctuation, and the function finder
//! matches `fn name ... {` and balances braces. That is enough structure for
//! the region-based rules in [`crate::rules`], and it keeps the analyzer
//! dependency-free (crates.io is unreachable; there is no `syn`).

/// One lexical token of cleaned source.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    Ident(String),
    Num,
    Punct(u8),
    Lifetime,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset in the cleaned (and original) text.
    pub pos: usize,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// A function found in a file: token spans for its signature and body.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    pub is_pub: bool,
    pub is_test: bool,
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token index range of the body, inclusive of both braces.
    /// `None` for bodyless declarations (trait methods).
    pub body: Option<(usize, usize)>,
}

/// A scanned source file ready for rule checking.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the scan root, with `/` separators.
    pub rel_path: String,
    /// Crate key: leading `crates/<name>` component, or "." for the root
    /// crate / corpus runs.
    pub crate_key: String,
    pub raw: String,
    pub tokens: Vec<Tok>,
    pub functions: Vec<Function>,
    /// Token-index ranges exempt from lib rules (`#[cfg(test)]` items,
    /// `#[test]` functions).
    pub exempt: Vec<(usize, usize)>,
    /// Byte ranges of comments in `raw` (waivers must live in one).
    pub comments: Vec<(usize, usize)>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, raw: String) -> SourceFile {
        let (cleaned, comments) = clean_with_comments(&raw);
        let tokens = tokenize(&cleaned);
        let (functions, exempt) = find_items(&tokens, rel_path);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_key: crate_key(rel_path),
            raw,
            tokens,
            functions,
            exempt,
            comments,
        }
    }

    /// Whether byte offset `pos` in `raw` falls inside a comment.
    pub fn in_comment(&self, pos: usize) -> bool {
        self.comments.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// Whether token index `i` falls inside an exempt (test) region.
    pub fn is_exempt(&self, i: usize) -> bool {
        self.exempt.iter().any(|&(s, e)| i >= s && i <= e)
    }
}

fn crate_key(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return format!("crates/{name}");
        }
    }
    ".".to_string()
}

/// Replaces comments and string/char-literal contents with spaces, keeping
/// byte offsets and newlines intact.
pub fn clean(src: &str) -> String {
    clean_with_comments(src).0
}

/// Like [`clean`], but also returns the byte ranges of comments — needed to
/// tell a real `analyzer:allow` waiver comment apart from the same text
/// appearing inside a string literal.
pub fn clean_with_comments(src: &str) -> (String, Vec<(usize, usize)>) {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut comments = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
                comments.push((start, i));
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
                comments.push((start, i));
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"..."  r#"..."#  br#"..."#  etc.
                let mut j = i;
                while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
                    out[j] = b' ';
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    out[j] = b' ';
                    j += 1;
                }
                // j is at the opening quote.
                out[j] = b' ';
                j += 1;
                while j < bytes.len() {
                    if bytes[j] == b'"' && closing_hashes(bytes, j + 1) >= hashes {
                        out[j] = b' ';
                        for k in 0..hashes {
                            out[j + 1 + k] = b' ';
                        }
                        j += 1 + hashes;
                        break;
                    }
                    if bytes[j] != b'\n' {
                        out[j] = b' ';
                    }
                    j += 1;
                }
                i = j;
            }
            b'"' => {
                out[i] = b' ';
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out[i] = b' ';
                            if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                                out[i + 1] = b' ';
                            }
                            i += 2;
                        }
                        b'"' => {
                            out[i] = b' ';
                            i += 1;
                            break;
                        }
                        b'\n' => i += 1,
                        _ => {
                            out[i] = b' ';
                            i += 1;
                        }
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime. `'\x'`, `'x'` are literals; `'a`
                // followed by anything but a closing quote is a lifetime.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    out[i] = b' ';
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        out[j] = b' ';
                        j += 1;
                    }
                    if j < bytes.len() {
                        out[j] = b' ';
                        j += 1;
                    }
                    i = j;
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    out[i + 2] = b' ';
                    i += 3;
                } else {
                    i += 1; // lifetime quote; tokenizer handles it
                }
            }
            _ => i += 1,
        }
    }
    // The cleaning above only ever writes ASCII spaces over existing bytes,
    // but multi-byte UTF-8 inside strings/comments is also fully blanked, so
    // the result is valid ASCII/UTF-8.
    (String::from_utf8_lossy(&out).into_owned(), comments)
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Accept r", r#", br", b" ... but `b` alone only when followed by a quote
    // (byte-string) — a plain identifier starting with r/b must not match.
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j < bytes.len() && bytes[j] == b'r' {
            j += 1;
        }
    } else if bytes[j] == b'r' {
        j += 1;
    } else {
        return false;
    }
    // Identifier continuation means this was just an ident like `break`.
    if i > 0 && is_ident_char(bytes[i - 1]) {
        return false;
    }
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"' && (bytes[i] != b'b' || j > i + 1 || bytes[i + 1] == b'"')
}

fn closing_hashes(bytes: &[u8], mut j: usize) -> usize {
    let mut n = 0;
    while j < bytes.len() && bytes[j] == b'#' {
        n += 1;
        j += 1;
    }
    n
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes cleaned source into identifiers, numbers and punctuation.
pub fn tokenize(cleaned: &str) -> Vec<Tok> {
    let bytes = cleaned.as_bytes();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (is_ident_char(bytes[i]) || bytes[i] == b'.') {
                // `0..8` range: stop the number before `..`
                if bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    break;
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                pos: start,
                line,
            });
        } else if is_ident_char(b) {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident(cleaned[start..i].to_string()),
                pos: start,
                line,
            });
        } else if b == b'\'' {
            // Lifetime: consume the quote and the identifier after it.
            let start = i;
            i += 1;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Lifetime,
                pos: start,
                line,
            });
        } else {
            toks.push(Tok {
                kind: TokKind::Punct(b),
                pos: i,
                line,
            });
            i += 1;
        }
    }
    toks
}

/// Finds functions and test-exempt regions in a token stream.
fn find_items(toks: &[Tok], rel_path: &str) -> (Vec<Function>, Vec<(usize, usize)>) {
    let mut functions = Vec::new();
    let mut exempt = Vec::new();
    let path_is_test = rel_path.split('/').any(|c| c == "tests");

    // Attribute scan: record spans of `#[...]` so item detection can look at
    // the attributes immediately preceding an item.
    let mut i = 0;
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut item_start = 0usize; // first token after the previous item/stmt
    while i < toks.len() {
        if toks[i].is_punct(b'#') && i + 1 < toks.len() && toks[i + 1].is_punct(b'[') {
            let end = match matching(toks, i + 1, b'[', b']') {
                Some(e) => e,
                None => break,
            };
            let text: Vec<&str> = toks[i..=end].iter().filter_map(|t| t.ident()).collect();
            pending_attrs.push(text.join(" "));
            i = end + 1;
            continue;
        }
        let is_cfg_test = pending_attrs.iter().any(|a| {
            (a.contains("cfg") && a.contains("test")) || a.split(' ').any(|w| w == "test")
        });
        if toks[i].is_ident("mod") {
            // `mod name {` — if cfg(test), the whole body is exempt.
            if i + 2 < toks.len() && toks[i + 2].is_punct(b'{') {
                if let Some(end) = matching(toks, i + 2, b'{', b'}') {
                    if is_cfg_test {
                        exempt.push((i, end));
                    }
                }
            }
            pending_attrs.clear();
            i += 1;
            item_start = i;
            continue;
        }
        if toks[i].is_ident("fn") {
            let name = match toks.get(i + 1).and_then(|t| t.ident()) {
                Some(n) => n.to_string(),
                None => {
                    i += 1;
                    continue;
                }
            };
            // `pub` among tokens between the previous item boundary and `fn`,
            // not followed by `(` (pub(crate) is not a public API).
            let mut is_pub = false;
            for k in item_start..i {
                if toks[k].is_ident("pub") {
                    is_pub = !toks.get(k + 1).map(|t| t.is_punct(b'(')).unwrap_or(false);
                }
            }
            // Find the body `{`: first `{` at zero paren/bracket depth;
            // a `;` first means a bodyless declaration.
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut body = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                    TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                    TokKind::Punct(b'{') if depth == 0 => {
                        body = matching(toks, j, b'{', b'}').map(|e| (j, e));
                        break;
                    }
                    TokKind::Punct(b';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let f = Function {
                name,
                is_pub,
                is_test: is_cfg_test || path_is_test,
                line: toks[i].line,
                fn_tok: i,
                body,
            };
            if is_cfg_test {
                let end = f.body.map(|(_, e)| e).unwrap_or(i + 1);
                exempt.push((i, end));
            }
            functions.push(f);
            pending_attrs.clear();
            // Continue scanning *inside* the body too (nested fns, and the
            // exempt-region bookkeeping is span-based anyway).
            i += 2;
            item_start = i;
            continue;
        }
        if matches!(
            toks[i].kind,
            TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}')
        ) {
            pending_attrs.clear();
            item_start = i + 1;
        }
        i += 1;
    }

    // Functions lexically inside an exempt region are test functions.
    for f in &mut functions {
        if exempt.iter().any(|&(s, e)| f.fn_tok >= s && f.fn_tok <= e) {
            f.is_test = true;
        }
    }
    (functions, exempt)
}

/// Index of the token matching the opener at `open_idx`.
pub fn matching(toks: &[Tok], open_idx: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_strips_comments_and_strings() {
        let src = "let x = \"a.lock()\"; // b.lock()\nlet y = 'c'; /* d.lock() */ z";
        let c = clean(src);
        assert!(!c.contains("lock"));
        assert!(c.contains("let x ="));
        assert!(c.contains("let y ="));
        assert!(c.ends_with('z'));
        assert_eq!(c.len(), src.len());
    }

    #[test]
    fn clean_handles_raw_strings_and_lifetimes() {
        let src = "let s = r#\"un.wrap()\"#; fn f<'a>(x: &'a str) {}";
        let c = clean(src);
        assert!(!c.contains("wrap"));
        assert!(c.contains("fn f<'a>"));
    }

    #[test]
    fn clean_handles_escaped_quotes_and_nested_block_comments() {
        let c = clean("let s = \"a\\\"b.lock()\"; /* outer /* inner */ still */ tail");
        assert!(!c.contains("lock"));
        assert!(c.contains("tail"));
    }

    #[test]
    fn tokenizer_basics() {
        let toks = tokenize("self.sp.read()");
        let idents: Vec<_> = toks.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, ["self", "sp", "read"]);
        assert!(toks.iter().any(|t| t.is_punct(b'(')));
    }

    #[test]
    fn finds_functions_and_visibility() {
        let sf = SourceFile::parse(
            "crates/demo/src/lib.rs",
            "pub fn api() -> u8 { 1 }\nfn private() {}\npub(crate) fn semi() {}\n".to_string(),
        );
        assert_eq!(sf.crate_key, "crates/demo");
        let names: Vec<_> = sf.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["api", "private", "semi"]);
        assert!(sf.functions[0].is_pub);
        assert!(!sf.functions[1].is_pub);
        assert!(!sf.functions[2].is_pub, "pub(crate) is not public API");
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let sf = SourceFile::parse("src/lib.rs", src.to_string());
        let lib = sf.functions.iter().find(|f| f.name == "lib_code");
        let t = sf.functions.iter().find(|f| f.name == "t");
        assert!(lib.is_some_and(|f| !f.is_test));
        assert!(t.is_some_and(|f| f.is_test));
        assert!(!sf.exempt.is_empty());
    }

    #[test]
    fn test_attr_on_fn_is_exempt() {
        let src = "#[test]\nfn t() {}\nfn real() {}\n";
        let sf = SourceFile::parse("src/lib.rs", src.to_string());
        assert!(sf
            .functions
            .iter()
            .find(|f| f.name == "t")
            .is_some_and(|f| f.is_test));
        assert!(sf
            .functions
            .iter()
            .find(|f| f.name == "real")
            .is_some_and(|f| !f.is_test));
    }
}
