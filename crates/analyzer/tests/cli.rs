//! End-to-end CLI tests: the binary's exit codes follow the convention
//! shared with the `experiments` CLI (0 clean, 1 findings, 2 usage error).

use std::path::{Path, PathBuf};
use std::process::Command;

fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn check(config: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sae-analyzer"))
        .arg("check")
        .arg("--config")
        .arg(corpus_root().join(config))
        .arg("--root")
        .arg(corpus_root())
        .arg("--quiet")
        .arg("--json")
        .arg("-")
        .output()
        .expect("analyzer binary runs")
}

#[test]
fn clean_tree_exits_zero() {
    let out = check("good.toml");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"violations\": 0"), "{json}");
}

#[test]
fn findings_exit_one() {
    let out = check("bad.toml");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"violations\": 6"), "{json}");
}

#[test]
fn usage_errors_exit_two() {
    let bin = env!("CARGO_BIN_EXE_sae-analyzer");
    for args in [
        vec!["check", "--bogus"],
        vec!["frobnicate"],
        vec![],
        vec!["check", "--config"],
    ] {
        let out = Command::new(bin).args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "args {args:?}: {out:?}");
    }
}

#[test]
fn missing_config_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_sae-analyzer"))
        .args(["check", "--config", "/nonexistent/analyzer.toml"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
