//! Self-test corpus: every rule must fire on its bad fixture, stay quiet on
//! its good twin, and the waiver machinery must suppress exactly what it
//! annotates. A final test runs the analyzer over the real workspace tree
//! with the real config, pinning the "gate is green" invariant in `cargo
//! test` as well as in CI.

use sae_analyzer::Report;
use std::path::{Path, PathBuf};

fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn run_corpus(config: &str) -> Report {
    let root = corpus_root();
    sae_analyzer::run_with_config_file(&root.join(config), &root).expect("corpus scan runs")
}

#[test]
fn bad_fixtures_fire_exactly_their_rule() {
    let report = run_corpus("bad.toml");
    let expected = [
        ("bad/r1_lock_order.rs", "lock-order"),
        ("bad/r2_hold_sync.rs", "hold-across-sync"),
        ("bad/r3_commit_panic.rs", "panic-free-commit"),
        ("bad/r4_unwrap.rs", "no-unwrap-in-lib"),
        ("bad/r5_stringly.rs", "typed-errors"),
        ("bad/r6_unsafe.rs", "unsafe-audit"),
    ];
    assert_eq!(
        report.findings.len(),
        expected.len(),
        "unexpected finding set:\n{}",
        report.render_human()
    );
    for (file, rule) in expected {
        let hits: Vec<_> = report.findings.iter().filter(|f| f.file == file).collect();
        assert_eq!(hits.len(), 1, "expected exactly one finding for {file}");
        assert_eq!(hits[0].rule, rule, "wrong rule for {file}");
        assert!(hits[0].waived.is_none(), "{file} must not be waived");
    }
    assert!(report.stale_waivers.is_empty());
}

#[test]
fn good_fixtures_stay_quiet() {
    let report = run_corpus("good.toml");
    assert!(
        report.findings.is_empty(),
        "good fixtures must be quiet:\n{}",
        report.render_human()
    );
    assert_eq!(report.violations(), 0);
}

#[test]
fn waiver_suppresses_exactly_one_finding_and_is_reported() {
    let report = run_corpus("waiver.toml");
    assert_eq!(report.findings.len(), 2, "{}", report.render_human());
    assert_eq!(report.violations(), 1, "{}", report.render_human());
    assert_eq!(report.waived(), 1, "{}", report.render_human());
    assert_eq!(report.waivers_declared, 1);
    assert!(report.stale_waivers.is_empty());
    let human = report.render_human();
    assert!(
        human.contains("1 waived"),
        "summary must report the waiver:\n{human}"
    );
    assert!(human.contains("1 waiver(s) declared"), "{human}");
}

#[test]
fn workspace_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = sae_analyzer::run_with_config_file(&root.join("analyzer.toml"), &root)
        .expect("workspace scan runs");
    assert_eq!(
        report.violations(),
        0,
        "the workspace must pass its own gate:\n{}",
        report.render_human()
    );
    assert!(
        report.stale_waivers.is_empty(),
        "stale waivers in the tree:\n{}",
        report.render_human()
    );
}
