// Corpus fixture: two identical violations, one carrying a waiver. Expected:
// two findings, exactly one of them waived — proving a waiver suppresses only
// the finding it annotates.
pub fn latest(values: &[u32]) -> u32 {
    // analyzer:allow(no-unwrap-in-lib, fixture proving a waiver suppresses exactly one finding)
    values.last().copied().unwrap()
}

pub fn second(values: &[u32]) -> u32 {
    values.get(1).copied().unwrap()
}
