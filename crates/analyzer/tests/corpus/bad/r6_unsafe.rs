// Corpus fixture: an `unsafe` block with no safety-contract comment
// justifying it. Expected: one `unsafe-audit` finding.
pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
