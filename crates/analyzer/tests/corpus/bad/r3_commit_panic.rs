// Corpus fixture: the commit root reaches a panicking `[...]` indexing
// through a transitive callee. Expected: one `panic-free-commit` finding in
// `first_entry`.
pub fn commit_main(batch: &[u32]) -> u32 {
    first_entry(batch)
}

fn first_entry(batch: &[u32]) -> u32 {
    batch[0]
}
