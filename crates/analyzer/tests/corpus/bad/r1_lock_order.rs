// Corpus fixture: acquires `alpha` (rank 0) while already holding `beta`
// (rank 1), inverting the declared order. Expected: one `lock-order` finding.
use std::sync::RwLock;

pub struct Pair {
    alpha: RwLock<u32>,
    beta: RwLock<u32>,
}

impl Pair {
    pub fn inverted(&self) -> u32 {
        let b = self.beta.read();
        let a = self.alpha.read();
        let out = *a + *b;
        drop(a);
        drop(b);
        out
    }
}
