// Corpus fixture: a public API returning a boxed trait-object error instead
// of a typed one. Expected: one `typed-errors` finding.
pub fn load(path: &str) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let _ = path;
    Ok(Vec::new())
}
