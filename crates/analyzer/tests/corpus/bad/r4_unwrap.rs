// Corpus fixture: `.unwrap()` in non-test library code. Expected: one
// `no-unwrap-in-lib` finding.
pub fn latest(values: &[u32]) -> u32 {
    values.last().copied().unwrap()
}
