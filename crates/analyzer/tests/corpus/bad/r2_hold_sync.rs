// Corpus fixture: reaches a durability barrier (`sync`) while the tree
// guard `alpha` is still open. Expected: one `hold-across-sync` finding.
use std::sync::RwLock;

pub struct Store {
    alpha: RwLock<Vec<u8>>,
    out: std::fs::File,
}

impl Store {
    pub fn flush_under_lock(&self) {
        let g = self.alpha.write();
        self.out.sync();
        drop(g);
    }
}
