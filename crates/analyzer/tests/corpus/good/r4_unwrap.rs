// Corpus fixture: library code using a non-panicking fallback. Expected:
// quiet (`unwrap_or_default` is not `unwrap`).
pub fn latest(values: &[u32]) -> u32 {
    values.last().copied().unwrap_or_default()
}
