// Corpus fixture: an `unsafe` block carrying its `// SAFETY:` justification.
// Expected: quiet.
pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads, per this
    // function's documented contract.
    unsafe { *p }
}
