// Corpus fixture: a public API returning a typed error enum. Expected:
// quiet (a concrete `*Error` type is exactly what the rule asks for).
pub enum LoadError {
    Empty,
}

pub fn load(bytes: &[u8]) -> Result<u32, LoadError> {
    match bytes.first() {
        Some(&b) => Ok(b as u32),
        None => Err(LoadError::Empty),
    }
}
