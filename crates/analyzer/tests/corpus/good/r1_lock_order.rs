// Corpus fixture: acquires `alpha` before `beta`, matching the declared
// order, and releases in reverse. Expected: quiet.
use std::sync::RwLock;

pub struct Pair {
    alpha: RwLock<u32>,
    beta: RwLock<u32>,
}

impl Pair {
    pub fn ordered(&self) -> u32 {
        let a = self.alpha.read();
        let b = self.beta.read();
        let out = *a + *b;
        drop(b);
        drop(a);
        out
    }
}
