// Corpus fixture: the tree guard is dropped before the durability barrier
// runs. Expected: quiet.
use std::sync::RwLock;

pub struct Store {
    alpha: RwLock<Vec<u8>>,
    out: std::fs::File,
}

impl Store {
    pub fn flush_outside_lock(&self) {
        let g = self.alpha.write();
        drop(g);
        self.out.sync();
    }
}
