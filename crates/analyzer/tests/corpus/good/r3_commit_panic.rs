// Corpus fixture: the commit root and its callees use non-panicking
// accessors. Expected: quiet.
pub fn commit_main(batch: &[u32]) -> u32 {
    first_entry(batch)
}

fn first_entry(batch: &[u32]) -> u32 {
    batch.first().copied().unwrap_or(0)
}
