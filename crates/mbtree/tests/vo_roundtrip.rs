//! End-to-end MB-Tree tests: VO generation on real trees + client verification.

use sae_crypto::signer::{MacSigner, Signer};
use sae_crypto::HashAlgorithm;
use sae_mbtree::{MbTree, VerifyError};
use sae_storage::MemPager;
use sae_workload::{RangeQuery, Record};

const ALG: HashAlgorithm = HashAlgorithm::Sha1;

struct Fixture {
    tree: MbTree,
    records: Vec<Record>,
    signer: MacSigner,
}

impl Fixture {
    /// Builds an MB-Tree over `n` records with keys `id * key_stride % modulus`.
    fn new(n: u64, key_fn: impl Fn(u64) -> u32) -> Fixture {
        let records: Vec<Record> = (0..n)
            .map(|i| Record::with_size(i, key_fn(i), 100))
            .collect();
        let mut entries: Vec<(u32, u64, _)> = records
            .iter()
            .map(|r| (r.key, r.id, r.digest(ALG)))
            .collect();
        entries.sort_by_key(|&(k, id, _)| (k, id));
        let tree = MbTree::bulk_load(MemPager::new_shared(), ALG, &entries).unwrap();
        Fixture {
            tree,
            records,
            signer: MacSigner::new(b"data-owner-signing-key".to_vec()),
        }
    }

    fn fetch(&self, rid: u64) -> Vec<u8> {
        self.records[rid as usize].encode()
    }

    /// The result an honest SP returns: the records matching the query, in the
    /// MB-Tree's leaf order (which is also the order the VO's result runs use).
    fn honest_result(&self, q: &RangeQuery) -> Vec<Vec<u8>> {
        self.tree
            .range(q)
            .unwrap()
            .into_iter()
            .map(|(_, rid)| {
                self.records
                    .iter()
                    .find(|r| r.id == rid)
                    .expect("record for id")
                    .encode()
            })
            .collect()
    }

    fn signed_vo(&self, q: &RangeQuery) -> sae_mbtree::VerificationObject {
        let signature = self.signer.sign(&self.tree.root_digest().unwrap());
        self.tree
            .generate_vo(q, |rid| self.fetch(rid), signature)
            .unwrap()
    }
}

#[test]
fn honest_results_verify_for_many_queries() {
    let fx = Fixture::new(5_000, |i| (i * 37 % 20_000) as u32);
    for (lo, hi) in [
        (0u32, 20_000u32), // everything
        (1_000, 1_200),
        (0, 50),          // touches the dataset start
        (19_900, 20_000), // touches the dataset end
        (7_777, 7_777),   // point query
        (19_999, 19_999),
    ] {
        let q = RangeQuery::new(lo, hi);
        let rs = fx.honest_result(&q);
        let vo = fx.signed_vo(&q);
        assert_eq!(
            vo.verify(&q, &rs, &fx.signer, ALG),
            Ok(()),
            "query [{lo}, {hi}] with {} results",
            rs.len()
        );
    }
}

#[test]
fn empty_results_verify() {
    // Keys are all multiples of 100, so [150, 180] is empty but enclosed.
    let fx = Fixture::new(1_000, |i| (i * 100) as u32);
    let q = RangeQuery::new(150, 180);
    let rs = fx.honest_result(&q);
    assert!(rs.is_empty());
    let vo = fx.signed_vo(&q);
    assert_eq!(vo.verify(&q, &rs, &fx.signer, ALG), Ok(()));
}

#[test]
fn queries_outside_the_key_domain_verify_as_empty() {
    let fx = Fixture::new(500, |i| (i % 1_000) as u32);
    let q = RangeQuery::new(5_000, 6_000);
    let rs = fx.honest_result(&q);
    assert!(rs.is_empty());
    let vo = fx.signed_vo(&q);
    assert_eq!(vo.verify(&q, &rs, &fx.signer, ALG), Ok(()));
}

#[test]
fn duplicate_heavy_datasets_verify() {
    // Only 20 distinct keys across 2000 records: duplicates span many leaves.
    let fx = Fixture::new(2_000, |i| (i % 20) as u32 * 5);
    for (lo, hi) in [(0u32, 0u32), (5, 25), (95, 95), (0, 200)] {
        let q = RangeQuery::new(lo, hi);
        let rs = fx.honest_result(&q);
        let vo = fx.signed_vo(&q);
        assert_eq!(
            vo.verify(&q, &rs, &fx.signer, ALG),
            Ok(()),
            "query [{lo}, {hi}]"
        );
    }
}

#[test]
fn dropping_a_result_record_is_detected() {
    let fx = Fixture::new(3_000, |i| (i * 3 % 9_000) as u32);
    let q = RangeQuery::new(4_000, 4_200);
    let mut rs = fx.honest_result(&q);
    assert!(rs.len() > 3);
    let vo = fx.signed_vo(&q);

    // Drop a record from the middle of the result.
    rs.remove(rs.len() / 2);
    assert!(vo.verify(&q, &rs, &fx.signer, ALG).is_err());
}

#[test]
fn modifying_a_result_record_is_detected() {
    let fx = Fixture::new(3_000, |i| (i % 9_000) as u32);
    let q = RangeQuery::new(1_000, 1_300);
    let mut rs = fx.honest_result(&q);
    let vo = fx.signed_vo(&q);

    // Flip one byte of one record's payload: key/id unchanged, so only the
    // digest math can catch it.
    let idx = rs.len() / 2;
    let last = rs[idx].len() - 1;
    rs[idx][last] ^= 0x01;
    assert_eq!(
        vo.verify(&q, &rs, &fx.signer, ALG),
        Err(VerifyError::SignatureMismatch)
    );
}

#[test]
fn injecting_a_bogus_record_is_detected() {
    let fx = Fixture::new(2_000, |i| (i * 3 % 6_000) as u32);
    let q = RangeQuery::new(2_000, 2_300);
    let mut rs = fx.honest_result(&q);
    let vo = fx.signed_vo(&q);

    let bogus = Record::with_size(999_999, 2_100, 100);
    let pos = rs.partition_point(|r| {
        let rec = Record::decode(r).unwrap();
        (rec.key, rec.id) <= (2_100, 999_999)
    });
    rs.insert(pos, bogus.encode());
    assert!(vo.verify(&q, &rs, &fx.signer, ALG).is_err());
}

#[test]
fn stale_signature_is_detected_after_updates() {
    let mut fx = Fixture::new(1_000, |i| (i % 3_000) as u32);
    let q = RangeQuery::new(100, 400);

    // Sign the root, then update the tree (the DO would normally re-sign).
    let stale_signature = fx.signer.sign(&fx.tree.root_digest().unwrap());
    let new_record = Record::with_size(5_000, 250, 100);
    fx.tree
        .insert(new_record.key, new_record.id, new_record.digest(ALG))
        .unwrap();
    fx.records.push(new_record);

    let rs = fx.honest_result(&q);
    let vo = fx
        .tree
        .generate_vo(
            &q,
            |rid| {
                fx.records
                    .iter()
                    .find(|r| r.id == rid)
                    .map(|r| r.encode())
                    .unwrap()
            },
            stale_signature,
        )
        .unwrap();
    assert_eq!(
        vo.verify(&q, &rs, &fx.signer, ALG),
        Err(VerifyError::SignatureMismatch)
    );
}

#[test]
fn vo_verifies_after_inserts_and_deletes_with_fresh_signature() {
    let mut fx = Fixture::new(1_500, |i| (i % 4_000) as u32);

    // Apply updates.
    for i in 0..200u64 {
        let r = Record::with_size(10_000 + i, (i * 13 % 4_000) as u32, 100);
        fx.tree.insert(r.key, r.id, r.digest(ALG)).unwrap();
        fx.records.push(r);
    }
    for i in (0..1_500u64).step_by(7) {
        let r = fx.records[i as usize].clone();
        assert!(fx.tree.delete(r.key, r.id).unwrap());
    }
    let deleted: std::collections::HashSet<u64> = (0..1_500u64).step_by(7).collect();
    fx.records.retain(|r| !deleted.contains(&r.id));
    fx.tree.check_invariants().unwrap();

    let q = RangeQuery::new(500, 900);
    let rs = fx.honest_result(&q);
    let signature = fx.signer.sign(&fx.tree.root_digest().unwrap());
    let by_id: std::collections::HashMap<u64, Vec<u8>> =
        fx.records.iter().map(|r| (r.id, r.encode())).collect();
    let vo = fx
        .tree
        .generate_vo(&q, |rid| by_id[&rid].clone(), signature)
        .unwrap();
    assert_eq!(vo.verify(&q, &rs, &fx.signer, ALG), Ok(()));
}

#[test]
fn vo_size_is_orders_of_magnitude_above_a_digest() {
    // Figure 5's qualitative claim: the VO is in the KB range while the SAE
    // token is 20 bytes.
    let fx = Fixture::new(20_000, |i| (i % 1_000_000) as u32 * 7);
    let q = RangeQuery::new(100_000, 135_000); // ~0.5% of the populated domain
    let rs = fx.honest_result(&q);
    assert!(!rs.is_empty());
    let vo = fx.signed_vo(&q);
    assert_eq!(vo.verify(&q, &rs, &fx.signer, ALG), Ok(()));
    assert!(
        vo.size_bytes() > 100 * 20,
        "VO only {} bytes for {} results",
        vo.size_bytes(),
        rs.len()
    );
}
