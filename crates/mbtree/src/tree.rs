//! The MB-Tree: a Merkle-augmented B⁺-Tree.
//!
//! Structure and semantics follow the paper's description of the TOM
//! baseline: leaf entries carry record digests, internal entries carry the
//! digest of the child page they point to, and the digest of the root page is
//! what the data owner signs. All digests are maintained incrementally on
//! insert/delete along the affected root-to-leaf path, so updates cost
//! `O(log n)` node accesses exactly like the plain B⁺-Tree.

use crate::node::{MbEntry, MbNode, MbNodeKind, MB_INTERNAL_CAPACITY, MB_LEAF_CAPACITY};
use crate::vo::{VerificationObject, VoItem};
use sae_crypto::signer::SignatureBytes;
use sae_crypto::{Digest, HashAlgorithm};
use sae_storage::{PageId, SharedPageStore, StorageResult, PAGE_SIZE};
use sae_workload::{RangeQuery, RecordKey};

/// Shape statistics for the MB-Tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MbTreeStats {
    /// Number of levels (1 = root is a leaf).
    pub height: u32,
    /// Number of nodes (pages).
    pub node_count: u64,
    /// Number of record entries.
    pub entry_count: u64,
    /// Bytes occupied by the tree's pages.
    pub storage_bytes: u64,
}

/// A disk-based Merkle B⁺-Tree over `(key, record id, record digest)` entries.
pub struct MbTree {
    store: SharedPageStore,
    alg: HashAlgorithm,
    root: PageId,
    height: u32,
    len: u64,
    node_count: u64,
}

impl MbTree {
    /// Creates an empty MB-Tree.
    pub fn new(store: SharedPageStore, alg: HashAlgorithm) -> StorageResult<Self> {
        let root = store.allocate()?;
        store.write(root, &MbNode::new_leaf().to_page())?;
        Ok(MbTree {
            store,
            alg,
            root,
            height: 1,
            len: 0,
            node_count: 1,
        })
    }

    /// Bulk-loads from entries sorted by `(key, record id)`; each entry
    /// supplies the record digest the leaf level stores.
    pub fn bulk_load(
        store: SharedPageStore,
        alg: HashAlgorithm,
        entries: &[(RecordKey, u64, Digest)],
    ) -> StorageResult<Self> {
        assert!(
            entries
                .windows(2)
                .all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)),
            "bulk_load requires entries sorted by (key, record id)"
        );
        if entries.is_empty() {
            return Self::new(store, alg);
        }
        let mut node_count = 0u64;

        // Leaf level.
        let chunks: Vec<&[(RecordKey, u64, Digest)]> = entries.chunks(MB_LEAF_CAPACITY).collect();
        let mut pages = Vec::with_capacity(chunks.len());
        for _ in 0..chunks.len() {
            pages.push(store.allocate()?);
        }
        // (min key, page id, page digest)
        let mut level: Vec<(RecordKey, PageId, Digest)> = Vec::with_capacity(chunks.len());
        for (i, chunk) in chunks.iter().enumerate() {
            let mut node = MbNode::new_leaf();
            node.entries = chunk
                .iter()
                .map(|&(key, rid, digest)| MbEntry {
                    key,
                    ptr: rid,
                    digest,
                })
                .collect();
            node.next_leaf = if i + 1 < pages.len() {
                pages[i + 1]
            } else {
                PageId::INVALID
            };
            store.write(pages[i], &node.to_page())?;
            node_count += 1;
            level.push((chunk[0].0, pages[i], node.page_digest(alg)));
        }

        // Internal levels.
        let mut height = 1u32;
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for group in level.chunks(MB_INTERNAL_CAPACITY) {
                let mut node = MbNode::new_internal();
                node.entries = group
                    .iter()
                    .map(|&(key, page, digest)| MbEntry {
                        key,
                        ptr: page.0,
                        digest,
                    })
                    .collect();
                let page_id = store.allocate()?;
                store.write(page_id, &node.to_page())?;
                node_count += 1;
                next_level.push((group[0].0, page_id, node.page_digest(alg)));
            }
            level = next_level;
            height += 1;
        }

        Ok(MbTree {
            store,
            alg,
            root: level[0].1,
            height,
            len: entries.len() as u64,
            node_count,
        })
    }

    /// The hash algorithm used for all digests in this tree.
    pub fn hash_algorithm(&self) -> HashAlgorithm {
        self.alg
    }

    /// The page store this tree lives on.
    pub fn store(&self) -> &SharedPageStore {
        &self.store
    }

    /// Number of record entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    /// Bytes occupied by the tree's pages.
    pub fn storage_bytes(&self) -> u64 {
        self.node_count * PAGE_SIZE as u64
    }

    /// Shape statistics.
    pub fn stats(&self) -> MbTreeStats {
        MbTreeStats {
            height: self.height,
            node_count: self.node_count,
            entry_count: self.len,
            storage_bytes: self.storage_bytes(),
        }
    }

    fn read_node(&self, id: PageId) -> StorageResult<MbNode> {
        Ok(MbNode::from_page(&self.store.read(id)?))
    }

    fn write_node(&self, id: PageId, node: &MbNode) -> StorageResult<()> {
        self.store.write(id, &node.to_page())
    }

    /// The digest of the root page — the value the data owner signs.
    pub fn root_digest(&self) -> StorageResult<Digest> {
        Ok(self.read_node(self.root)?.page_digest(self.alg))
    }

    // ---------------------------------------------------------------- range

    /// All `(key, record id)` entries with `q.lower <= key <= q.upper`.
    pub fn range(&self, q: &RangeQuery) -> StorageResult<Vec<(RecordKey, u64)>> {
        let mut out = Vec::new();
        let mut current = self.root;
        for _ in 1..self.height {
            let node = self.read_node(current)?;
            let idx = node.child_index_for_lower_bound(q.lower);
            current = node.entries[idx].child();
        }
        loop {
            let node = self.read_node(current)?;
            debug_assert_eq!(node.kind, MbNodeKind::Leaf);
            for e in &node.entries {
                if e.key > q.upper {
                    return Ok(out);
                }
                if e.key >= q.lower {
                    out.push((e.key, e.ptr));
                }
            }
            if node.next_leaf.is_invalid() {
                return Ok(out);
            }
            current = node.next_leaf;
        }
    }

    /// Record ids matching the query, in `(key, record id)` order.
    pub fn range_record_ids(&self, q: &RangeQuery) -> StorageResult<Vec<u64>> {
        Ok(self.range(q)?.into_iter().map(|(_, rid)| rid).collect())
    }

    // --------------------------------------------------------------- insert

    /// Inserts a `(key, record id, record digest)` entry and updates all
    /// digests along the insertion path.
    pub fn insert(&mut self, key: RecordKey, rid: u64, digest: Digest) -> StorageResult<()> {
        if let Some((split_key, split_page, _)) = self.insert_rec(self.root, key, rid, digest)? {
            // Root split: the new root has two entries, one per half.
            let old_root = self.read_node(self.root)?;
            let new_right = self.read_node(split_page)?;
            let mut new_root = MbNode::new_internal();
            new_root.entries.push(MbEntry {
                key: old_root.min_key(),
                ptr: self.root.0,
                digest: old_root.page_digest(self.alg),
            });
            new_root.entries.push(MbEntry {
                key: split_key,
                ptr: split_page.0,
                digest: new_right.page_digest(self.alg),
            });
            let new_root_id = self.store.allocate()?;
            self.write_node(new_root_id, &new_root)?;
            self.root = new_root_id;
            self.height += 1;
            self.node_count += 1;
        }
        self.len += 1;
        Ok(())
    }

    /// Recursive insert. Returns `Some((right min key, right page, right page
    /// digest))` if the node split. The caller is responsible for refreshing
    /// its own entry for the *left* (existing) child, which it does by
    /// re-reading the child's page digest.
    fn insert_rec(
        &mut self,
        page_id: PageId,
        key: RecordKey,
        rid: u64,
        digest: Digest,
    ) -> StorageResult<Option<(RecordKey, PageId, Digest)>> {
        let mut node = self.read_node(page_id)?;
        match node.kind {
            MbNodeKind::Leaf => {
                let pos = node
                    .entries
                    .partition_point(|e| (e.key, e.ptr) <= (key, rid));
                node.entries.insert(
                    pos,
                    MbEntry {
                        key,
                        ptr: rid,
                        digest,
                    },
                );
                if node.entries.len() <= MB_LEAF_CAPACITY {
                    self.write_node(page_id, &node)?;
                    return Ok(None);
                }
                let mid = node.entries.len() / 2;
                let right_entries = node.entries.split_off(mid);
                let right_id = self.store.allocate()?;
                let mut right = MbNode::new_leaf();
                right.entries = right_entries;
                right.next_leaf = node.next_leaf;
                node.next_leaf = right_id;
                self.write_node(right_id, &right)?;
                self.write_node(page_id, &node)?;
                self.node_count += 1;
                Ok(Some((
                    right.min_key(),
                    right_id,
                    right.page_digest(self.alg),
                )))
            }
            MbNodeKind::Internal => {
                // Insert descent: last child whose min key <= key.
                let idx = node
                    .entries
                    .partition_point(|e| e.key <= key)
                    .saturating_sub(1);
                let child_id = node.entries[idx].child();
                let split = self.insert_rec(child_id, key, rid, digest)?;

                // Refresh the modified child's entry (its digest, and possibly
                // its min key if the new key became the subtree minimum).
                let child = self.read_node(child_id)?;
                node.entries[idx].digest = child.page_digest(self.alg);
                node.entries[idx].key = child.min_key().min(node.entries[idx].key);

                if let Some((split_key, split_page, split_digest)) = split {
                    node.entries.insert(
                        idx + 1,
                        MbEntry {
                            key: split_key,
                            ptr: split_page.0,
                            digest: split_digest,
                        },
                    );
                }

                if node.entries.len() <= MB_INTERNAL_CAPACITY {
                    self.write_node(page_id, &node)?;
                    return Ok(None);
                }
                let mid = node.entries.len() / 2;
                let right_entries = node.entries.split_off(mid);
                let right_id = self.store.allocate()?;
                let mut right = MbNode::new_internal();
                right.entries = right_entries;
                self.write_node(right_id, &right)?;
                self.write_node(page_id, &node)?;
                self.node_count += 1;
                Ok(Some((
                    right.min_key(),
                    right_id,
                    right.page_digest(self.alg),
                )))
            }
        }
    }

    // --------------------------------------------------------------- delete

    /// Deletes one entry matching `(key, record id)`, updating digests along
    /// the path. Returns `true` if an entry was removed.
    pub fn delete(&mut self, key: RecordKey, rid: u64) -> StorageResult<bool> {
        let (removed, root_empty) = self.delete_rec(self.root, key, rid)?;
        if removed {
            self.len -= 1;
        }
        if root_empty {
            self.write_node(self.root, &MbNode::new_leaf())?;
            self.height = 1;
            self.node_count = 1;
        } else {
            loop {
                let node = self.read_node(self.root)?;
                if node.kind == MbNodeKind::Internal && node.entries.len() == 1 {
                    self.root = node.entries[0].child();
                    self.height -= 1;
                    self.node_count -= 1;
                } else {
                    break;
                }
            }
        }
        Ok(removed)
    }

    /// Recursive delete; returns `(removed, node_became_empty)`.
    fn delete_rec(
        &mut self,
        page_id: PageId,
        key: RecordKey,
        rid: u64,
    ) -> StorageResult<(bool, bool)> {
        let mut node = self.read_node(page_id)?;
        match node.kind {
            MbNodeKind::Leaf => {
                let Some(pos) = node
                    .entries
                    .iter()
                    .position(|e| e.key == key && e.ptr == rid)
                else {
                    return Ok((false, false));
                };
                node.entries.remove(pos);
                let empty = node.entries.is_empty();
                self.write_node(page_id, &node)?;
                Ok((true, empty))
            }
            MbNodeKind::Internal => {
                // Start at the first child whose subtree may contain the key
                // and move right while following children can still hold it.
                let mut idx = node.child_index_for_lower_bound(key);
                loop {
                    let child_id = node.entries[idx].child();
                    let (removed, child_empty) = self.delete_rec(child_id, key, rid)?;
                    if removed {
                        if child_empty {
                            node.entries.remove(idx);
                            self.node_count -= 1;
                        } else {
                            let child = self.read_node(child_id)?;
                            node.entries[idx].digest = child.page_digest(self.alg);
                            node.entries[idx].key = child.min_key();
                        }
                        let empty = node.entries.is_empty();
                        self.write_node(page_id, &node)?;
                        return Ok((true, empty));
                    }
                    if idx + 1 < node.entries.len() && node.entries[idx + 1].key <= key {
                        idx += 1;
                    } else {
                        return Ok((false, false));
                    }
                }
            }
        }
    }

    // ------------------------------------------------------- VO generation

    /// Generates the verification object for `q`.
    ///
    /// `fetch_record` maps a record id to the record's canonical binary
    /// encoding (the SP reads it from its dataset heap file); it is invoked
    /// only for the (at most two) boundary records. `signature` is the data
    /// owner's signature over the current root digest.
    pub fn generate_vo<F>(
        &self,
        q: &RangeQuery,
        fetch_record: F,
        signature: SignatureBytes,
    ) -> StorageResult<VerificationObject>
    where
        F: Fn(u64) -> Vec<u8>,
    {
        let pred = self.find_predecessor(q.lower)?;
        let succ = self.find_successor(q.upper)?;
        let ext_lower = pred.map(|(k, _)| k).unwrap_or(q.lower);
        let ext_upper = succ.map(|(k, _)| k).unwrap_or(q.upper);

        let mut items = Vec::new();
        self.build_vo(
            self.root,
            q,
            ext_lower,
            ext_upper,
            pred,
            succ,
            &fetch_record,
            &mut items,
        )?;
        Ok(VerificationObject { items, signature })
    }

    #[allow(clippy::too_many_arguments)]
    fn build_vo<F>(
        &self,
        page_id: PageId,
        q: &RangeQuery,
        ext_lower: RecordKey,
        ext_upper: RecordKey,
        pred: Option<(RecordKey, u64)>,
        succ: Option<(RecordKey, u64)>,
        fetch_record: &F,
        items: &mut Vec<VoItem>,
    ) -> StorageResult<()>
    where
        F: Fn(u64) -> Vec<u8>,
    {
        let node = self.read_node(page_id)?;
        items.push(VoItem::NodeBegin);
        match node.kind {
            MbNodeKind::Leaf => {
                let mut run = 0u32;
                for e in &node.entries {
                    let is_pred = pred == Some((e.key, e.ptr));
                    let is_succ = succ == Some((e.key, e.ptr));
                    if !is_pred && !is_succ && q.contains(e.key) {
                        run += 1;
                        continue;
                    }
                    if run > 0 {
                        items.push(VoItem::ResultRun(run));
                        run = 0;
                    }
                    if is_pred || is_succ {
                        items.push(VoItem::BoundaryRecord(fetch_record(e.ptr)));
                    } else {
                        items.push(VoItem::Digest(e.digest));
                    }
                }
                if run > 0 {
                    items.push(VoItem::ResultRun(run));
                }
            }
            MbNodeKind::Internal => {
                for (i, e) in node.entries.iter().enumerate() {
                    let subtree_low = e.key;
                    let subtree_high = node
                        .entries
                        .get(i + 1)
                        .map(|n| n.key)
                        .unwrap_or(RecordKey::MAX);
                    let overlaps = subtree_low <= ext_upper && subtree_high >= ext_lower;
                    if overlaps {
                        self.build_vo(
                            e.child(),
                            q,
                            ext_lower,
                            ext_upper,
                            pred,
                            succ,
                            fetch_record,
                            items,
                        )?;
                    } else {
                        items.push(VoItem::Digest(e.digest));
                    }
                }
            }
        }
        items.push(VoItem::NodeEnd);
        Ok(())
    }

    /// The last entry (in `(key, rid)` order) whose key is strictly below
    /// `bound` — the left boundary record of a query with lower bound `bound`.
    pub fn find_predecessor(&self, bound: RecordKey) -> StorageResult<Option<(RecordKey, u64)>> {
        self.find_predecessor_in(self.root, bound)
    }

    fn find_predecessor_in(
        &self,
        page_id: PageId,
        bound: RecordKey,
    ) -> StorageResult<Option<(RecordKey, u64)>> {
        let node = self.read_node(page_id)?;
        match node.kind {
            MbNodeKind::Leaf => Ok(node
                .entries
                .iter()
                .rev()
                .find(|e| e.key < bound)
                .map(|e| (e.key, e.ptr))),
            MbNodeKind::Internal => {
                let idx = node.entries.partition_point(|e| e.key < bound);
                if idx == 0 {
                    return Ok(None);
                }
                self.find_predecessor_in(node.entries[idx - 1].child(), bound)
            }
        }
    }

    /// The first entry (in `(key, rid)` order) whose key is strictly above
    /// `bound` — the right boundary record of a query with upper bound `bound`.
    pub fn find_successor(&self, bound: RecordKey) -> StorageResult<Option<(RecordKey, u64)>> {
        self.find_successor_in(self.root, bound)
    }

    fn find_successor_in(
        &self,
        page_id: PageId,
        bound: RecordKey,
    ) -> StorageResult<Option<(RecordKey, u64)>> {
        let node = self.read_node(page_id)?;
        match node.kind {
            MbNodeKind::Leaf => Ok(node
                .entries
                .iter()
                .find(|e| e.key > bound)
                .map(|e| (e.key, e.ptr))),
            MbNodeKind::Internal => {
                let partition = node.entries.partition_point(|e| e.key <= bound);
                if partition == 0 {
                    // Every subtree starts above the bound.
                    return self.first_entry(node.entries[0].child());
                }
                let idx = partition - 1;
                if let Some(found) = self.find_successor_in(node.entries[idx].child(), bound)? {
                    return Ok(Some(found));
                }
                if partition < node.entries.len() {
                    return self.first_entry(node.entries[partition].child());
                }
                Ok(None)
            }
        }
    }

    fn first_entry(&self, page_id: PageId) -> StorageResult<Option<(RecordKey, u64)>> {
        let node = self.read_node(page_id)?;
        match node.kind {
            MbNodeKind::Leaf => Ok(node.entries.first().map(|e| (e.key, e.ptr))),
            MbNodeKind::Internal => match node.entries.first() {
                Some(e) => self.first_entry(e.child()),
                None => Ok(None),
            },
        }
    }

    // ----------------------------------------------------------- invariants

    /// Checks structural and digest invariants; panics on violation (tests).
    pub fn check_invariants(&self) -> StorageResult<()> {
        let mut entry_total = 0u64;
        let mut node_total = 0u64;
        let mut leaf_pages = Vec::new();
        self.check_node(
            self.root,
            1,
            &mut entry_total,
            &mut node_total,
            &mut leaf_pages,
        )?;
        assert_eq!(entry_total, self.len, "entry count mismatch");
        assert_eq!(node_total, self.node_count, "node count mismatch");
        for w in leaf_pages.windows(2) {
            let left = self.read_node(w[0])?;
            assert_eq!(left.next_leaf, w[1], "broken leaf chain");
        }
        if let Some(last) = leaf_pages.last() {
            assert!(self.read_node(*last)?.next_leaf.is_invalid());
        }
        Ok(())
    }

    fn check_node(
        &self,
        page_id: PageId,
        depth: u32,
        entry_total: &mut u64,
        node_total: &mut u64,
        leaf_pages: &mut Vec<PageId>,
    ) -> StorageResult<Digest> {
        *node_total += 1;
        let node = self.read_node(page_id)?;
        assert!(
            node.entries.windows(2).all(|w| w[0].key <= w[1].key),
            "entries out of key order"
        );
        match node.kind {
            MbNodeKind::Leaf => {
                assert_eq!(depth, self.height, "leaf at wrong depth");
                *entry_total += node.entries.len() as u64;
                leaf_pages.push(page_id);
            }
            MbNodeKind::Internal => {
                assert!(depth < self.height, "internal node at leaf depth");
                for e in &node.entries {
                    let child_digest =
                        self.check_node(e.child(), depth + 1, entry_total, node_total, leaf_pages)?;
                    assert_eq!(
                        e.digest,
                        child_digest,
                        "stale digest for child {:?}",
                        e.child()
                    );
                    let child = self.read_node(e.child())?;
                    assert!(
                        child.min_key() >= e.key,
                        "child min key below the separator"
                    );
                }
            }
        }
        Ok(node.page_digest(self.alg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sae_storage::MemPager;
    use sae_workload::Record;

    fn rec(id: u64, key: RecordKey) -> Record {
        Record::with_size(id, key, 64)
    }

    fn entries_for(records: &[Record]) -> Vec<(RecordKey, u64, Digest)> {
        let alg = HashAlgorithm::Sha1;
        let mut out: Vec<(RecordKey, u64, Digest)> = records
            .iter()
            .map(|r| (r.key, r.id, r.digest(alg)))
            .collect();
        out.sort_by_key(|&(k, id, _)| (k, id));
        out
    }

    #[test]
    fn empty_tree_has_a_root_digest() {
        let tree = MbTree::new(MemPager::new_shared(), HashAlgorithm::Sha1).unwrap();
        assert!(tree.is_empty());
        // Digest of an empty page is the hash of the empty string.
        assert_eq!(tree.root_digest().unwrap(), HashAlgorithm::Sha1.hash(b""));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_and_range_match_oracle() {
        let records: Vec<Record> = (0..2_000u64)
            .map(|i| rec(i, (i * 7 % 5_000) as u32))
            .collect();
        let entries = entries_for(&records);
        let tree =
            MbTree::bulk_load(MemPager::new_shared(), HashAlgorithm::Sha1, &entries).unwrap();
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 2_000);

        let q = RangeQuery::new(1_000, 1_500);
        let got = tree.range(&q).unwrap();
        let expected: Vec<(RecordKey, u64)> = entries
            .iter()
            .filter(|(k, _, _)| q.contains(*k))
            .map(|&(k, id, _)| (k, id))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn incremental_inserts_match_bulk_load_root_digest() {
        let records: Vec<Record> = (0..800u64).map(|i| rec(i, (i % 300) as u32)).collect();
        let entries = entries_for(&records);

        let bulk =
            MbTree::bulk_load(MemPager::new_shared(), HashAlgorithm::Sha1, &entries).unwrap();

        let mut incremental = MbTree::new(MemPager::new_shared(), HashAlgorithm::Sha1).unwrap();
        for &(k, id, d) in &entries {
            incremental.insert(k, id, d).unwrap();
        }
        incremental.check_invariants().unwrap();

        // Same logical content => same query answers. (Root digests may differ
        // because node boundaries differ between bulk loading and splits.)
        for q in [RangeQuery::new(0, 300), RangeQuery::new(100, 110)] {
            assert_eq!(bulk.range(&q).unwrap(), incremental.range(&q).unwrap());
        }
    }

    #[test]
    fn insert_updates_root_digest() {
        let mut tree = MbTree::new(MemPager::new_shared(), HashAlgorithm::Sha1).unwrap();
        let r1 = rec(1, 10);
        let r2 = rec(2, 20);
        tree.insert(r1.key, r1.id, r1.digest(HashAlgorithm::Sha1))
            .unwrap();
        let d1 = tree.root_digest().unwrap();
        tree.insert(r2.key, r2.id, r2.digest(HashAlgorithm::Sha1))
            .unwrap();
        let d2 = tree.root_digest().unwrap();
        assert_ne!(d1, d2);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn digests_stay_consistent_across_splits() {
        let mut tree = MbTree::new(MemPager::new_shared(), HashAlgorithm::Sha1).unwrap();
        let n = 3 * MB_LEAF_CAPACITY as u64 + 17;
        for i in 0..n {
            let r = rec(i, (i % 977) as u32);
            tree.insert(r.key, r.id, r.digest(HashAlgorithm::Sha1))
                .unwrap();
        }
        assert!(tree.height() >= 2);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn delete_maintains_digests_and_content() {
        let records: Vec<Record> = (0..500u64).map(|i| rec(i, (i % 100) as u32)).collect();
        let entries = entries_for(&records);
        let store = MemPager::new_shared();
        let mut tree = MbTree::bulk_load(store, HashAlgorithm::Sha1, &entries).unwrap();

        let before = tree.root_digest().unwrap();
        assert!(tree.delete(records[42].key, records[42].id).unwrap());
        assert!(!tree.delete(records[42].key, records[42].id).unwrap());
        let after = tree.root_digest().unwrap();
        assert_ne!(before, after);
        assert_eq!(tree.len(), 499);
        tree.check_invariants().unwrap();

        let q = RangeQuery::new(records[42].key, records[42].key);
        assert!(!tree
            .range(&q)
            .unwrap()
            .iter()
            .any(|&(_, id)| id == records[42].id));
    }

    #[test]
    fn delete_everything_then_reuse() {
        let records: Vec<Record> = (0..300u64).map(|i| rec(i, i as u32)).collect();
        let entries = entries_for(&records);
        let mut tree =
            MbTree::bulk_load(MemPager::new_shared(), HashAlgorithm::Sha1, &entries).unwrap();
        for r in &records {
            assert!(tree.delete(r.key, r.id).unwrap());
        }
        assert!(tree.is_empty());
        tree.check_invariants().unwrap();
        let r = rec(1000, 5);
        tree.insert(r.key, r.id, r.digest(HashAlgorithm::Sha1))
            .unwrap();
        assert_eq!(
            tree.range(&RangeQuery::new(0, 10)).unwrap(),
            vec![(5, 1000)]
        );
    }

    #[test]
    fn predecessor_and_successor_queries() {
        let records: Vec<Record> = [10u32, 20, 20, 30, 40]
            .iter()
            .enumerate()
            .map(|(i, &k)| rec(i as u64, k))
            .collect();
        let entries = entries_for(&records);
        let tree =
            MbTree::bulk_load(MemPager::new_shared(), HashAlgorithm::Sha1, &entries).unwrap();

        assert_eq!(tree.find_predecessor(10).unwrap(), None);
        assert_eq!(tree.find_predecessor(15).unwrap(), Some((10, 0)));
        assert_eq!(tree.find_predecessor(21).unwrap(), Some((20, 2)));
        assert_eq!(tree.find_successor(40).unwrap(), None);
        assert_eq!(tree.find_successor(30).unwrap(), Some((40, 4)));
        assert_eq!(tree.find_successor(10).unwrap(), Some((20, 1)));
        assert_eq!(tree.find_successor(0).unwrap(), Some((10, 0)));
    }

    #[test]
    fn predecessor_successor_on_larger_random_tree() {
        let mut rng = StdRng::seed_from_u64(5);
        let records: Vec<Record> = (0..3_000u64)
            .map(|i| rec(i, rng.gen_range(0..10_000u32)))
            .collect();
        let entries = entries_for(&records);
        let tree =
            MbTree::bulk_load(MemPager::new_shared(), HashAlgorithm::Sha1, &entries).unwrap();

        for bound in [0u32, 1, 57, 5_000, 9_999, 10_000] {
            let pred = tree.find_predecessor(bound).unwrap();
            let expected_pred = entries
                .iter()
                .filter(|(k, _, _)| *k < bound)
                .map(|&(k, id, _)| (k, id))
                .next_back();
            assert_eq!(pred, expected_pred, "pred of {bound}");

            let succ = tree.find_successor(bound).unwrap();
            let expected_succ = entries
                .iter()
                .filter(|(k, _, _)| *k > bound)
                .map(|&(k, id, _)| (k, id))
                .next();
            assert_eq!(succ, expected_succ, "succ of {bound}");
        }
    }

    #[test]
    fn stats_report_shape() {
        let records: Vec<Record> = (0..1_000u64).map(|i| rec(i, i as u32)).collect();
        let entries = entries_for(&records);
        let tree =
            MbTree::bulk_load(MemPager::new_shared(), HashAlgorithm::Sha1, &entries).unwrap();
        let stats = tree.stats();
        assert_eq!(stats.entry_count, 1_000);
        assert_eq!(stats.storage_bytes, stats.node_count * PAGE_SIZE as u64);
        // 1000 / 127 = 8 leaves + 1 root.
        assert_eq!(stats.node_count, 9);
        assert_eq!(stats.height, 2);
    }
}
