//! On-page node layout for the MB-Tree.
//!
//! Both node kinds use a *min-key* layout: every entry describes one child (or
//! one record) together with its authentication digest, and carries the
//! minimum key of the subtree (or the record key). Compared to the plain
//! B⁺-Tree's 12-byte entries, every MB-Tree entry additionally stores a
//! 20-byte digest, which cuts the fanout from 340 to 127 — exactly the
//! structural penalty the paper attributes TOM's higher SP cost to.
//!
//! ```text
//! leaf:      [type:1][pad:1][count:2][next_leaf:8] [ (key:4, rid:8, digest:20) * count ]
//! internal:  [type:1][pad:1][count:2][pad:8]       [ (key:4, child:8, digest:20) * count ]
//! ```

use sae_crypto::{Digest, DIGEST_LEN};
use sae_storage::{Page, PageId, PAGE_SIZE};
use sae_workload::RecordKey;

const HEADER_LEN: usize = 12;
/// Size of one entry (key + pointer + digest) for both node kinds.
const ENTRY_LEN: usize = 4 + 8 + DIGEST_LEN;

/// Maximum number of entries in a leaf node.
pub const MB_LEAF_CAPACITY: usize = (PAGE_SIZE - HEADER_LEN) / ENTRY_LEN;
/// Maximum number of entries in an internal node.
pub const MB_INTERNAL_CAPACITY: usize = (PAGE_SIZE - HEADER_LEN) / ENTRY_LEN;

/// Node kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MbNodeKind {
    /// Leaf: entries are `(record key, record id, record digest)`.
    Leaf,
    /// Internal: entries are `(subtree min key, child page, child-page digest)`.
    Internal,
}

/// One decoded entry of an MB-Tree node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MbEntry {
    /// Record key (leaf) or minimum key of the child subtree (internal).
    pub key: RecordKey,
    /// Record id (leaf) or child page id (internal; stored as the raw u64).
    pub ptr: u64,
    /// Record digest (leaf) or digest over the child page's digests (internal).
    pub digest: Digest,
}

impl MbEntry {
    /// The entry's pointer interpreted as a child page id.
    pub fn child(&self) -> PageId {
        PageId(self.ptr)
    }
}

/// An in-memory, decoded MB-Tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MbNode {
    /// Leaf or internal.
    pub kind: MbNodeKind,
    /// Leaf only: next leaf in key order ([`PageId::INVALID`] if last).
    pub next_leaf: PageId,
    /// The entries, sorted by `(key, ptr)`.
    pub entries: Vec<MbEntry>,
}

impl MbNode {
    /// Creates an empty leaf.
    pub fn new_leaf() -> Self {
        MbNode {
            kind: MbNodeKind::Leaf,
            next_leaf: PageId::INVALID,
            entries: Vec::new(),
        }
    }

    /// Creates an empty internal node.
    pub fn new_internal() -> Self {
        MbNode {
            kind: MbNodeKind::Internal,
            next_leaf: PageId::INVALID,
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the node is at capacity.
    pub fn is_full(&self) -> bool {
        match self.kind {
            MbNodeKind::Leaf => self.entries.len() >= MB_LEAF_CAPACITY,
            MbNodeKind::Internal => self.entries.len() >= MB_INTERNAL_CAPACITY,
        }
    }

    /// Minimum key of this node (panics on an empty node).
    pub fn min_key(&self) -> RecordKey {
        self.entries[0].key
    }

    /// The digest associated with this page: the hash of the concatenation of
    /// the digests stored in it (the quantity the parent entry carries, and —
    /// for the root — the quantity the data owner signs).
    pub fn page_digest(&self, alg: sae_crypto::HashAlgorithm) -> Digest {
        alg.hash_concat(self.entries.iter().map(|e| e.digest.as_bytes().as_slice()))
    }

    /// Child index to descend into when searching for the first occurrence of
    /// `key`: the first child whose subtree may contain `key`.
    ///
    /// Because duplicates may straddle a split, a subtree can hold keys equal
    /// to the *next* child's minimum key, so the correct starting child is the
    /// one preceding the first child whose minimum is `>= key`.
    pub fn child_index_for_lower_bound(&self, key: RecordKey) -> usize {
        debug_assert_eq!(self.kind, MbNodeKind::Internal);
        let idx = self.entries.partition_point(|e| e.key < key);
        idx.saturating_sub(1)
    }

    /// Serializes the node into a page.
    pub fn to_page(&self) -> Page {
        let mut page = Page::new();
        page.write_u8(0, if self.kind == MbNodeKind::Leaf { 0 } else { 1 });
        page.write_u16(2, self.entries.len() as u16);
        page.write_page_id(4, self.next_leaf);
        let mut off = HEADER_LEN;
        for e in &self.entries {
            page.write_u32(off, e.key);
            page.write_u64(off + 4, e.ptr);
            page.write_bytes(off + 12, e.digest.as_bytes());
            off += ENTRY_LEN;
        }
        page
    }

    /// Decodes a node from a page.
    pub fn from_page(page: &Page) -> Self {
        let kind = if page.read_u8(0) == 0 {
            MbNodeKind::Leaf
        } else {
            MbNodeKind::Internal
        };
        let count = page.read_u16(2) as usize;
        let next_leaf = page.read_page_id(4);
        let mut entries = Vec::with_capacity(count);
        let mut off = HEADER_LEN;
        for _ in 0..count {
            let key = page.read_u32(off);
            let ptr = page.read_u64(off + 4);
            let digest = Digest::from_slice(page.read_bytes(off + 12, DIGEST_LEN))
                // analyzer:allow(no-unwrap-in-lib, read_bytes returns exactly DIGEST_LEN bytes so from_slice cannot fail)
                .expect("digest length is fixed");
            entries.push(MbEntry { key, ptr, digest });
            off += ENTRY_LEN;
        }
        MbNode {
            kind,
            next_leaf,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_crypto::HashAlgorithm;

    fn digest(tag: u8) -> Digest {
        Digest::new([tag; DIGEST_LEN])
    }

    #[test]
    fn capacity_reflects_digest_overhead() {
        assert_eq!(MB_LEAF_CAPACITY, 127);
        assert_eq!(MB_INTERNAL_CAPACITY, 127);
        // The MB-Tree fanout is roughly a third of the plain B+-Tree's 340
        // (see sae-btree), as the paper's Figure 6 discussion assumes.
        const { assert!(MB_INTERNAL_CAPACITY < 340 / 2) };
    }

    #[test]
    fn leaf_round_trip() {
        let mut node = MbNode::new_leaf();
        node.next_leaf = PageId(9);
        for i in 0..5u64 {
            node.entries.push(MbEntry {
                key: i as u32,
                ptr: i + 100,
                digest: digest(i as u8),
            });
        }
        let decoded = MbNode::from_page(&node.to_page());
        assert_eq!(decoded, node);
        assert_eq!(decoded.min_key(), 0);
    }

    #[test]
    fn internal_round_trip_and_descent() {
        let mut node = MbNode::new_internal();
        for (i, key) in [10u32, 20, 20, 30].iter().enumerate() {
            node.entries.push(MbEntry {
                key: *key,
                ptr: i as u64,
                digest: digest(i as u8),
            });
        }
        let decoded = MbNode::from_page(&node.to_page());
        assert_eq!(decoded, node);
        assert_eq!(decoded.entries[2].child(), PageId(2));
        // Lower-bound descent: first child whose subtree may contain the key
        // (duplicates may be equal to the next child's minimum).
        assert_eq!(node.child_index_for_lower_bound(5), 0);
        assert_eq!(node.child_index_for_lower_bound(10), 0);
        assert_eq!(node.child_index_for_lower_bound(19), 0);
        assert_eq!(node.child_index_for_lower_bound(20), 0);
        assert_eq!(node.child_index_for_lower_bound(25), 2);
        assert_eq!(node.child_index_for_lower_bound(99), 3);
    }

    #[test]
    fn page_digest_is_hash_of_concatenated_digests() {
        let mut node = MbNode::new_leaf();
        node.entries.push(MbEntry {
            key: 1,
            ptr: 1,
            digest: digest(0xAA),
        });
        node.entries.push(MbEntry {
            key: 2,
            ptr: 2,
            digest: digest(0xBB),
        });
        let alg = HashAlgorithm::Sha1;
        let mut concat = Vec::new();
        concat.extend_from_slice(digest(0xAA).as_bytes());
        concat.extend_from_slice(digest(0xBB).as_bytes());
        assert_eq!(node.page_digest(alg), alg.hash(&concat));
    }

    #[test]
    fn page_digest_changes_with_entry_order_and_content() {
        let alg = HashAlgorithm::Sha1;
        let mut a = MbNode::new_leaf();
        a.entries.push(MbEntry {
            key: 1,
            ptr: 1,
            digest: digest(1),
        });
        a.entries.push(MbEntry {
            key: 2,
            ptr: 2,
            digest: digest(2),
        });
        let mut b = a.clone();
        b.entries.swap(0, 1);
        assert_ne!(a.page_digest(alg), b.page_digest(alg));
        let mut c = a.clone();
        c.entries[0].digest = digest(9);
        assert_ne!(a.page_digest(alg), c.page_digest(alg));
    }

    #[test]
    fn full_node_round_trip() {
        let mut node = MbNode::new_internal();
        for i in 0..MB_INTERNAL_CAPACITY as u64 {
            node.entries.push(MbEntry {
                key: i as u32,
                ptr: i,
                digest: digest((i % 251) as u8),
            });
        }
        assert!(node.is_full());
        assert_eq!(MbNode::from_page(&node.to_page()), node);
    }
}
