//! Verification objects (VOs) and their client-side verification.
//!
//! A [`VerificationObject`] is the authentication payload the SP attaches to a
//! query result under TOM. It is a pre-order token stream of the part of the
//! MB-Tree the query touches:
//!
//! * [`VoItem::NodeBegin`] / [`VoItem::NodeEnd`] delimit one tree page;
//! * [`VoItem::Digest`] stands for a pruned sibling entry (its stored digest);
//! * [`VoItem::BoundaryRecord`] carries the full binary encoding of one of the
//!   two boundary records that enclose the result (the paper's `r_{i-1}`,
//!   `r_{j+1}`);
//! * [`VoItem::ResultRun`] says "the next *n* records of the result go here" —
//!   the records themselves travel in the result set, not in the VO.
//!
//! The client replays the stream, hashing result and boundary records and
//! recombining digests bottom-up, to re-construct the root digest, then checks
//! the data owner's signature over it ([`VerificationObject::verify`]).
//! Soundness follows from collision resistance; completeness from the boundary
//! records plus the structural rule that no pruned digest may appear between
//! the boundaries (any hidden result record would have to surface as exactly
//! such a digest, or break the root digest).

use sae_crypto::signer::{SignatureBytes, Verifier};
use sae_crypto::{Digest, HashAlgorithm, DIGEST_LEN};
use sae_workload::{RangeQuery, Record};

/// One token of the VO stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VoItem {
    /// Start of a tree page.
    NodeBegin,
    /// End of a tree page.
    NodeEnd,
    /// Digest of a pruned entry (sibling subtree or non-qualifying record).
    Digest(Digest),
    /// Full binary encoding of a boundary record.
    BoundaryRecord(Vec<u8>),
    /// The next `n` result records (taken from the result set) belong here.
    ResultRun(u32),
}

impl VoItem {
    /// Size of this item on the wire, in bytes (1 tag byte plus payload).
    pub fn wire_size(&self) -> usize {
        match self {
            VoItem::NodeBegin | VoItem::NodeEnd => 1,
            VoItem::Digest(_) => 1 + DIGEST_LEN,
            VoItem::BoundaryRecord(bytes) => 1 + 4 + bytes.len(),
            VoItem::ResultRun(_) => 1 + 4,
        }
    }
}

/// Errors reported by client-side VO verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The VO token stream is structurally malformed.
    Malformed(&'static str),
    /// A result record could not be decoded.
    BadRecordEncoding,
    /// A result record's key falls outside the query range.
    ResultOutOfRange,
    /// Result records are not sorted by `(key, id)`.
    ResultNotSorted,
    /// The number of result records does not match the VO's result runs.
    ResultCountMismatch {
        /// Records the VO accounts for.
        expected: usize,
        /// Records actually supplied.
        actual: usize,
    },
    /// A boundary record's key lies inside the query range.
    BoundaryInRange,
    /// More than one boundary record on one side of the result.
    TooManyBoundaries,
    /// A pruned digest appears between the boundary records, i.e. inside the
    /// region that must be fully covered by the result (completeness attack).
    CompletenessGap,
    /// The reconstructed root digest does not verify against the signature.
    SignatureMismatch,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Malformed(what) => write!(f, "malformed VO: {what}"),
            VerifyError::BadRecordEncoding => write!(f, "result record failed to decode"),
            VerifyError::ResultOutOfRange => write!(f, "result record outside the query range"),
            VerifyError::ResultNotSorted => write!(f, "result records not sorted by (key, id)"),
            VerifyError::ResultCountMismatch { expected, actual } => write!(
                f,
                "result count mismatch: VO covers {expected} records, got {actual}"
            ),
            VerifyError::BoundaryInRange => write!(f, "boundary record inside the query range"),
            VerifyError::TooManyBoundaries => write!(f, "more than one boundary record per side"),
            VerifyError::CompletenessGap => {
                write!(f, "pruned digest between the boundary records")
            }
            VerifyError::SignatureMismatch => write!(f, "root digest does not match the signature"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// The verification object for one range query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerificationObject {
    /// Pre-order token stream of the traversed part of the tree.
    pub items: Vec<VoItem>,
    /// The data owner's signature over the root digest.
    pub signature: SignatureBytes,
}

impl VerificationObject {
    /// Total size of the VO on the wire, in bytes (items + signature).
    ///
    /// This is the "communication overhead" quantity of the paper's Figure 5
    /// for TOM (the result records themselves are not part of the VO).
    pub fn size_bytes(&self) -> usize {
        self.items.iter().map(VoItem::wire_size).sum::<usize>() + self.signature.len()
    }

    /// Number of digests carried by the VO.
    pub fn digest_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, VoItem::Digest(_)))
            .count()
    }

    /// Verifies the result set against this VO.
    ///
    /// `result_records` must be the binary encodings of the records the SP
    /// returned, in `(key, id)` order. On success the result is proven sound
    /// and complete with respect to the signed root digest.
    pub fn verify(
        &self,
        query: &RangeQuery,
        result_records: &[Vec<u8>],
        verifier: &dyn Verifier,
        alg: HashAlgorithm,
    ) -> Result<(), VerifyError> {
        // ---- 1. Decode and sanity-check the result records themselves.
        let mut decoded = Vec::with_capacity(result_records.len());
        for bytes in result_records {
            let record = Record::decode(bytes).ok_or(VerifyError::BadRecordEncoding)?;
            if !query.contains(record.key) {
                return Err(VerifyError::ResultOutOfRange);
            }
            decoded.push(record);
        }
        // Keys must be non-decreasing (the order of equal-key records is the
        // tree's leaf order, which need not be sorted by id).
        if !decoded.windows(2).all(|w| w[0].key <= w[1].key) {
            return Err(VerifyError::ResultNotSorted);
        }

        // ---- 2. Structural completeness checks on the flat stream.
        self.check_completeness(query)?;

        // ---- 3. Reconstruct the root digest.
        let mut pos = 0usize;
        let mut consumed = 0usize;
        let root = self.reconstruct(&mut pos, result_records, &mut consumed, alg)?;
        if pos != self.items.len() {
            return Err(VerifyError::Malformed("trailing items after the root page"));
        }
        if consumed != result_records.len() {
            return Err(VerifyError::ResultCountMismatch {
                expected: consumed,
                actual: result_records.len(),
            });
        }

        // ---- 4. Check the owner's signature over the reconstructed root.
        if !verifier.verify(&root, &self.signature) {
            return Err(VerifyError::SignatureMismatch);
        }
        Ok(())
    }

    /// Enforces the boundary/pruning rules that give completeness:
    /// * at most one boundary record before the first result run and at most
    ///   one after the last, each with a key outside the query range;
    /// * no pruned digest may appear after the left boundary (or after the
    ///   start, if the result begins at the first record of the dataset) and
    ///   before the right boundary (or the end, symmetrically).
    fn check_completeness(&self, query: &RangeQuery) -> Result<(), VerifyError> {
        let first_run = self
            .items
            .iter()
            .position(|i| matches!(i, VoItem::ResultRun(_)));
        let last_run = self
            .items
            .iter()
            .rposition(|i| matches!(i, VoItem::ResultRun(_)));

        // Identify boundary records and check their keys.
        let mut left_boundary: Option<usize> = None;
        let mut right_boundary: Option<usize> = None;
        for (idx, item) in self.items.iter().enumerate() {
            let VoItem::BoundaryRecord(bytes) = item else {
                continue;
            };
            let record = Record::decode(bytes).ok_or(VerifyError::BadRecordEncoding)?;
            if query.contains(record.key) {
                return Err(VerifyError::BoundaryInRange);
            }
            let is_left = match first_run {
                Some(first) => idx < first,
                // No result: classify by key side.
                None => record.key < query.lower,
            };
            let slot = if is_left {
                &mut left_boundary
            } else {
                &mut right_boundary
            };
            if slot.is_some() {
                return Err(VerifyError::TooManyBoundaries);
            }
            *slot = Some(idx);
        }

        // The protected region: everything after the left anchor and before
        // the right anchor must be free of pruned digests.
        let lo = match (left_boundary, first_run) {
            (Some(b), _) => b,
            (None, Some(first)) => {
                // Result starts at the very beginning of the dataset: nothing
                // may be pruned before it.
                if self.items[..first]
                    .iter()
                    .any(|i| matches!(i, VoItem::Digest(_)))
                {
                    return Err(VerifyError::CompletenessGap);
                }
                first
            }
            (None, None) => 0,
        };
        let hi = match (right_boundary, last_run) {
            (Some(b), _) => b,
            (None, Some(last)) => {
                if self.items[last + 1..]
                    .iter()
                    .any(|i| matches!(i, VoItem::Digest(_)))
                {
                    return Err(VerifyError::CompletenessGap);
                }
                last
            }
            (None, None) => self.items.len(),
        };
        if lo < hi
            && self.items[lo + 1..hi]
                .iter()
                .any(|i| matches!(i, VoItem::Digest(_)))
        {
            return Err(VerifyError::CompletenessGap);
        }
        Ok(())
    }

    /// Recursively reconstructs the digest of the page starting at `pos`.
    fn reconstruct(
        &self,
        pos: &mut usize,
        result_records: &[Vec<u8>],
        consumed: &mut usize,
        alg: HashAlgorithm,
    ) -> Result<Digest, VerifyError> {
        match self.items.get(*pos) {
            Some(VoItem::NodeBegin) => *pos += 1,
            _ => return Err(VerifyError::Malformed("expected NodeBegin")),
        }
        let mut component_digests: Vec<Digest> = Vec::new();
        loop {
            match self.items.get(*pos) {
                Some(VoItem::NodeEnd) => {
                    *pos += 1;
                    let digest =
                        alg.hash_concat(component_digests.iter().map(|d| d.as_bytes().as_slice()));
                    return Ok(digest);
                }
                Some(VoItem::NodeBegin) => {
                    let child = self.reconstruct(pos, result_records, consumed, alg)?;
                    component_digests.push(child);
                }
                Some(VoItem::Digest(d)) => {
                    *pos += 1;
                    component_digests.push(*d);
                }
                Some(VoItem::BoundaryRecord(bytes)) => {
                    *pos += 1;
                    component_digests.push(alg.hash(bytes));
                }
                Some(VoItem::ResultRun(n)) => {
                    *pos += 1;
                    for _ in 0..*n {
                        let bytes = result_records.get(*consumed).ok_or(
                            VerifyError::ResultCountMismatch {
                                expected: *consumed + 1,
                                actual: result_records.len(),
                            },
                        )?;
                        component_digests.push(alg.hash(bytes));
                        *consumed += 1;
                    }
                }
                None => return Err(VerifyError::Malformed("unterminated page")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_crypto::signer::{MacSigner, Signer};

    fn d(tag: u8) -> Digest {
        Digest::new([tag; DIGEST_LEN])
    }

    #[test]
    fn wire_sizes_are_accounted() {
        assert_eq!(VoItem::NodeBegin.wire_size(), 1);
        assert_eq!(VoItem::NodeEnd.wire_size(), 1);
        assert_eq!(VoItem::Digest(d(1)).wire_size(), 21);
        assert_eq!(VoItem::ResultRun(5).wire_size(), 5);
        assert_eq!(VoItem::BoundaryRecord(vec![0u8; 500]).wire_size(), 505);

        let vo = VerificationObject {
            items: vec![
                VoItem::NodeBegin,
                VoItem::Digest(d(1)),
                VoItem::ResultRun(2),
                VoItem::NodeEnd,
            ],
            signature: SignatureBytes(vec![0u8; 64]),
        };
        assert_eq!(vo.size_bytes(), 1 + 21 + 5 + 1 + 64);
        assert_eq!(vo.digest_count(), 1);
    }

    #[test]
    fn reconstruct_single_leaf_vo() {
        // A VO over a single-leaf tree: two result records and one pruned
        // record digest on each side, with boundary records omitted (the
        // pruned digests here *are* outside the protected region because
        // boundary records replace them in real VOs; this test exercises the
        // digest math only).
        let alg = HashAlgorithm::Sha1;
        let signer = MacSigner::new(b"owner-key".to_vec());

        let records: Vec<Record> = (0..4u64)
            .map(|i| Record::with_size(i, 10 + i as u32 * 10, 40))
            .collect();
        let digests: Vec<Digest> = records.iter().map(|r| r.digest(alg)).collect();
        let root = alg.hash_concat(digests.iter().map(|x| x.as_bytes().as_slice()));
        let signature = signer.sign(&root);

        // Query [20, 30] -> results are records 1 and 2; boundaries are 0 and 3.
        let vo = VerificationObject {
            items: vec![
                VoItem::NodeBegin,
                VoItem::BoundaryRecord(records[0].encode()),
                VoItem::ResultRun(2),
                VoItem::BoundaryRecord(records[3].encode()),
                VoItem::NodeEnd,
            ],
            signature,
        };
        let query = RangeQuery::new(20, 30);
        let rs: Vec<Vec<u8>> = records[1..3].iter().map(|r| r.encode()).collect();
        assert_eq!(vo.verify(&query, &rs, &signer, alg), Ok(()));
    }

    #[test]
    fn tampered_result_record_is_rejected() {
        let alg = HashAlgorithm::Sha1;
        let signer = MacSigner::new(b"owner-key".to_vec());
        let records: Vec<Record> = (0..4u64)
            .map(|i| Record::with_size(i, 10 + i as u32 * 10, 40))
            .collect();
        let digests: Vec<Digest> = records.iter().map(|r| r.digest(alg)).collect();
        let root = alg.hash_concat(digests.iter().map(|x| x.as_bytes().as_slice()));
        let vo = VerificationObject {
            items: vec![
                VoItem::NodeBegin,
                VoItem::BoundaryRecord(records[0].encode()),
                VoItem::ResultRun(2),
                VoItem::BoundaryRecord(records[3].encode()),
                VoItem::NodeEnd,
            ],
            signature: signer.sign(&root),
        };
        let query = RangeQuery::new(20, 30);

        // Modify one returned record's payload (soundness attack).
        let mut tampered = Record::with_size(1, 20, 40);
        tampered.payload[0] ^= 0xFF;
        let rs = vec![tampered.encode(), records[2].encode()];
        assert_eq!(
            vo.verify(&query, &rs, &signer, alg),
            Err(VerifyError::SignatureMismatch)
        );
    }

    #[test]
    fn hidden_record_is_rejected_as_completeness_gap() {
        let alg = HashAlgorithm::Sha1;
        let signer = MacSigner::new(b"owner-key".to_vec());
        let records: Vec<Record> = (0..4u64)
            .map(|i| Record::with_size(i, 10 + i as u32 * 10, 40))
            .collect();
        let digests: Vec<Digest> = records.iter().map(|r| r.digest(alg)).collect();
        let root = alg.hash_concat(digests.iter().map(|x| x.as_bytes().as_slice()));
        // The SP hides record 1 by shipping its digest instead of including it
        // in the result run.
        let vo = VerificationObject {
            items: vec![
                VoItem::NodeBegin,
                VoItem::BoundaryRecord(records[0].encode()),
                VoItem::Digest(records[1].digest(alg)),
                VoItem::ResultRun(1),
                VoItem::BoundaryRecord(records[3].encode()),
                VoItem::NodeEnd,
            ],
            signature: signer.sign(&root),
        };
        let query = RangeQuery::new(20, 30);
        let rs = vec![records[2].encode()];
        assert_eq!(
            vo.verify(&query, &rs, &signer, alg),
            Err(VerifyError::CompletenessGap)
        );
    }

    #[test]
    fn out_of_range_results_and_boundaries_are_rejected() {
        let alg = HashAlgorithm::Sha1;
        let signer = MacSigner::new(b"k".to_vec());
        let vo = VerificationObject {
            items: vec![VoItem::NodeBegin, VoItem::ResultRun(1), VoItem::NodeEnd],
            signature: signer.sign(&d(0)),
        };
        let query = RangeQuery::new(100, 200);
        // Result outside the range.
        let rs = vec![Record::with_size(1, 500, 40).encode()];
        assert_eq!(
            vo.verify(&query, &rs, &signer, alg),
            Err(VerifyError::ResultOutOfRange)
        );
        // Boundary inside the range.
        let vo2 = VerificationObject {
            items: vec![
                VoItem::NodeBegin,
                VoItem::BoundaryRecord(Record::with_size(0, 150, 40).encode()),
                VoItem::ResultRun(1),
                VoItem::NodeEnd,
            ],
            signature: signer.sign(&d(0)),
        };
        let rs2 = vec![Record::with_size(1, 150, 40).encode()];
        assert_eq!(
            vo2.verify(&query, &rs2, &signer, alg),
            Err(VerifyError::BoundaryInRange)
        );
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let alg = HashAlgorithm::Sha1;
        let signer = MacSigner::new(b"k".to_vec());
        let query = RangeQuery::new(0, 10);

        let unterminated = VerificationObject {
            items: vec![VoItem::NodeBegin, VoItem::Digest(d(1))],
            signature: signer.sign(&d(0)),
        };
        assert!(unterminated.verify(&query, &[], &signer, alg).is_err());
        let unterminated_empty = VerificationObject {
            items: vec![VoItem::NodeBegin],
            signature: signer.sign(&d(0)),
        };
        assert!(matches!(
            unterminated_empty.verify(&query, &[], &signer, alg),
            Err(VerifyError::Malformed(_))
        ));

        let missing_begin = VerificationObject {
            items: vec![VoItem::Digest(d(1))],
            signature: signer.sign(&d(0)),
        };
        assert!(matches!(
            missing_begin.verify(&query, &[], &signer, alg),
            Err(VerifyError::Malformed(_))
        ));

        // Trailing garbage after the root page is rejected (either as a
        // structural error or as a completeness gap, depending on the item).
        let trailing = VerificationObject {
            items: vec![VoItem::NodeBegin, VoItem::NodeEnd, VoItem::Digest(d(2))],
            signature: signer.sign(&alg.hash_concat(std::iter::empty::<&[u8]>())),
        };
        assert!(trailing.verify(&query, &[], &signer, alg).is_err());
        let trailing_marker = VerificationObject {
            items: vec![VoItem::NodeBegin, VoItem::NodeEnd, VoItem::NodeBegin],
            signature: signer.sign(&alg.hash_concat(std::iter::empty::<&[u8]>())),
        };
        assert!(matches!(
            trailing_marker.verify(&query, &[], &signer, alg),
            Err(VerifyError::Malformed(_))
        ));
    }

    #[test]
    fn result_count_mismatch_is_reported() {
        let alg = HashAlgorithm::Sha1;
        let signer = MacSigner::new(b"k".to_vec());
        let query = RangeQuery::new(0, 100);
        let record = Record::with_size(0, 50, 40);
        let root = alg.hash_concat([record.digest(alg)].iter().map(|x| x.as_bytes().as_slice()));
        let vo = VerificationObject {
            items: vec![VoItem::NodeBegin, VoItem::ResultRun(1), VoItem::NodeEnd],
            signature: signer.sign(&root),
        };
        // Too few records supplied.
        assert!(matches!(
            vo.verify(&query, &[], &signer, alg),
            Err(VerifyError::ResultCountMismatch { .. })
        ));
        // Too many records supplied.
        let extra = Record::with_size(1, 60, 40);
        assert!(matches!(
            vo.verify(&query, &[record.encode(), extra.encode()], &signer, alg),
            Err(VerifyError::ResultCountMismatch { .. })
        ));
    }

    #[test]
    fn unsorted_results_are_rejected() {
        let alg = HashAlgorithm::Sha1;
        let signer = MacSigner::new(b"k".to_vec());
        let query = RangeQuery::new(0, 100);
        let a = Record::with_size(0, 50, 40);
        let b = Record::with_size(1, 40, 40);
        let vo = VerificationObject {
            items: vec![VoItem::NodeBegin, VoItem::ResultRun(2), VoItem::NodeEnd],
            signature: signer.sign(&d(0)),
        };
        assert_eq!(
            vo.verify(&query, &[a.encode(), b.encode()], &signer, alg),
            Err(VerifyError::ResultNotSorted)
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerifyError::ResultCountMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(VerifyError::SignatureMismatch
            .to_string()
            .contains("signature"));
    }
}
