//! # sae-mbtree
//!
//! The MB-Tree (Merkle B⁺-Tree) and its verification objects — the
//! authenticated data structure of the **traditional outsourcing model (TOM)**
//! the paper compares SAE against.
//!
//! Following the paper's description (§I, after Li et al. SIGMOD'06):
//!
//! * every leaf entry is associated with the digest of the binary
//!   representation of its record;
//! * every intermediate entry is associated with a digest computed over the
//!   concatenation of the digests stored in the child page it points to;
//! * the data owner signs the digest of the root page;
//! * for a range query the SP returns, besides the result, a **verification
//!   object (VO)** containing the two boundary records that enclose the
//!   result and the digests of all pruned siblings along the two boundary
//!   paths, plus the owner's signature;
//! * the client re-constructs the root digest from the result and the VO and
//!   matches it against the signature. Soundness follows from collision
//!   resistance, completeness from the boundary records.
//!
//! Because MB-Tree entries carry a 20-byte digest, the tree's fanout is about
//! a third of the plain B⁺-Tree's — this is the structural reason the paper
//! measures 24–39 % higher SP cost under TOM (Figure 6) and VOs that are 2–3
//! orders of magnitude larger than SAE's 20-byte token (Figure 5).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod node;
pub mod tree;
pub mod vo;

pub use node::{MbNode, MbNodeKind, MB_INTERNAL_CAPACITY, MB_LEAF_CAPACITY};
pub use tree::{MbTree, MbTreeStats};
pub use vo::{VerificationObject, VerifyError, VoItem};
