//! On-page node layout for the B⁺-Tree.
//!
//! Every node occupies exactly one 4096-byte page:
//!
//! ```text
//! leaf:      [type:1][pad:1][count:2][next_leaf:8][ (key:4, rid:8) * count ]
//! internal:  [type:1][pad:1][count:2][child0:8]  [ (key:4, child:8) * count ]
//! ```
//!
//! Leaf entries map a search key to a record id in the SP's dataset heap file;
//! internal entries are separator keys with right-child pointers (the leftmost
//! child is stored in the header). Capacities are derived from the page size,
//! which is how the fanout advantage of the plain B⁺-Tree over the MB-Tree
//! arises naturally rather than being hard-coded.

use sae_storage::{Page, PageId, PAGE_SIZE};
use sae_workload::RecordKey;

/// Byte offset where entries begin.
const HEADER_LEN: usize = 12;
/// Size of one leaf entry: key (4) + record id (8).
const LEAF_ENTRY_LEN: usize = 12;
/// Size of one internal entry: key (4) + child page id (8).
const INTERNAL_ENTRY_LEN: usize = 12;

/// Maximum number of entries in a leaf node.
pub const LEAF_CAPACITY: usize = (PAGE_SIZE - HEADER_LEN) / LEAF_ENTRY_LEN;
/// Maximum number of separator keys in an internal node.
pub const INTERNAL_CAPACITY: usize = (PAGE_SIZE - HEADER_LEN) / INTERNAL_ENTRY_LEN;

/// Whether a node is a leaf or an internal node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Leaf node: holds `(key, record id)` entries and a next-leaf pointer.
    Leaf,
    /// Internal node: holds separator keys and child pointers.
    Internal,
}

/// An in-memory, decoded B⁺-Tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BTreeNode {
    /// Leaf or internal.
    pub kind: NodeKind,
    /// Leaf only: the next leaf in key order ([`PageId::INVALID`] if none).
    pub next_leaf: PageId,
    /// Leaf only: `(key, record id)` pairs sorted by `(key, rid)`.
    pub leaf_entries: Vec<(RecordKey, u64)>,
    /// Internal only: the leftmost child.
    pub leftmost_child: PageId,
    /// Internal only: `(separator key, right child)` pairs sorted by key.
    pub internal_entries: Vec<(RecordKey, PageId)>,
}

impl BTreeNode {
    /// Creates an empty leaf.
    pub fn new_leaf() -> Self {
        BTreeNode {
            kind: NodeKind::Leaf,
            next_leaf: PageId::INVALID,
            leaf_entries: Vec::new(),
            leftmost_child: PageId::INVALID,
            internal_entries: Vec::new(),
        }
    }

    /// Creates an internal node with the given leftmost child.
    pub fn new_internal(leftmost_child: PageId) -> Self {
        BTreeNode {
            kind: NodeKind::Internal,
            next_leaf: PageId::INVALID,
            leaf_entries: Vec::new(),
            leftmost_child,
            internal_entries: Vec::new(),
        }
    }

    /// Number of entries (leaf entries or separator keys).
    pub fn len(&self) -> usize {
        match self.kind {
            NodeKind::Leaf => self.leaf_entries.len(),
            NodeKind::Internal => self.internal_entries.len(),
        }
    }

    /// Whether the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the node has reached its capacity and must be split on insert.
    pub fn is_full(&self) -> bool {
        match self.kind {
            NodeKind::Leaf => self.leaf_entries.len() >= LEAF_CAPACITY,
            NodeKind::Internal => self.internal_entries.len() >= INTERNAL_CAPACITY,
        }
    }

    /// Children of an internal node, leftmost first.
    pub fn children(&self) -> Vec<PageId> {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        let mut out = Vec::with_capacity(self.internal_entries.len() + 1);
        out.push(self.leftmost_child);
        out.extend(self.internal_entries.iter().map(|(_, c)| *c));
        out
    }

    /// The child to descend into when looking for the *first* occurrence of
    /// `key` (lower-bound descent): index of the first separator `>= key`.
    pub fn child_index_for_lower_bound(&self, key: RecordKey) -> usize {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        self.internal_entries.partition_point(|(k, _)| *k < key)
    }

    /// The child to descend into when inserting `key` (upper-bound descent),
    /// so new duplicates go to the rightmost eligible subtree.
    pub fn child_index_for_insert(&self, key: RecordKey) -> usize {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        self.internal_entries.partition_point(|(k, _)| *k <= key)
    }

    /// Child page id at position `idx` (0 = leftmost child).
    pub fn child_at(&self, idx: usize) -> PageId {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        if idx == 0 {
            self.leftmost_child
        } else {
            self.internal_entries[idx - 1].1
        }
    }

    /// Serializes the node into a fresh page.
    pub fn to_page(&self) -> Page {
        let mut page = Page::new();
        match self.kind {
            NodeKind::Leaf => {
                page.write_u8(0, 0);
                page.write_u16(2, self.leaf_entries.len() as u16);
                page.write_page_id(4, self.next_leaf);
                let mut off = HEADER_LEN;
                for (key, rid) in &self.leaf_entries {
                    page.write_u32(off, *key);
                    page.write_u64(off + 4, *rid);
                    off += LEAF_ENTRY_LEN;
                }
            }
            NodeKind::Internal => {
                page.write_u8(0, 1);
                page.write_u16(2, self.internal_entries.len() as u16);
                page.write_page_id(4, self.leftmost_child);
                let mut off = HEADER_LEN;
                for (key, child) in &self.internal_entries {
                    page.write_u32(off, *key);
                    page.write_page_id(off + 4, *child);
                    off += INTERNAL_ENTRY_LEN;
                }
            }
        }
        page
    }

    /// Decodes a node from a page.
    pub fn from_page(page: &Page) -> Self {
        let kind = if page.read_u8(0) == 0 {
            NodeKind::Leaf
        } else {
            NodeKind::Internal
        };
        let count = page.read_u16(2) as usize;
        match kind {
            NodeKind::Leaf => {
                let next_leaf = page.read_page_id(4);
                let mut leaf_entries = Vec::with_capacity(count);
                let mut off = HEADER_LEN;
                for _ in 0..count {
                    leaf_entries.push((page.read_u32(off), page.read_u64(off + 4)));
                    off += LEAF_ENTRY_LEN;
                }
                BTreeNode {
                    kind,
                    next_leaf,
                    leaf_entries,
                    leftmost_child: PageId::INVALID,
                    internal_entries: Vec::new(),
                }
            }
            NodeKind::Internal => {
                let leftmost_child = page.read_page_id(4);
                let mut internal_entries = Vec::with_capacity(count);
                let mut off = HEADER_LEN;
                for _ in 0..count {
                    internal_entries.push((page.read_u32(off), page.read_page_id(off + 4)));
                    off += INTERNAL_ENTRY_LEN;
                }
                BTreeNode {
                    kind,
                    next_leaf: PageId::INVALID,
                    leaf_entries: Vec::new(),
                    leftmost_child,
                    internal_entries,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_reflect_page_size() {
        // (4096 - 12) / 12 = 340 for both node kinds.
        assert_eq!(LEAF_CAPACITY, 340);
        assert_eq!(INTERNAL_CAPACITY, 340);
        // Fanout must exceed 100 as the paper assumes for 4 KiB pages.
        const { assert!(INTERNAL_CAPACITY > 100) };
    }

    #[test]
    fn leaf_round_trip() {
        let mut node = BTreeNode::new_leaf();
        node.next_leaf = PageId(77);
        for i in 0..10u64 {
            node.leaf_entries.push((i as u32 * 3, i + 100));
        }
        let decoded = BTreeNode::from_page(&node.to_page());
        assert_eq!(decoded, node);
    }

    #[test]
    fn internal_round_trip() {
        let mut node = BTreeNode::new_internal(PageId(5));
        for i in 0..20u64 {
            node.internal_entries.push((i as u32 * 10, PageId(i + 6)));
        }
        let decoded = BTreeNode::from_page(&node.to_page());
        assert_eq!(decoded, node);
        assert_eq!(decoded.children().len(), 21);
        assert_eq!(decoded.child_at(0), PageId(5));
        assert_eq!(decoded.child_at(3), PageId(8));
    }

    #[test]
    fn full_leaf_round_trip() {
        let mut node = BTreeNode::new_leaf();
        for i in 0..LEAF_CAPACITY as u64 {
            node.leaf_entries.push((i as u32, i));
        }
        assert!(node.is_full());
        let decoded = BTreeNode::from_page(&node.to_page());
        assert_eq!(decoded.leaf_entries.len(), LEAF_CAPACITY);
        assert_eq!(decoded, node);
    }

    #[test]
    fn descent_index_semantics() {
        let mut node = BTreeNode::new_internal(PageId(0));
        node.internal_entries = vec![
            (10, PageId(1)),
            (20, PageId(2)),
            (20, PageId(3)),
            (30, PageId(4)),
        ];
        // Lower-bound descent: first separator >= key.
        assert_eq!(node.child_index_for_lower_bound(5), 0);
        assert_eq!(node.child_index_for_lower_bound(10), 0);
        assert_eq!(node.child_index_for_lower_bound(15), 1);
        assert_eq!(node.child_index_for_lower_bound(20), 1);
        assert_eq!(node.child_index_for_lower_bound(25), 3);
        assert_eq!(node.child_index_for_lower_bound(35), 4);
        // Insert descent: first separator > key.
        assert_eq!(node.child_index_for_insert(10), 1);
        assert_eq!(node.child_index_for_insert(20), 3);
        assert_eq!(node.child_index_for_insert(35), 4);
    }

    #[test]
    fn empty_and_full_flags() {
        let leaf = BTreeNode::new_leaf();
        assert!(leaf.is_empty());
        assert!(!leaf.is_full());
        let internal = BTreeNode::new_internal(PageId(1));
        assert!(internal.is_empty());
        assert_eq!(internal.children(), vec![PageId(1)]);
    }
}
