//! # sae-btree
//!
//! A disk-based B⁺-Tree over [`sae_storage`] pages.
//!
//! Under SAE the service provider indexes the outsourced relation with a plain
//! B⁺-Tree — *no* authentication information is embedded, which is precisely
//! why the paper reports 24–39 % lower query-processing cost at the SP than
//! under TOM (whose MB-Tree carries a 20-byte digest per entry and therefore
//! has a much lower fanout). This crate provides that index:
//!
//! * keys are the 4-byte search keys of the workload, values are record ids
//!   pointing into the SP's dataset heap file;
//! * duplicate keys are fully supported (the SKW datasets contain many);
//! * bulk loading, insertion, deletion and inclusive range scans are provided;
//! * every node touched is counted by the underlying
//!   [`sae_storage::IoStats`], which drives the paper's 10 ms/node-access
//!   cost model.
//!
//! The node layout and traversal logic here are intentionally mirrored by the
//! authenticated trees (`sae-mbtree`, `sae-xbtree`) so that cross-tree cost
//! comparisons reflect only the authentication overhead, not incidental
//! implementation differences.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod node;
pub mod tree;

pub use node::{BTreeNode, NodeKind, INTERNAL_CAPACITY, LEAF_CAPACITY};
pub use tree::{BPlusTree, TreeStats};
