//! The disk-based B⁺-Tree.
//!
//! Supports bulk loading from sorted data (how the DO's initial dataset is
//! indexed), single-record insertion and deletion (how updates are applied),
//! and inclusive range scans (how queries are answered). Every page touched
//! goes through the [`sae_storage::PageStore`], so the attached
//! [`sae_storage::IoStats`] sees exactly the node accesses the paper's cost
//! model charges for.
//!
//! Deletion removes entries in place and collapses nodes that become empty;
//! it does not rebalance under-full siblings. This keeps the structure correct
//! (queries and invariants hold for any interleaving of operations) at the
//! cost of a possibly lower occupancy after massive deletions — the same
//! trade-off is applied uniformly to the MB-Tree and XB-Tree so comparative
//! results are unaffected.

use crate::node::{BTreeNode, NodeKind, INTERNAL_CAPACITY, LEAF_CAPACITY};
use sae_storage::{PageId, SharedPageStore, StorageError, StorageResult, TreeMeta, PAGE_SIZE};
use sae_workload::{RangeQuery, RecordKey};

/// Summary statistics about a tree's shape (used by the experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of levels (1 = the root is a leaf).
    pub height: u32,
    /// Total number of nodes (pages).
    pub node_count: u64,
    /// Number of `(key, record-id)` entries stored.
    pub entry_count: u64,
    /// Bytes occupied by the tree's pages.
    pub storage_bytes: u64,
}

/// A disk-based B⁺-Tree mapping search keys to record ids.
pub struct BPlusTree {
    store: SharedPageStore,
    root: PageId,
    height: u32,
    len: u64,
    node_count: u64,
}

impl BPlusTree {
    /// Creates an empty tree on the given page store.
    pub fn new(store: SharedPageStore) -> StorageResult<Self> {
        let root = store.allocate()?;
        let node = BTreeNode::new_leaf();
        store.write(root, &node.to_page())?;
        Ok(BPlusTree {
            store,
            root,
            height: 1,
            len: 0,
            node_count: 1,
        })
    }

    /// Bulk-loads a tree from entries sorted by `(key, record id)`.
    ///
    /// Panics if the entries are not sorted — bulk loading is only used for
    /// the initial dataset, which the data owner ships sorted by search key.
    pub fn bulk_load(store: SharedPageStore, entries: &[(RecordKey, u64)]) -> StorageResult<Self> {
        assert!(
            entries.windows(2).all(|w| w[0] <= w[1]),
            "bulk_load requires entries sorted by (key, record id)"
        );
        if entries.is_empty() {
            return Self::new(store);
        }

        let mut node_count = 0u64;

        // Build the leaf level. Pages are allocated up-front so each leaf can
        // point to its successor.
        let leaf_chunks: Vec<&[(RecordKey, u64)]> = entries.chunks(LEAF_CAPACITY).collect();
        let mut leaf_pages = Vec::with_capacity(leaf_chunks.len());
        for _ in 0..leaf_chunks.len() {
            leaf_pages.push(store.allocate()?);
        }
        let mut level: Vec<(RecordKey, PageId)> = Vec::with_capacity(leaf_chunks.len());
        for (i, chunk) in leaf_chunks.iter().enumerate() {
            let mut node = BTreeNode::new_leaf();
            node.leaf_entries = chunk.to_vec();
            node.next_leaf = if i + 1 < leaf_pages.len() {
                leaf_pages[i + 1]
            } else {
                PageId::INVALID
            };
            store.write(leaf_pages[i], &node.to_page())?;
            node_count += 1;
            level.push((chunk[0].0, leaf_pages[i]));
        }

        // Build internal levels bottom-up until a single root remains.
        let mut height = 1u32;
        while level.len() > 1 {
            let mut next_level = Vec::with_capacity(level.len() / INTERNAL_CAPACITY + 1);
            for group in level.chunks(INTERNAL_CAPACITY + 1) {
                let mut node = BTreeNode::new_internal(group[0].1);
                node.internal_entries = group[1..].iter().map(|(k, p)| (*k, *p)).collect();
                let page_id = store.allocate()?;
                store.write(page_id, &node.to_page())?;
                node_count += 1;
                next_level.push((group[0].0, page_id));
            }
            level = next_level;
            height += 1;
        }

        Ok(BPlusTree {
            store,
            root: level[0].1,
            height,
            len: entries.len() as u64,
            node_count,
        })
    }

    /// Reopens a tree from its persisted root and shape (as recorded in a
    /// deployment manifest) instead of rebuilding it from data. Only cheap
    /// sanity checks run here — deeper integrity is the caller's job (the
    /// SAE trusted entity cross-checks its published digest; the service
    /// provider's results are checked by client verification).
    pub fn open(store: SharedPageStore, meta: TreeMeta) -> StorageResult<Self> {
        if meta.root.is_invalid() || meta.root.0 >= store.page_count() {
            return Err(StorageError::Corrupted(format!(
                "B+-Tree root {} outside the store's {} pages",
                meta.root,
                store.page_count()
            )));
        }
        if meta.height == 0 || meta.node_count == 0 {
            return Err(StorageError::Corrupted(
                "B+-Tree meta claims zero height or zero nodes".into(),
            ));
        }
        Ok(BPlusTree {
            store,
            root: meta.root,
            height: meta.height,
            len: meta.len,
            node_count: meta.node_count,
        })
    }

    /// The page store this tree lives on.
    pub fn store(&self) -> &SharedPageStore {
        &self.store
    }

    /// The root page (persisted by durable deployments so the tree can be
    /// reopened with [`BPlusTree::open`]).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// The tree's persistable root + shape metadata.
    pub fn meta(&self) -> TreeMeta {
        TreeMeta {
            root: self.root,
            height: self.height,
            len: self.len,
            node_count: self.node_count,
        }
    }

    /// Number of entries in the tree.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree contains no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of nodes (pages) in the tree.
    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    /// Bytes occupied by the tree's pages.
    pub fn storage_bytes(&self) -> u64 {
        self.node_count * PAGE_SIZE as u64
    }

    /// Shape statistics.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            height: self.height,
            node_count: self.node_count,
            entry_count: self.len,
            storage_bytes: self.storage_bytes(),
        }
    }

    fn read_node(&self, id: PageId) -> StorageResult<BTreeNode> {
        Ok(BTreeNode::from_page(&self.store.read(id)?))
    }

    fn write_node(&self, id: PageId, node: &BTreeNode) -> StorageResult<()> {
        self.store.write(id, &node.to_page())
    }

    // ---------------------------------------------------------------- range

    /// Returns all `(key, record id)` entries with `q.lower <= key <= q.upper`,
    /// sorted by `(key, record id)`.
    pub fn range(&self, q: &RangeQuery) -> StorageResult<Vec<(RecordKey, u64)>> {
        let mut out = Vec::new();
        // Descend to the leftmost leaf that may contain the lower bound.
        let mut current = self.root;
        for _ in 1..self.height {
            let node = self.read_node(current)?;
            let idx = node.child_index_for_lower_bound(q.lower);
            current = node.child_at(idx);
        }
        // Scan the leaf chain.
        loop {
            let node = self.read_node(current)?;
            debug_assert_eq!(node.kind, NodeKind::Leaf);
            for &(key, rid) in &node.leaf_entries {
                if key > q.upper {
                    return Ok(out);
                }
                if key >= q.lower {
                    out.push((key, rid));
                }
            }
            if node.next_leaf.is_invalid() {
                return Ok(out);
            }
            current = node.next_leaf;
        }
    }

    /// Record ids of all entries in the range, in `(key, record id)` order.
    pub fn range_record_ids(&self, q: &RangeQuery) -> StorageResult<Vec<u64>> {
        Ok(self.range(q)?.into_iter().map(|(_, rid)| rid).collect())
    }

    // --------------------------------------------------------------- insert

    /// Inserts a `(key, record id)` entry. Duplicate keys (and even duplicate
    /// pairs) are allowed.
    pub fn insert(&mut self, key: RecordKey, rid: u64) -> StorageResult<()> {
        if let Some((sep, right)) = self.insert_rec(self.root, key, rid)? {
            // Root split: grow the tree by one level.
            let mut new_root = BTreeNode::new_internal(self.root);
            new_root.internal_entries.push((sep, right));
            let new_root_id = self.store.allocate()?;
            self.write_node(new_root_id, &new_root)?;
            self.root = new_root_id;
            self.height += 1;
            self.node_count += 1;
        }
        self.len += 1;
        Ok(())
    }

    /// Recursive insert; returns `Some((separator, new right sibling))` if the
    /// child split.
    fn insert_rec(
        &mut self,
        page_id: PageId,
        key: RecordKey,
        rid: u64,
    ) -> StorageResult<Option<(RecordKey, PageId)>> {
        let mut node = self.read_node(page_id)?;
        match node.kind {
            NodeKind::Leaf => {
                let pos = node.leaf_entries.partition_point(|&e| e <= (key, rid));
                node.leaf_entries.insert(pos, (key, rid));
                if node.leaf_entries.len() <= LEAF_CAPACITY {
                    self.write_node(page_id, &node)?;
                    return Ok(None);
                }
                // Split: right half moves to a new page.
                let mid = node.leaf_entries.len() / 2;
                let right_entries = node.leaf_entries.split_off(mid);
                let sep = right_entries[0].0;
                let right_id = self.store.allocate()?;
                let mut right = BTreeNode::new_leaf();
                right.leaf_entries = right_entries;
                right.next_leaf = node.next_leaf;
                node.next_leaf = right_id;
                self.write_node(right_id, &right)?;
                self.write_node(page_id, &node)?;
                self.node_count += 1;
                Ok(Some((sep, right_id)))
            }
            NodeKind::Internal => {
                let idx = node.child_index_for_insert(key);
                let child = node.child_at(idx);
                let Some((sep, new_child)) = self.insert_rec(child, key, rid)? else {
                    return Ok(None);
                };
                node.internal_entries.insert(idx, (sep, new_child));
                if node.internal_entries.len() <= INTERNAL_CAPACITY {
                    self.write_node(page_id, &node)?;
                    return Ok(None);
                }
                // Split the internal node: the middle separator moves up.
                let mid = node.internal_entries.len() / 2;
                let mut right_entries = node.internal_entries.split_off(mid);
                let (up_key, right_leftmost) = right_entries.remove(0);
                let right_id = self.store.allocate()?;
                let mut right = BTreeNode::new_internal(right_leftmost);
                right.internal_entries = right_entries;
                self.write_node(right_id, &right)?;
                self.write_node(page_id, &node)?;
                self.node_count += 1;
                Ok(Some((up_key, right_id)))
            }
        }
    }

    // --------------------------------------------------------------- delete

    /// Deletes one entry matching `(key, record id)`. Returns `true` if an
    /// entry was removed.
    pub fn delete(&mut self, key: RecordKey, rid: u64) -> StorageResult<bool> {
        let (removed, root_empty) = self.delete_rec(self.root, key, rid)?;
        if removed {
            self.len -= 1;
        }
        if root_empty {
            // The whole tree is empty: reset to a single empty leaf root.
            self.write_node(self.root, &BTreeNode::new_leaf())?;
            self.height = 1;
            self.node_count = 1;
        } else {
            // If the root is an internal node with a single child, collapse it.
            loop {
                let node = self.read_node(self.root)?;
                if node.kind == NodeKind::Internal && node.internal_entries.is_empty() {
                    self.root = node.leftmost_child;
                    self.height -= 1;
                    self.node_count -= 1;
                } else {
                    break;
                }
            }
        }
        Ok(removed)
    }

    /// Recursive delete; returns `(removed, node_became_empty)`.
    fn delete_rec(
        &mut self,
        page_id: PageId,
        key: RecordKey,
        rid: u64,
    ) -> StorageResult<(bool, bool)> {
        let mut node = self.read_node(page_id)?;
        match node.kind {
            NodeKind::Leaf => {
                let Some(pos) = node.leaf_entries.iter().position(|&e| e == (key, rid)) else {
                    return Ok((false, false));
                };
                node.leaf_entries.remove(pos);
                let empty = node.leaf_entries.is_empty();
                self.write_node(page_id, &node)?;
                Ok((true, empty))
            }
            NodeKind::Internal => {
                let mut idx = node.child_index_for_lower_bound(key);
                loop {
                    let child = node.child_at(idx);
                    let (removed, child_empty) = self.delete_rec(child, key, rid)?;
                    if removed {
                        if child_empty {
                            self.remove_child(&mut node, idx);
                            self.node_count -= 1;
                            let empty = node.internal_entries.is_empty()
                                && node.leftmost_child.is_invalid();
                            self.write_node(page_id, &node)?;
                            return Ok((true, empty));
                        }
                        return Ok((true, false));
                    }
                    // The key may continue into the next child if the next
                    // separator does not exceed it.
                    if idx < node.internal_entries.len() && node.internal_entries[idx].0 <= key {
                        idx += 1;
                    } else {
                        return Ok((false, false));
                    }
                }
            }
        }
    }

    /// Removes the child at `idx` from an internal node, keeping the remaining
    /// children ordered. Leaves the node marked "empty" (invalid leftmost
    /// child, no entries) if its last child is removed.
    fn remove_child(&self, node: &mut BTreeNode, idx: usize) {
        if idx == 0 {
            if node.internal_entries.is_empty() {
                node.leftmost_child = PageId::INVALID;
            } else {
                let (_, first_child) = node.internal_entries.remove(0);
                node.leftmost_child = first_child;
            }
        } else {
            node.internal_entries.remove(idx - 1);
        }
    }

    // ----------------------------------------------------------- invariants

    /// Exhaustively checks structural invariants; panics on violation.
    ///
    /// Intended for tests: sorted nodes, consistent leaf chain, uniform leaf
    /// depth, separator bounds respected and entry count consistency.
    pub fn check_invariants(&self) -> StorageResult<()> {
        let mut leaf_pages = Vec::new();
        let mut entry_total = 0u64;
        let mut node_total = 0u64;
        self.check_node(
            self.root,
            1,
            None,
            None,
            &mut leaf_pages,
            &mut entry_total,
            &mut node_total,
        )?;
        assert_eq!(entry_total, self.len, "entry count mismatch");
        assert_eq!(node_total, self.node_count, "node count mismatch");

        // The in-order leaf pages must form exactly the next_leaf chain.
        for w in leaf_pages.windows(2) {
            let left = self.read_node(w[0])?;
            assert_eq!(left.next_leaf, w[1], "broken leaf chain");
        }
        if let Some(last) = leaf_pages.last() {
            let node = self.read_node(*last)?;
            assert!(node.next_leaf.is_invalid(), "last leaf must end the chain");
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn check_node(
        &self,
        page_id: PageId,
        depth: u32,
        lower: Option<RecordKey>,
        upper: Option<RecordKey>,
        leaf_pages: &mut Vec<PageId>,
        entry_total: &mut u64,
        node_total: &mut u64,
    ) -> StorageResult<()> {
        *node_total += 1;
        let node = self.read_node(page_id)?;
        match node.kind {
            NodeKind::Leaf => {
                assert_eq!(depth, self.height, "leaf at wrong depth");
                assert!(
                    node.leaf_entries.windows(2).all(|w| w[0] <= w[1]),
                    "leaf entries out of order"
                );
                for &(key, _) in &node.leaf_entries {
                    if let Some(lo) = lower {
                        assert!(key >= lo, "leaf key below separator bound");
                    }
                    if let Some(hi) = upper {
                        assert!(key <= hi, "leaf key above separator bound");
                    }
                }
                *entry_total += node.leaf_entries.len() as u64;
                leaf_pages.push(page_id);
            }
            NodeKind::Internal => {
                assert!(depth < self.height, "internal node at leaf depth");
                assert!(
                    node.internal_entries.windows(2).all(|w| w[0].0 <= w[1].0),
                    "separators out of order"
                );
                let children = node.children();
                for (i, child) in children.iter().enumerate() {
                    let child_lower = if i == 0 {
                        lower
                    } else {
                        Some(node.internal_entries[i - 1].0)
                    };
                    let child_upper = if i < node.internal_entries.len() {
                        Some(node.internal_entries[i].0)
                    } else {
                        upper
                    };
                    self.check_node(
                        *child,
                        depth + 1,
                        child_lower,
                        child_upper,
                        leaf_pages,
                        entry_total,
                        node_total,
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};
    use sae_storage::MemPager;

    fn mem_tree() -> BPlusTree {
        BPlusTree::new(MemPager::new_shared()).unwrap()
    }

    fn oracle_range(entries: &[(RecordKey, u64)], q: &RangeQuery) -> Vec<(RecordKey, u64)> {
        let mut out: Vec<(RecordKey, u64)> = entries
            .iter()
            .copied()
            .filter(|(k, _)| q.contains(*k))
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_tree_reports_nothing() {
        let tree = mem_tree();
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.node_count(), 1);
        assert!(tree.range(&RangeQuery::new(0, 100)).unwrap().is_empty());
        tree.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_range_small() {
        let mut tree = mem_tree();
        for (k, r) in [(5u32, 50u64), (1, 10), (9, 90), (3, 30), (7, 70)] {
            tree.insert(k, r).unwrap();
        }
        assert_eq!(tree.len(), 5);
        assert_eq!(
            tree.range(&RangeQuery::new(3, 7)).unwrap(),
            vec![(3, 30), (5, 50), (7, 70)]
        );
        assert_eq!(
            tree.range(&RangeQuery::new(0, 100)).unwrap(),
            vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]
        );
        assert!(tree.range(&RangeQuery::new(10, 20)).unwrap().is_empty());
        tree.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_keys_are_all_returned() {
        let mut tree = mem_tree();
        for rid in 0..10u64 {
            tree.insert(42, rid).unwrap();
        }
        tree.insert(41, 100).unwrap();
        tree.insert(43, 101).unwrap();
        let hits = tree.range(&RangeQuery::new(42, 42)).unwrap();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|&(k, _)| k == 42));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn insertion_splits_grow_the_tree() {
        let mut tree = mem_tree();
        let n = 5 * LEAF_CAPACITY as u64;
        for i in 0..n {
            tree.insert((i % 1000) as u32, i).unwrap();
        }
        assert_eq!(tree.len(), n);
        assert!(tree.height() >= 2);
        assert!(tree.node_count() > 5);
        tree.check_invariants().unwrap();
        // Every entry is retrievable.
        let all = tree.range(&RangeQuery::new(0, 1000)).unwrap();
        assert_eq!(all.len() as u64, n);
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut entries: Vec<(RecordKey, u64)> = (0..3000u64)
            .map(|rid| (rng.gen_range(0..10_000u32), rid))
            .collect();
        entries.sort_unstable();

        let bulk = BPlusTree::bulk_load(MemPager::new_shared(), &entries).unwrap();
        bulk.check_invariants().unwrap();

        let mut incremental = mem_tree();
        for &(k, r) in &entries {
            incremental.insert(k, r).unwrap();
        }

        for q in [
            RangeQuery::new(0, 10_000),
            RangeQuery::new(100, 200),
            RangeQuery::new(5_000, 5_050),
            RangeQuery::new(9_990, 10_000),
        ] {
            assert_eq!(bulk.range(&q).unwrap(), incremental.range(&q).unwrap());
            assert_eq!(bulk.range(&q).unwrap(), oracle_range(&entries, &q));
        }
        assert_eq!(bulk.len(), entries.len() as u64);
        // Bulk loading packs leaves full, so it should not use more nodes.
        assert!(bulk.node_count() <= incremental.node_count());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn bulk_load_rejects_unsorted_input() {
        let _ = BPlusTree::bulk_load(MemPager::new_shared(), &[(5, 0), (1, 1)]);
    }

    #[test]
    fn bulk_load_empty_gives_empty_tree() {
        let tree = BPlusTree::bulk_load(MemPager::new_shared(), &[]).unwrap();
        assert!(tree.is_empty());
        tree.check_invariants().unwrap();
    }

    #[test]
    fn delete_removes_exactly_the_requested_entry() {
        let mut tree = mem_tree();
        for rid in 0..5u64 {
            tree.insert(10, rid).unwrap();
        }
        assert!(tree.delete(10, 3).unwrap());
        assert!(!tree.delete(10, 3).unwrap()); // already gone
        assert!(!tree.delete(11, 0).unwrap()); // never existed
        let remaining: Vec<u64> = tree.range_record_ids(&RangeQuery::new(10, 10)).unwrap();
        assert_eq!(remaining, vec![0, 1, 2, 4]);
        assert_eq!(tree.len(), 4);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn delete_everything_resets_the_tree() {
        let mut tree = mem_tree();
        let n = 2 * LEAF_CAPACITY as u64 + 10;
        for i in 0..n {
            tree.insert(i as u32, i).unwrap();
        }
        for i in 0..n {
            assert!(tree.delete(i as u32, i).unwrap(), "delete {i}");
        }
        assert!(tree.is_empty());
        assert!(tree
            .range(&RangeQuery::new(0, u32::MAX))
            .unwrap()
            .is_empty());
        // Can keep inserting after full deletion.
        tree.insert(5, 5).unwrap();
        assert_eq!(tree.range(&RangeQuery::new(0, 10)).unwrap(), vec![(5, 5)]);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn mixed_workload_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut tree = mem_tree();
        let mut oracle: Vec<(RecordKey, u64)> = Vec::new();
        let mut next_rid = 0u64;

        for round in 0..2_000 {
            let op: f64 = rng.gen();
            if op < 0.65 || oracle.is_empty() {
                let key = rng.gen_range(0..5_000u32);
                tree.insert(key, next_rid).unwrap();
                oracle.push((key, next_rid));
                next_rid += 1;
            } else {
                let victim = oracle.swap_remove(rng.gen_range(0..oracle.len()));
                assert!(tree.delete(victim.0, victim.1).unwrap(), "round {round}");
            }
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), oracle.len() as u64);

        for _ in 0..50 {
            let a = rng.gen_range(0..5_000u32);
            let b = rng.gen_range(0..5_000u32);
            let q = RangeQuery::new(a, b);
            assert_eq!(tree.range(&q).unwrap(), oracle_range(&oracle, &q));
        }
    }

    #[test]
    fn range_scan_node_accesses_are_logarithmic_plus_leaves() {
        let store = MemPager::new_shared();
        let entries: Vec<(RecordKey, u64)> = (0..100_000u64).map(|i| (i as u32, i)).collect();
        let tree = BPlusTree::bulk_load(store.clone(), &entries).unwrap();

        let before = store.stats().snapshot();
        let hits = tree.range(&RangeQuery::new(50_000, 50_499)).unwrap();
        let delta = store.stats().snapshot().delta_since(&before);

        assert_eq!(hits.len(), 500);
        // Height 3 at most for 100k entries with fanout ~340; 500 results span
        // ~2-3 leaves. The access count must stay small and bounded.
        assert!(
            delta.node_reads <= (tree.height() as u64) + 4,
            "unexpectedly many node accesses: {}",
            delta.node_reads
        );
    }

    #[test]
    fn stats_are_consistent() {
        let entries: Vec<(RecordKey, u64)> = (0..10_000u64).map(|i| (i as u32, i)).collect();
        let tree = BPlusTree::bulk_load(MemPager::new_shared(), &entries).unwrap();
        let stats = tree.stats();
        assert_eq!(stats.entry_count, 10_000);
        assert_eq!(stats.height, tree.height());
        assert_eq!(stats.node_count, tree.node_count());
        assert_eq!(stats.storage_bytes, tree.node_count() * PAGE_SIZE as u64);
        // ~30 leaves + a root level.
        assert!(stats.node_count >= 30 && stats.node_count <= 40);
    }

    #[test]
    fn open_from_meta_serves_the_same_tree_without_rebuilding() {
        let store = MemPager::new_shared();
        let entries: Vec<(RecordKey, u64)> = (0..5_000u64).map(|i| ((i % 997) as u32, i)).collect();
        let mut sorted = entries.clone();
        sorted.sort_unstable();
        let mut tree = BPlusTree::bulk_load(store.clone(), &sorted).unwrap();
        tree.insert(10_000, 1).unwrap();
        let meta = tree.meta();
        assert_eq!(meta.root, tree.root());
        drop(tree);

        let writes_before = store.stats().snapshot().node_writes;
        let reopened = BPlusTree::open(store.clone(), meta).unwrap();
        // Opening performs no writes: nothing was rebuilt.
        assert_eq!(store.stats().snapshot().node_writes, writes_before);
        assert_eq!(reopened.len(), 5_001);
        assert_eq!(reopened.meta(), meta);
        reopened.check_invariants().unwrap();
        let hits = reopened.range(&RangeQuery::new(100, 100)).unwrap();
        assert!(!hits.is_empty() && hits.iter().all(|&(k, _)| k == 100));

        // Nonsense metadata is rejected with a typed error.
        assert!(BPlusTree::open(
            store.clone(),
            TreeMeta {
                root: PageId(999_999),
                ..meta
            }
        )
        .is_err());
        assert!(BPlusTree::open(store, TreeMeta { height: 0, ..meta }).is_err());
    }

    #[test]
    fn random_shuffled_inserts_preserve_sorted_scans() {
        let mut keys: Vec<u32> = (0..5_000u32).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(3));
        let mut tree = mem_tree();
        for (rid, &k) in keys.iter().enumerate() {
            tree.insert(k, rid as u64).unwrap();
        }
        let all = tree.range(&RangeQuery::new(0, u32::MAX)).unwrap();
        assert_eq!(all.len(), 5_000);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
        tree.check_invariants().unwrap();
    }
}
